//! Crash/resume differentials at the scenario level: a checkpointed
//! run killed at a commit boundary (budgeted stop) — or crashed mid-
//! write (torn `.tmp`) — resumes to the byte-identical report, and a
//! damaged manifest surfaces a structured error, never a wrong report.

use std::fs;
use std::path::{Path, PathBuf};

use qic::prelude::*;
use qic::sweep::CheckpointError;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join("campaign_crash")
        .join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

fn preset() -> ScenarioSpec {
    ScenarioRegistry::builtin()
        .spec("synthetic_stress", ScenarioScale::SmallTest)
        .expect("preset exists")
}

fn checkpointed(dir: &Path, every: u32) -> ScenarioSpec {
    preset().with_checkpoint(CheckpointSpec::to_dir(dir.display().to_string()).with_every(every))
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("synthetic_stress.ckpt.json")
}

#[test]
fn killed_scenario_resumes_to_the_byte_identical_report() {
    let dir = tmp_dir("kill_resume");
    let spec = checkpointed(&dir, 1);

    // Kill the campaign dead after 1 of its points: a budgeted run
    // stops exactly at a commit boundary, like a SIGKILL landing right
    // after a manifest rename.
    let progress = qic::run_budgeted(&spec, Some(1)).unwrap();
    let ScenarioProgress::Partial { done, total } = progress else {
        panic!("a 1-point budget cannot finish the sweep");
    };
    assert_eq!(done, 1);
    assert!(manifest_path(&dir).exists(), "partial manifest committed");

    // Resume to completion; compare against an un-killed checkpointed
    // run in a fresh directory (both use streaming aggregation).
    let resumed = qic::run(&spec).unwrap();
    let fresh_dir = tmp_dir("kill_resume_fresh");
    let fresh = qic::run(&checkpointed(&fresh_dir, 1)).unwrap();
    assert_eq!(resumed.report, fresh.report);
    assert_eq!(resumed.to_json(), fresh.to_json());
    assert_eq!(resumed.to_csv(), fresh.to_csv());
    assert_eq!(
        resumed.report.to_record_json(),
        fresh.report.to_record_json()
    );
    assert_eq!(done + (total - done), resumed.report.points.len());

    // Streaming vs buffered: the CSV bytes also match the ordinary
    // uncheckpointed run (summaries are bitwise identical; only raw
    // samples are not retained).
    let plain = qic::run(&preset()).unwrap();
    assert_eq!(resumed.to_csv(), plain.to_csv());
}

#[test]
fn a_torn_tmp_from_a_mid_write_crash_does_not_poison_resume() {
    let dir = tmp_dir("torn_tmp");
    let spec = checkpointed(&dir, 1);
    qic::run_budgeted(&spec, Some(1)).unwrap();

    // A crash mid-commit leaves a torn `.tmp` beside the intact
    // manifest (the rename never happened). Resume must ignore it.
    let torn = PathBuf::from(format!("{}.tmp", manifest_path(&dir).display()));
    fs::write(&torn, "{\"record\":\"campaign_ch").unwrap();

    let resumed = qic::run(&spec).unwrap();
    let plain = qic::run(&preset()).unwrap();
    assert_eq!(resumed.to_csv(), plain.to_csv());
}

#[test]
fn corrupted_manifest_is_a_structured_error_not_a_wrong_report() {
    let dir = tmp_dir("corrupt");
    let spec = checkpointed(&dir, 1);
    qic::run_budgeted(&spec, Some(1)).unwrap();

    // Truncate the manifest mid-document.
    let path = manifest_path(&dir);
    let good = fs::read_to_string(&path).unwrap();
    fs::write(&path, &good[..good.len() / 2]).unwrap();

    let err = qic::run(&spec).unwrap_err();
    let ScenarioError::Checkpoint(inner) = err else {
        panic!("expected a checkpoint error, got {err}");
    };
    assert!(
        matches!(inner, CheckpointError::Corrupt { .. }),
        "expected Corrupt, got {inner}"
    );
}

#[test]
fn editing_the_spec_under_a_manifest_is_a_mismatch() {
    let dir = tmp_dir("spec_drift");
    qic::run_budgeted(&checkpointed(&dir, 1), Some(1)).unwrap();

    // Same scenario, different seed: the manifest no longer matches.
    let mut drifted = checkpointed(&dir, 1);
    drifted.seed ^= 1;
    let err = qic::run(&drifted).unwrap_err();
    let ScenarioError::Checkpoint(inner) = err else {
        panic!("expected a checkpoint error, got {err}");
    };
    assert!(
        matches!(inner, CheckpointError::Mismatch { .. }),
        "expected Mismatch, got {inner}"
    );
}

#[test]
fn budgeted_runs_without_a_checkpoint_block_are_rejected() {
    let err = qic::run_budgeted(&preset(), Some(1)).unwrap_err();
    assert!(matches!(err, ScenarioError::Spec { .. }), "{err}");
}

#[test]
fn wall_times_are_excluded_from_equality_and_emitters() {
    // Regression for merge/resume wall-clock bookkeeping: resumed
    // reports carry zero wall times for previously committed points,
    // fresh ones carry real measurements — nothing observable differs.
    let dir = tmp_dir("wall_ns");
    let spec = checkpointed(&dir, 1);
    qic::run_budgeted(&spec, Some(2)).unwrap();
    let resumed = qic::run(&spec).unwrap();
    let fresh_dir = tmp_dir("wall_ns_fresh");
    let fresh = qic::run(&checkpointed(&fresh_dir, 1)).unwrap();
    assert_eq!(resumed.report.wall_ns.len(), fresh.report.wall_ns.len());
    assert_eq!(
        resumed.report, fresh.report,
        "wall_ns must not affect equality"
    );
    assert_eq!(resumed.to_json(), fresh.to_json());
    assert_eq!(resumed.to_csv(), fresh.to_csv());
    assert_eq!(
        resumed.report.to_record_json(),
        fresh.report.to_record_json()
    );
}
