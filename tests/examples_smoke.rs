//! Smoke tests mirroring the `examples/*.rs` code paths, so the
//! examples' API surface is exercised by `cargo test` and cannot rot
//! silently between releases.

use qic::prelude::*;
use qic_analytic::plan::ChannelModel;
use qic_analytic::strategy::PurifyPlacement as AnalyticPlacement;
use qic_physics::bell::BellDiagonal;
use qic_workload::Program;

/// `examples/quickstart.rs`: ballistic error sweep, then a 20-hop channel
/// plan that must clear the fault-tolerance threshold.
#[test]
fn quickstart_path() {
    let rates = ErrorRates::ion_trap();
    let mut last = 0.0;
    for cells in [1u64, 10, 100, 1_000, 10_000] {
        let f = transport::ballistic_fidelity(Fidelity::ONE, cells, &rates);
        assert!(f.infidelity() >= last, "error grows with distance");
        last = f.infidelity();
    }
    let plan = ChannelModel::ion_trap().plan(20).expect("20 hops feasible");
    assert!(plan.final_state.fidelity() >= constants::threshold_fidelity());
}

/// `examples/purification_planner.rs`: protocol comparison, placement
/// sweep, and queue-vs-tree purifier hardware numbers.
#[test]
fn purification_planner_path() {
    let noise = RoundNoise::ion_trap();
    let raw = qic_analytic::link::raw_link_state(600, &ErrorRates::ion_trap());
    let arriving = BellDiagonal::werner_f64(1.0 - (30.0 * raw.error()).min(0.5)).unwrap();

    let rounds = rounds_to_reach(
        Protocol::Dejmps,
        arriving,
        constants::THRESHOLD_ERROR,
        &noise,
        64,
    )
    .expect("DEJMPS reaches threshold from a 30-hop arriving state");
    let (pairs, out) = pairs_for_rounds(Protocol::Dejmps, arriving, rounds, &noise);
    assert!(out.error() <= constants::THRESHOLD_ERROR);
    assert!(pairs >= 1.0);

    for placement in AnalyticPlacement::FIGURE_SET {
        let model = ChannelModel::ion_trap().with_placement(placement);
        let plan = model
            .plan(30)
            .expect("all figure placements feasible at 30 hops");
        assert!(plan.total_pairs >= plan.teleported_pairs);
    }

    let depth = 3;
    let queue = QueuePurifier::new(depth, Protocol::Dejmps, noise);
    let tree = TreePurifier::new(depth, Protocol::Dejmps);
    assert_eq!(tree.hardware_units(), (1 << depth) - 1);
    assert!(queue.expected_pairs_per_output(&raw) >= f64::from(1u32 << depth));
    let times = OpTimes::ion_trap();
    assert!(queue.serial_latency_per_output(&times, 600 * 30) > tree.latency(&times, 600 * 30));
}

/// `examples/waveform_dump.rs`: electrode schedule rendering, a channel
/// shuttle, and floorplan routes with survival accounting.
#[test]
fn waveform_dump_path() {
    use qic::iontrap::channel::{Channel, IonId};
    use qic::iontrap::floorplan::{Floorplan, Site};
    use qic::iontrap::waveform::ShuttlePlan;

    let times = OpTimes::ion_trap();
    let schedule = ShuttlePlan::new(3, 9).unwrap().waveforms(&times);
    assert_eq!(schedule.phases(), 6);
    let rendered = schedule.render();
    assert_eq!(
        rendered.lines().count(),
        11,
        "columns e00..=e10 participate"
    );

    let mut ch = Channel::new(32);
    ch.insert(IonId(0), 0).unwrap();
    let out = ch.shuttle(IonId(0), 31).unwrap();
    assert!(out.fidelity_after < Fidelity::ONE);

    let fp = Floorplan::grid(8, 8, 600);
    let route = fp.route(Site { x: 0, y: 0 }, Site { x: 7, y: 7 }).unwrap();
    assert_eq!(route.turns, 1);
    let survival = route.survival(&ErrorRates::ion_trap());
    assert!((0.0..1.0).contains(&survival));
    assert_eq!(fp.diameter_cells(), route.total_cells);
}

/// `examples/qft_contention.rs`: the Figure 16 sweep at Tiny scale via
/// the Scenario API, with the paper's qualitative ordering intact.
#[test]
fn qft_contention_path() {
    use qic::core::experiment::{figure16_from_campaign, Fig16Scale};
    let report = qic::run(&fig16_spec(Fig16Scale::Tiny)).expect("figure presets validate");
    let result = figure16_from_campaign(Fig16Scale::Tiny, &report.report);
    assert!(!result.points.is_empty());
    for p in &result.points {
        assert!(
            p.home_base >= 1.0,
            "{}: constrained >= unlimited baseline",
            p.label
        );
        assert!(
            p.mobile >= 1.0,
            "{}: constrained >= unlimited baseline",
            p.label
        );
    }
}

/// `examples/topology_faceoff.rs`: the fabric metadata table, the
/// topology × routing scenario at Tiny scale, and its worker-count
/// independence.
#[test]
fn topology_faceoff_path() {
    // The README comparison table's static metadata at 64 nodes.
    let mesh = Fabric::Mesh(Mesh::new(8, 8));
    let torus = Fabric::Torus(Torus::new(8, 8));
    let cube = Fabric::Hypercube(Hypercube::new(6));
    assert_eq!(
        (mesh.diameter(), torus.diameter(), cube.diameter()),
        (14, 8, 6)
    );
    assert_eq!(
        (
            mesh.bisection_width(),
            torus.bisection_width(),
            cube.bisection_width()
        ),
        (8, 16, 32)
    );
    assert!(mesh.avg_distance() > torus.avg_distance());
    assert!(torus.avg_distance() > cube.avg_distance());

    // The scenario itself, byte-identical across worker counts.
    let spec = faceoff_spec(FaceoffScale::Tiny);
    let parallel = qic::run(&spec.clone().with_workers(4))
        .expect("validates")
        .report;
    let serial = qic::run(&spec.with_workers(1)).expect("validates").report;
    assert_eq!(parallel.to_json(), serial.to_json());
    assert_eq!(parallel.to_csv(), serial.to_csv());
    assert_eq!(parallel.points.len(), 6, "3 fabrics × 2 routing policies");
    for p in &parallel.points {
        assert!(p.mean("comms_completed").unwrap() > 0.0);
        assert!(p.mean("latency_p95_us").unwrap() >= p.mean("latency_p50_us").unwrap());
    }
}

/// `examples/resilience.rs`: the degradation sweep's healthy rows are
/// loss-free, the structure report is coherent, and the JSON round
/// trip reproduces the report.
#[test]
fn resilience_path() {
    use qic::fault::FaultPlan;

    let spec = ScenarioRegistry::builtin()
        .spec("resilience_sweep", ScenarioScale::SmallTest)
        .expect("registered");
    let report = qic::run(&spec).expect("preset validates");
    for point in &report.report.points {
        let rate = point.param("fault_rate").as_f64().unwrap();
        if rate == 0.0 {
            assert_eq!(point.mean("comms_dropped"), Some(0.0));
            assert_eq!(point.mean("route_inflation"), Some(1.0));
        }
        assert!(point.mean("makespan_us").unwrap() > 0.0);
    }
    // The structural half: the compiled fabric's summary is coherent.
    let degraded = FaultPlan::healthy()
        .with_seed(42)
        .with_link_kill(0.15)
        .compile(NetConfig::small_test().fabric());
    let s = degraded.summary();
    assert_eq!(s.surviving_links + s.dead_links, 24);
    assert!(s.bisection_width <= 4);
    let reloaded = ScenarioSpec::from_json(&spec.to_json()).expect("round trip");
    assert_eq!(
        qic::run(&reloaded).unwrap().to_json(),
        report.to_json(),
        "a spec fully determines its report"
    );
}

/// `examples/serve.rs`: a JSONL session over the facade's service
/// layer — resubmitting a preset is a cache hit with byte-identical
/// report bytes, and the session ends with `bye`.
#[test]
fn serve_path() {
    use qic::serve::{serve_lines, Serve, ServeConfig};
    use std::io::Cursor;

    let serve = Serve::start(ServeConfig::default());
    let script = concat!(
        "{\"op\": \"submit\", \"preset\": \"design_space\", \"scale\": \"small\"}\n",
        "{\"op\": \"wait\", \"job\": 1}\n",
        "{\"op\": \"submit\", \"preset\": \"design_space\", \"scale\": \"small\"}\n",
        "{\"op\": \"wait\", \"job\": 2}\n",
        "{\"op\": \"shutdown\"}\n",
    );
    let mut out = Vec::new();
    serve_lines(&serve.handle(), Cursor::new(script), &mut out, None).expect("session runs");
    serve.shutdown();

    let out = String::from_utf8(out).expect("utf8 events");
    let results: Vec<&str> = out
        .lines()
        .filter(|l| l.contains("\"event\": \"result\""))
        .collect();
    assert_eq!(results.len(), 2, "both waits resolve:\n{out}");
    assert!(results[0].contains("\"state\": \"done\""));
    assert!(
        results[1].contains("\"source\": \"memory\"")
            || results[1].contains("\"source\": \"coalesced\""),
        "resubmission is served without recomputation:\n{}",
        results[1]
    );
    // The embedded record documents are byte-identical across the
    // computed and cached paths.
    let report_of = |line: &str| {
        let fields = qic::sweep::json::Json::parse(line).expect("event parses");
        let fields = fields.obj_of("event").expect("object");
        qic::sweep::json::get(fields, "report", "result")
            .expect("done events embed the report")
            .str_of("report")
            .expect("string")
            .to_string()
    };
    assert_eq!(report_of(results[0]), report_of(results[1]));
    assert_eq!(out.lines().last(), Some("{\"event\": \"bye\"}"));
}

/// `examples/shor_pipeline.rs`: all four Shor phases complete on a 6×6
/// machine under both layouts.
#[test]
fn shor_pipeline_path() {
    let n = 4u32;
    let phases: [(&str, Program); 4] = [
        ("QFT", Program::qft(2 * n)),
        ("MM", Program::modular_multiplication(n)),
        ("ME", Program::modular_exponentiation(n, 1)),
        ("Shor", Program::shor_kernel(n, 1)),
    ];
    for layout in Layout::ALL {
        let mut b = Machine::builder();
        b.grid(6, 6)
            .resources(12, 12, 6)
            .outputs_per_comm(2)
            .purify_depth(1)
            .layout(layout);
        let machine = b.build().expect("6x6 machine is valid");
        for (name, program) in &phases {
            let report = machine.run(program);
            assert_eq!(
                report.instructions as usize,
                program.len(),
                "{layout}/{name}: all instructions retire"
            );
        }
    }
}

/// `examples/modular_pareto.rs`: the cost-fidelity sweep runs through
/// the scenario entry point, every point prices out, the Pareto front
/// is coherent (ascending cost, no dominated member), and swapping the
/// inter tier to a fat tree genuinely moves the chart.
#[test]
fn modular_pareto_path() {
    let spec = ScenarioRegistry::builtin()
        .spec("cost_fidelity_pareto", ScenarioScale::SmallTest)
        .expect("registered");
    let sweep = |spec: &ScenarioSpec| {
        let report = qic::run(spec).expect("modular presets validate").report;
        let coords: Vec<(f64, f64)> = report
            .points
            .iter()
            .map(|p| {
                (
                    p.mean("cost_dollars").expect("points price out"),
                    p.mean("fidelity").expect("points report fidelity"),
                )
            })
            .collect();
        let front = pareto_front(&coords);
        assert!(
            !front.is_empty(),
            "{}: the front cannot be empty",
            spec.name
        );
        for pair in front.windows(2) {
            assert!(
                coords[pair[0]].0 <= coords[pair[1]].0 && coords[pair[0]].1 < coords[pair[1]].1,
                "{}: the front ascends in both cost and fidelity",
                spec.name
            );
        }
        for (i, &(cost, fidelity)) in coords.iter().enumerate() {
            if front.contains(&i) {
                continue;
            }
            // Off the front means some front member is at least as good
            // on both axes (duplicates count: ties keep one member).
            assert!(
                front
                    .iter()
                    .any(|&j| coords[j].0 <= cost && coords[j].1 >= fidelity),
                "{}: point {i} is off the front, so a member must cover it",
                spec.name
            );
        }
        (report, coords)
    };
    let (_, optical) = sweep(&spec);

    // The fat-tree variant (the example's second act): extra switch
    // stages must show up as strictly higher cost and lower estimated
    // fidelity on otherwise identical machines.
    let mut fat = spec;
    fat.name = "cost_fidelity_pareto_fat_tree".into();
    let ExperimentSpec::Machine { machine, .. } = &mut fat.experiment else {
        unreachable!("the pareto preset is a machine scenario");
    };
    let modular = machine
        .modular
        .take()
        .expect("the pareto preset is modular");
    machine.modular = Some(Box::new(
        (*modular).with_interconnect(Interconnect::FatTree { radix: 2 }),
    ));
    let (_, fat_tree) = sweep(&fat);
    for (o, f) in optical.iter().zip(&fat_tree) {
        assert!(f.0 > o.0, "fat tree adds switch ports: {} !> {}", f.0, o.0);
        assert!(f.1 < o.1, "fat tree adds a stage: {} !< {}", f.1, o.1);
    }
}
