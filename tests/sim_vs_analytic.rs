//! Cross-crate integration: the event-driven simulator must agree with
//! the analytical models wherever both apply.

use qic::prelude::*;
use qic_net::config::NetConfig;
use qic_net::sim::{NetworkSim, OneShotDriver};
use qic_net::topology::Coord;

#[test]
fn pair_accounting_matches_analytic_raw_counts() {
    // One channel, generous resources: the simulator must consume exactly
    // raw = outputs × 2^depth pairs over exactly raw × hops teleports.
    let mut cfg = NetConfig::small_test();
    cfg.teleporters_per_node = 64;
    cfg.generators_per_edge = 64;
    cfg.purifiers_per_site = 8;
    cfg.purify_depth = 3;
    cfg.outputs_per_comm = 7;
    let hops = 5u64;
    let mut driver = OneShotDriver::new(Coord::new(0, 0), Coord::new(3, 2));
    let report = NetworkSim::new(cfg.clone()).run(&mut driver);
    let raw = cfg.raw_pairs_per_comm();
    assert_eq!(raw, 56);
    assert_eq!(report.teleport_ops, raw * hops);
    assert_eq!(report.pairs_consumed, raw * hops);
    assert_eq!(report.purified_outputs, 7);
    // Queue purifier op count: (2^depth − 1) per output.
    assert_eq!(report.purify_ops, 7 * 7);
}

#[test]
fn uncontended_latency_is_near_the_analytic_setup_latency() {
    // With abundant resources, the simulated channel latency should be
    // within a small factor of the analytic pipeline estimate.
    let mut cfg = NetConfig::small_test();
    cfg.teleporters_per_node = 256;
    cfg.generators_per_edge = 256;
    cfg.purifiers_per_site = 64;
    cfg.purify_depth = 3;
    cfg.outputs_per_comm = 7;
    let mut driver = OneShotDriver::new(Coord::new(0, 0), Coord::new(3, 0));
    let report = NetworkSim::new(cfg).run(&mut driver);
    let model = ChannelModel::ion_trap();
    let plan = model.plan(3).expect("feasible");
    let sim = report.makespan.as_us_f64();
    let analytic = plan.setup_latency.as_us_f64();
    assert!(
        sim / analytic < 8.0 && analytic / sim < 8.0,
        "sim {sim}µs vs analytic {analytic}µs"
    );
}

#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let mut b = Machine::builder();
        b.grid(4, 4)
            .resources(6, 6, 3)
            .outputs_per_comm(3)
            .purify_depth(2)
            .seed(99);
        b.build()
            .expect("valid")
            .run(&qic_workload::Program::qft(12))
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

#[test]
fn starving_any_resource_slows_the_machine() {
    let program = qic_workload::Program::qft(12);
    let run = |t: u32, g: u32, p: u32| {
        let mut b = Machine::builder();
        b.grid(4, 4)
            .resources(t, g, p)
            .outputs_per_comm(7)
            .purify_depth(3);
        b.build().expect("valid").run(&program).makespan
    };
    let rich = run(32, 32, 16);
    assert!(run(2, 32, 16) > rich, "teleporter starvation");
    assert!(run(32, 2, 16) > rich, "generator starvation");
    assert!(run(32, 32, 1) > rich, "purifier starvation");
}

#[test]
fn figure16_reproduces_paper_shape_at_tiny_scale() {
    use qic::core::experiment::{figure16_from_campaign, Fig16Scale};
    use qic::core::scenario::fig16_spec;
    let report = qic::run(&fig16_spec(Fig16Scale::Tiny)).expect("figure presets validate");
    let result = figure16_from_campaign(Fig16Scale::Tiny, &report.report);
    // All constrained configs are slower than the unlimited baseline.
    for p in &result.points {
        assert!(p.home_base >= 1.0);
        assert!(p.mobile >= 1.0);
    }
    // The extreme purifier squeeze hurts Mobile at least as much as the
    // moderate one (the paper's 4p-vs-8p observation).
    let g4 = result.points.iter().find(|p| p.label == "t=g=4p").unwrap();
    let g8 = result.points.iter().find(|p| p.label == "t=g=8p").unwrap();
    assert!(g8.mobile >= g4.mobile);
}
