//! Golden-file tests: the Scenario API reproduces the pre-redesign
//! figure campaigns **byte for byte**.
//!
//! The files under `tests/golden/` were captured from the legacy
//! per-figure functions (`figure10_campaign`, `figure12_campaign`,
//! `figure16_campaign`, `topology_faceoff_campaign`) immediately before
//! the redesign. Any drift in the new path — campaign identity, axis
//! values, per-point evaluation, emitter formatting — fails here.

use qic::core::experiment::{FaceoffScale, Fig16Scale};
use qic::core::scenario::{faceoff_spec, fig16_spec, ScenarioRegistry, ScenarioScale};
use qic::ScenarioReport;

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing golden file {path}: {e}"))
}

fn assert_matches_golden(report: &ScenarioReport, stem: &str) {
    assert_eq!(
        report.to_csv(),
        golden(&format!("{stem}.csv")),
        "{stem}: CSV drifted from the pre-redesign output"
    );
    assert_eq!(
        report.to_json(),
        golden(&format!("{stem}.json")),
        "{stem}: JSON drifted from the pre-redesign output"
    );
}

#[test]
fn fig10_is_byte_identical_to_the_legacy_campaign() {
    let spec = ScenarioRegistry::builtin()
        .spec("fig10", ScenarioScale::Full)
        .expect("registered");
    assert_matches_golden(&qic::run(&spec).expect("preset validates"), "fig10");
}

#[test]
fn fig12_is_byte_identical_to_the_legacy_campaign() {
    let spec = ScenarioRegistry::builtin()
        .spec("fig12", ScenarioScale::Full)
        .expect("registered");
    assert_matches_golden(&qic::run(&spec).expect("preset validates"), "fig12");
}

#[test]
fn fig16_is_byte_identical_to_the_legacy_campaign() {
    // Tiny scale: the same configuration the legacy unit suite ran.
    let report = qic::run(&fig16_spec(Fig16Scale::Tiny)).expect("preset validates");
    assert_matches_golden(&report, "fig16_tiny");
}

#[test]
fn faceoff_is_byte_identical_to_the_legacy_campaign() {
    let report = qic::run(&faceoff_spec(FaceoffScale::Tiny)).expect("preset validates");
    assert_matches_golden(&report, "faceoff_tiny");
}

#[test]
fn json_round_trip_preserves_golden_outputs() {
    // Serialize → parse → run must hit the same bytes: the spec really
    // is the whole experiment.
    let spec = fig16_spec(Fig16Scale::Tiny);
    let reloaded = qic::ScenarioSpec::from_json(&spec.to_json()).expect("round-trip");
    assert_matches_golden(&qic::run(&reloaded).expect("validates"), "fig16_tiny");
}
