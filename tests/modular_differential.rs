//! Differential suite for the modular layer. The contract under test:
//! a 1-module composition with an ideal inter tier is *the same
//! machine* as the flat fabric — byte-identical reports at both the
//! simulator and scenario layers — and the modular presets keep the
//! campaign determinism and service-cache contracts of every other
//! scenario.

use qic::net::config::NetConfig;
use qic::net::sim::{BatchDriver, NetworkSim};
use qic::prelude::*;

/// The degenerate composition: one module, zero-latency/unit-fidelity
/// inter tier, no cost columns.
fn degenerate() -> ModularSpec {
    ModularSpec::single().with_report_cost(false)
}

/// K=1 + ideal tier: the simulator must emit an equal `NetReport` for
/// the flat fabric and its degenerate composition, on every base
/// topology under every routing policy.
#[test]
fn one_module_matches_flat_fabric_on_every_policy() {
    let pairs = vec![
        (Coord::new(0, 0), Coord::new(3, 3)),
        (Coord::new(1, 2), Coord::new(2, 0)),
        (Coord::new(3, 1), Coord::new(0, 2)),
        (Coord::new(2, 2), Coord::new(2, 2)),
    ];
    for kind in TopologyKind::ALL {
        for policy in RoutingPolicy::ALL {
            let cfg = NetConfig::small_test()
                .with_topology(kind)
                .with_routing(policy);
            let mut driver = BatchDriver::new(pairs.clone());
            let flat = NetworkSim::new(cfg.clone()).run(&mut driver);
            let composed = ModularFabric::new(cfg.fabric(), &degenerate());
            let mut driver = BatchDriver::new(pairs.clone());
            let modular = NetworkSim::with_topology(cfg, composed).run(&mut driver);
            assert_eq!(flat, modular, "{kind} × {policy} diverged");
        }
    }
}

/// The same contract one layer up: a scenario whose machine carries a
/// degenerate modular block produces byte-identical report JSON/CSV to
/// the block-free spec, across the full topology × routing sweep
/// (program workload, so the scheduler path is covered too).
#[test]
fn degenerate_modular_scenario_is_byte_identical_to_flat() {
    let machine = MachineSpec::preset(NetPreset::SmallTest)
        .with_purify_depth(2)
        .with_outputs_per_comm(3);
    let sweep = |machine: MachineSpec| {
        ScenarioSpec::machine("modular_diff", machine, WorkloadSpec::Qft { qubits: 16 })
            .with_axis(ScenarioAxis::Topologies {
                kinds: TopologyKind::ALL.to_vec(),
            })
            .with_axis(ScenarioAxis::Routings {
                policies: RoutingPolicy::ALL.to_vec(),
            })
    };
    let flat = qic::run(&sweep(machine.clone())).expect("flat spec validates");
    let modular =
        qic::run(&sweep(machine.with_modular(degenerate()))).expect("modular spec validates");
    assert_eq!(
        flat.report.to_json(),
        modular.report.to_json(),
        "degenerate modular reports must be byte-identical"
    );
    assert_eq!(flat.report.to_csv(), modular.report.to_csv());
}

/// Both modular presets honour the campaign determinism contract:
/// byte-identical reports at 1 and 4 workers, and the Pareto preset
/// carries its cost/fidelity/latency columns in every point.
#[test]
fn modular_presets_are_worker_count_independent() {
    for name in ["modular_faceoff", "cost_fidelity_pareto"] {
        let spec = ScenarioRegistry::builtin()
            .spec(name, ScenarioScale::SmallTest)
            .expect("registered");
        let serial = qic::run(&spec.clone().with_workers(1))
            .expect("validates")
            .report;
        let parallel = qic::run(&spec.with_workers(4)).expect("validates").report;
        assert_eq!(serial.to_json(), parallel.to_json(), "{name}: JSON drifted");
        assert_eq!(serial.to_csv(), parallel.to_csv(), "{name}: CSV drifted");
        for point in &parallel.points {
            for metric in ["cost_dollars", "fidelity", "predicted_latency_ns"] {
                let v = point
                    .mean(metric)
                    .unwrap_or_else(|| panic!("{name}: point missing {metric}"));
                assert!(v > 0.0, "{name}: nonsense {metric} {v}");
            }
            let f = point.mean("fidelity").unwrap();
            assert!(f <= 1.0, "{name}: fidelity {f} > 1");
        }
    }
}

/// More modules must cost more dollars and (with a lossy inter tier)
/// estimate lower end-to-end fidelity — the two ends of the Pareto
/// trade the sweep exists to chart.
#[test]
fn pareto_preset_trades_cost_against_fidelity() {
    let spec = ScenarioRegistry::builtin()
        .spec("cost_fidelity_pareto", ScenarioScale::SmallTest)
        .expect("registered");
    let report = qic::run(&spec).expect("validates").report;
    let mesh_at = |modules: i64| {
        report
            .points
            .iter()
            .find(|p| {
                p.param("topology").as_text() == Some("mesh")
                    && p.param("modules").as_i64() == Some(modules)
                    && p.param("inter_cost").as_f64() == Some(4.0)
            })
            .unwrap_or_else(|| panic!("mesh × {modules} modules × cost 4 swept"))
    };
    let (two, four) = (mesh_at(2), mesh_at(4));
    assert!(four.mean("cost_dollars") > two.mean("cost_dollars"));
    assert!(four.mean("fidelity") < two.mean("fidelity"));
}

/// A dead module masks every one of its nodes: communications into the
/// dead half drop, while the healthy plan reports zero drops on the
/// same composed machine.
#[test]
fn dead_module_drops_cross_module_traffic() {
    let machine = || {
        MachineSpec::preset(NetPreset::SmallTest)
            .with_purify_depth(2)
            .with_outputs_per_comm(3)
            .with_resources(6, 4, 2)
            .with_modular(ModularSpec::single().with_modules(2).with_latency_ns(500))
    };
    let run = |plan: FaultPlan| {
        let spec = ScenarioSpec::machine(
            "dead_module",
            machine().with_fault(plan),
            WorkloadSpec::Synthetic {
                qubits: 8,
                comms: 16,
                seed: 2006,
            },
        );
        qic::run(&spec).expect("validates").report
    };
    let healthy = run(FaultPlan::healthy());
    assert_eq!(healthy.points[0].mean("comms_dropped"), Some(0.0));
    let masked = run(FaultPlan::healthy().with_dead_module(1));
    assert!(
        masked.points[0].mean("comms_dropped").unwrap() > 0.0,
        "half the machine is gone; some synthetic traffic must drop"
    );
}

/// Structured validation: a dead-module index beyond the composed
/// machine is rejected at spec level, not at panic time.
#[test]
fn out_of_range_dead_module_is_a_spec_error() {
    let spec = ScenarioSpec::machine(
        "bad_dead_module",
        MachineSpec::preset(NetPreset::SmallTest)
            .with_purify_depth(2)
            .with_outputs_per_comm(3)
            .with_resources(6, 4, 2)
            .with_modular(ModularSpec::single().with_modules(2))
            .with_fault(FaultPlan::healthy().with_dead_module(2)),
        WorkloadSpec::Qft { qubits: 16 },
    );
    let err = spec
        .validate()
        .expect_err("module 2 of 2 is off the machine");
    assert!(
        err.to_string().contains("dead module 2"),
        "unexpected error: {err}"
    );
}

/// The service layer's content-addressed cache treats the modular block
/// as spec identity: resubmitting `cost_fidelity_pareto` is a cache hit
/// with byte-identical embedded report documents.
#[test]
fn pareto_preset_hits_the_serve_cache() {
    use qic::serve::{serve_lines, Serve, ServeConfig};
    use std::io::Cursor;

    let serve = Serve::start(ServeConfig::default());
    let script = concat!(
        "{\"op\": \"submit\", \"preset\": \"cost_fidelity_pareto\", \"scale\": \"small\"}\n",
        "{\"op\": \"wait\", \"job\": 1}\n",
        "{\"op\": \"submit\", \"preset\": \"cost_fidelity_pareto\", \"scale\": \"small\"}\n",
        "{\"op\": \"wait\", \"job\": 2}\n",
        "{\"op\": \"shutdown\"}\n",
    );
    let mut out = Vec::new();
    serve_lines(&serve.handle(), Cursor::new(script), &mut out, None).expect("session runs");
    serve.shutdown();

    let out = String::from_utf8(out).expect("utf8 events");
    let results: Vec<&str> = out
        .lines()
        .filter(|l| l.contains("\"event\": \"result\""))
        .collect();
    assert_eq!(results.len(), 2, "both waits resolve:\n{out}");
    assert!(results[0].contains("\"state\": \"done\""));
    assert!(
        results[1].contains("\"source\": \"memory\"")
            || results[1].contains("\"source\": \"coalesced\""),
        "resubmission is served without recomputation:\n{}",
        results[1]
    );
    let report_of = |line: &str| {
        let fields = qic::sweep::json::Json::parse(line).expect("event parses");
        let fields = fields.obj_of("event").expect("object");
        qic::sweep::json::get(fields, "report", "result")
            .expect("done events embed the report")
            .str_of("report")
            .expect("string")
            .to_string()
    };
    assert_eq!(report_of(results[0]), report_of(results[1]));
}
