//! Serial-vs-parallel campaign determinism over the real simulator:
//! the same campaign run with 1 and with 4 worker threads must produce
//! byte-identical `CampaignReport` JSON (and CSV, and an equal report
//! value), with replicate seeds flowing into the simulator.

use qic::net::config::NetConfig;
use qic::prelude::*;

fn campaign() -> Campaign {
    let space = ParamSpace::new()
        .axis(Axis::ints("mesh", [4, 5]))
        .axis(Axis::ints("depth", [1, 2]))
        .axis(Axis::ints("units", [2, 4]));
    Campaign::new("determinism", space).seed(7).replicates(2)
}

fn evaluate(point: &SweepPoint<'_>, ctx: RunCtx) -> Metrics {
    let mesh = point.i64("mesh") as u16;
    let mut b = Machine::builder();
    b.net_config(NetConfig::small_test())
        .grid(mesh, mesh)
        .purify_depth(point.u32("depth"))
        .resources(point.u32("units"), point.u32("units"), point.u32("units"))
        .seed(ctx.seed);
    let machine = b.build().expect("sweep configs validate");
    machine.run(&Program::qft(8)).net.metrics()
}

#[test]
fn serial_and_parallel_runs_are_byte_identical() {
    let serial = campaign().workers(1).run(evaluate);
    let parallel = campaign().workers(4).run(evaluate);
    assert_eq!(serial, parallel, "reports must be value-identical");
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "JSON must be byte-identical"
    );
    assert_eq!(
        serial.to_csv(),
        parallel.to_csv(),
        "CSV must be byte-identical"
    );
}

#[test]
fn replicates_carry_derived_seeds_into_the_simulator() {
    let report = campaign().workers(4).run(evaluate);
    assert_eq!(report.points.len(), 8);
    for point in &report.points {
        assert_eq!(point.replicates.len(), 2);
        // The net RNG only draws classical correction bits, which do
        // not move simulated time — so the replicate CI exists (n=2)
        // and collapses to a zero half-width, with the mean inside the
        // (degenerate) replicate envelope.
        let s = point
            .summaries
            .iter()
            .find(|s| s.name == "makespan_us")
            .expect("makespan reported");
        assert_eq!(s.n, 2);
        assert!(s.ci95.is_some());
        assert!(s.min <= s.mean && s.mean <= s.max);
        // Tail latency satellite metrics flow through end to end.
        let p50 = point.mean("latency_p50_us").unwrap();
        let p95 = point.mean("latency_p95_us").unwrap();
        let p99 = point.mean("latency_p99_us").unwrap();
        assert!(p50 <= p95 && p95 <= p99);
    }
}
