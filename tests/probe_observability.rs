//! Cross-crate observability guarantees:
//!
//! * attaching a `RecordingProbe` never perturbs the simulation — on
//!   every fabric × routing × fault combination the traced report,
//!   minus its timeline block, equals the unprobed report exactly;
//! * the recorded utilization time series integrate back to the
//!   simulator's scalar utilizations (property-tested over random
//!   traffic and grid resolutions);
//! * scenario-level trace export is deterministic: the same observed
//!   spec writes byte-identical `.events.jsonl` and `.trace.json`
//!   files run-over-run and for 1 vs 4 workers.

use std::collections::BTreeMap;
use std::path::PathBuf;

use proptest::prelude::*;

use qic::fault::FaultPlan;
use qic::net::config::NetConfig;
use qic::net::sim::{BatchDriver, NetworkSim};
use qic::net::topology::{Coord, TopologyKind};
use qic::prelude::*;
use qic::probe::RecordingProbe;
use qic::ObserveSpec;

fn crossing_batch() -> Vec<(Coord, Coord)> {
    vec![
        (Coord::new(0, 0), Coord::new(3, 3)),
        (Coord::new(3, 3), Coord::new(0, 0)),
        (Coord::new(0, 3), Coord::new(3, 0)),
        (Coord::new(1, 2), Coord::new(2, 0)),
        (Coord::new(1, 1), Coord::new(2, 2)),
    ]
}

#[test]
fn recording_probe_is_invisible_to_the_report_on_every_combination() {
    for kind in TopologyKind::ALL {
        for routing in RoutingPolicy::ALL {
            for plan in [None, Some(FaultPlan::healthy().with_dead_link(0))] {
                let cfg = NetConfig::small_test()
                    .with_topology(kind)
                    .with_routing(routing);
                let ctx = format!("{kind:?} × {routing:?} × fault={}", plan.is_some());

                let (unprobed, mut traced) = match &plan {
                    None => (
                        NetworkSim::new(cfg.clone()).run(&mut BatchDriver::new(crossing_batch())),
                        NetworkSim::with_probe(cfg, RecordingProbe::new())
                            .run_traced(&mut BatchDriver::new(crossing_batch()))
                            .0,
                    ),
                    Some(plan) => (
                        NetworkSim::with_topology(cfg.clone(), plan.clone().compile(cfg.fabric()))
                            .run(&mut BatchDriver::new(crossing_batch())),
                        NetworkSim::with_topology_probe(
                            cfg.clone(),
                            plan.clone().compile(cfg.fabric()),
                            RecordingProbe::new(),
                        )
                        .run_traced(&mut BatchDriver::new(crossing_batch()))
                        .0,
                    ),
                };
                assert!(traced.timeline.is_some(), "{ctx}: probe must record");
                traced.timeline = None;
                assert_eq!(traced, unprobed, "{ctx}: the probe perturbed the run");
            }
        }
    }
}

proptest! {
    #[test]
    fn utilization_traces_integrate_to_the_report_scalars(
        pairs in proptest::collection::vec(
            ((0u16..4, 0u16..4), (0u16..4, 0u16..4)), 1..8),
        bins in 1u32..200,
        seed in 0u64..500,
    ) {
        let mut batch: Vec<(Coord, Coord)> = pairs
            .iter()
            .filter(|(s, d)| s != d)
            .map(|&((sx, sy), (dx, dy))| (Coord::new(sx, sy), Coord::new(dx, dy)))
            .collect();
        if batch.is_empty() {
            batch.push((Coord::new(0, 0), Coord::new(3, 3)));
        }
        let mut cfg = NetConfig::small_test();
        cfg.seed = seed;
        let (report, _) = NetworkSim::with_probe(cfg, RecordingProbe::with_bins(bins))
            .run_traced(&mut BatchDriver::new(batch));
        let t = report.timeline.as_ref().expect("probe attached");
        prop_assert_eq!(t.bins, bins);
        prop_assert!(
            (t.mean_teleporter_utilization() - report.teleporter_utilization).abs() < 1e-9,
            "teleporter trace integral {} vs scalar {}",
            t.mean_teleporter_utilization(),
            report.teleporter_utilization,
        );
        prop_assert!(
            (t.mean_purifier_utilization() - report.purifier_utilization).abs() < 1e-9,
            "purifier trace integral {} vs scalar {}",
            t.mean_purifier_utilization(),
            report.purifier_utilization,
        );
    }
}

/// All observed output files of one run, keyed by file name.
fn run_observed(dir: &PathBuf, workers: usize) -> BTreeMap<String, String> {
    let spec = ScenarioSpec::machine(
        "obs_determinism",
        MachineSpec::preset(NetPreset::SmallTest),
        WorkloadSpec::Synthetic {
            qubits: 8,
            comms: 16,
            seed: 7,
        },
    )
    .with_axis(ScenarioAxis::Topologies {
        kinds: TopologyKind::ALL.to_vec(),
    })
    .with_replicates(2)
    .with_workers(workers)
    .with_observe(ObserveSpec::to_dir(dir.display().to_string()).with_bins(32));
    qic::run(&spec).expect("spec validates");
    let mut files = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("observe dir exists") {
        let path = entry.expect("readable entry").path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        // The progress stream is wall-clock by contract; everything
        // else must be deterministic.
        if name.ends_with(".progress.jsonl") {
            continue;
        }
        files.insert(name, std::fs::read_to_string(path).expect("readable"));
    }
    files
}

#[test]
fn scenario_trace_export_is_deterministic_across_runs_and_workers() {
    let base = std::env::temp_dir().join(format!("qic_probe_obs_{}", std::process::id()));
    let dirs = [base.join("a"), base.join("b"), base.join("c")];
    let first = run_observed(&dirs[0], 1);
    let again = run_observed(&dirs[1], 1);
    let wide = run_observed(&dirs[2], 4);
    assert_eq!(first.len(), 3 * 2 * 2, "events + trace per (point, rep)");
    assert!(first.keys().any(|k| k.ends_with(".events.jsonl")));
    assert!(first.keys().any(|k| k.ends_with(".trace.json")));
    assert_eq!(first, again, "same spec, same bytes");
    assert_eq!(first, wide, "worker count must not change any trace");
    // Spot-validate the documents against the schema checker.
    for (name, text) in &first {
        if name.ends_with(".events.jsonl") {
            qic::probe::schema::validate_events_jsonl(text)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        } else {
            qic::probe::schema::validate_chrome_trace(text)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
    let _ = std::fs::remove_dir_all(&base);
}
