//! Campaign sharding differentials: for arbitrary parameter spaces and
//! every registry preset, K shard reports merge byte-identically to the
//! one-worker serial run — the contract `scenario_run --shard i/K`
//! plus `--merge K` is built on.

use proptest::prelude::*;

use qic::prelude::*;
use qic::sweep::prelude::{
    Axis, Campaign, CampaignReport, Metrics, ParamSpace, RunCtx, SweepPoint,
};
use qic::sweep::Shard;

/// A synthetic evaluation with enough structure to expose index or
/// seed cross-wiring: every metric depends on the point's values, the
/// derived seed, and the replicate number.
fn eval(point: &SweepPoint<'_>, ctx: RunCtx) -> Metrics {
    let sum: i64 = (0..point.params().len() as u32)
        .map(|a| point.i64(&format!("ax{a}")))
        .sum();
    Metrics::new()
        .with("sum", sum as f64)
        .with("seeded", (ctx.seed % 100_003) as f64 / 7.0)
        .with("rep", f64::from(ctx.replicate))
}

fn campaign(axes: &[Vec<i64>], replicates: u32, seed: u64, workers: usize) -> Campaign {
    let space = axes
        .iter()
        .enumerate()
        .fold(ParamSpace::new(), |s, (i, v)| {
            s.axis(Axis::ints(format!("ax{i}"), v.iter().copied()))
        });
    Campaign::new("prop", space)
        .replicates(replicates)
        .seed(seed)
        .workers(workers)
}

proptest! {
    /// Arbitrary axes x shard count x worker count: the merged shard
    /// reports are byte-identical (JSON and CSV) to the one-worker
    /// serial run.
    #[test]
    fn merged_shards_equal_the_serial_run(
        axes in proptest::collection::vec(
            proptest::collection::vec(-50i64..50, 1..5), 1..4),
        replicates in 1u32..=3,
        shards in 1usize..=8,
        workers in 1usize..=4,
        seed in any::<u64>(),
    ) {
        let serial = campaign(&axes, replicates, seed, 1).run(eval);
        let parts: Vec<CampaignReport> = (0..shards)
            .map(|i| {
                campaign(&axes, replicates, seed, workers)
                    .run_shard(Shard::new(i, shards), eval)
            })
            .collect();
        let merged = CampaignReport::merge(parts).unwrap();
        prop_assert_eq!(&merged, &serial);
        prop_assert_eq!(merged.to_json(), serial.to_json());
        prop_assert_eq!(merged.to_csv(), serial.to_csv());
        prop_assert_eq!(merged.to_record_json(), serial.to_record_json());
    }

    /// Streaming aggregation emits the same CSV bytes and summaries as
    /// the buffered engine, for any space and worker count.
    #[test]
    fn streaming_csv_equals_buffered_csv(
        axes in proptest::collection::vec(
            proptest::collection::vec(-50i64..50, 1..5), 1..4),
        replicates in 1u32..=3,
        workers in 1usize..=4,
        seed in any::<u64>(),
    ) {
        let buffered = campaign(&axes, replicates, seed, 1).run(eval);
        let streamed = campaign(&axes, replicates, seed, workers).run_streaming(eval);
        prop_assert_eq!(buffered.to_csv(), streamed.to_csv());
        for (b, s) in buffered.points.iter().zip(&streamed.points) {
            prop_assert_eq!(&b.summaries, &s.summaries);
        }
    }
}

/// Every registry preset, sharded two ways at SmallTest scale, merges
/// back to the serial report — JSON and CSV bytes alike. This is the
/// acceptance differential for `--shard`, run against real simulator
/// and channel-model evaluations rather than synthetic metrics.
#[test]
fn every_preset_shards_and_merges_byte_identically() {
    for entry in ScenarioRegistry::builtin().entries() {
        let spec = entry.spec(ScenarioScale::SmallTest);
        let serial = qic::run(&spec).unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        let parts: Vec<CampaignReport> = (0..2)
            .map(|i| {
                qic::run_shard(&spec, Shard::new(i, 2))
                    .unwrap_or_else(|e| panic!("{} shard {i}: {e}", entry.name))
                    .report
            })
            .collect();
        let merged = CampaignReport::merge(parts)
            .unwrap_or_else(|e| panic!("{}: merge failed: {e}", entry.name));
        assert_eq!(merged, serial.report, "{}: reports differ", entry.name);
        assert_eq!(
            merged.to_json(),
            serial.report.to_json(),
            "{}: JSON bytes differ",
            entry.name
        );
        assert_eq!(
            merged.to_csv(),
            serial.report.to_csv(),
            "{}: CSV bytes differ",
            entry.name
        );
    }
}

/// A shard of a checkpointed spec is rejected up front: silently
/// skipping the manifest would be worse than refusing.
#[test]
fn sharding_a_checkpointed_spec_is_an_error() {
    let spec = ScenarioRegistry::builtin()
        .spec("synthetic_stress", ScenarioScale::SmallTest)
        .unwrap()
        .with_checkpoint(CheckpointSpec::to_dir("target/shard_ckpt_conflict"));
    let err = qic::run_shard(&spec, Shard::new(0, 2)).unwrap_err();
    assert!(
        matches!(err, ScenarioError::Spec { .. }),
        "expected a spec error, got {err}"
    );
}
