//! Cross-crate integration: the analytical channel plans must be
//! internally consistent and consistent with the physics layer.

use qic::prelude::*;
use qic_analytic::link;
use qic_analytic::plan::ChannelError;
use qic_analytic::strategy::PurifyPlacement;
use qic_physics::bell::BellDiagonal;

#[test]
fn plans_meet_threshold_across_all_distances_and_placements() {
    let base = ChannelModel::ion_trap();
    for placement in PurifyPlacement::FIGURE_SET {
        let model = base.clone().with_placement(placement);
        for hops in [1u32, 4, 16, 40, 64] {
            let plan = model
                .plan(hops)
                .unwrap_or_else(|e| panic!("{placement}, {hops} hops: {e}"));
            assert!(
                plan.final_state.error() <= constants::THRESHOLD_ERROR,
                "{placement} at {hops} hops delivered {:.2e}",
                plan.final_state.error()
            );
            assert!(
                plan.endpoint_rounds >= 1,
                "endpoint purification always runs"
            );
            assert!(
                plan.teleported_pairs >= f64::from(hops),
                "at least one pair crosses"
            );
            assert!(plan.total_pairs >= plan.teleported_pairs);
        }
    }
}

#[test]
fn endpoints_only_identity_total_equals_endpoint_pairs_times_hops_plus_one() {
    let model = ChannelModel::ion_trap();
    for hops in [5u32, 17, 33, 60] {
        let plan = model.plan(hops).expect("feasible");
        let expect = plan.endpoint_pairs * f64::from(hops + 1);
        assert!(
            (plan.total_pairs - expect).abs() < 1e-6 * expect,
            "hops={hops}: {} vs {}",
            plan.total_pairs,
            expect
        );
    }
}

#[test]
fn arriving_state_matches_manual_chain_composition() {
    // Rebuild the endpoints-only arriving state by hand from physics
    // primitives and compare against the plan.
    let model = ChannelModel::ion_trap();
    let hops = 12u32;
    let plan = model.plan(hops).expect("feasible");
    let rates = ErrorRates::ion_trap();
    let link = link::raw_link_state(600, &rates);
    let mut state = link;
    for _ in 0..hops {
        state = teleport::teleport_pair(&state, &link, &rates);
    }
    assert!(
        state.approx_eq(&plan.arriving_state, 1e-12),
        "manual {state} vs plan {}",
        plan.arriving_state
    );
}

#[test]
fn tighter_targets_cost_more() {
    let loose = ChannelModel::ion_trap().with_target_error(1e-3);
    let tight = ChannelModel::ion_trap().with_target_error(1e-5);
    let a = loose.plan(30).expect("loose feasible");
    let b = tight.plan(30).expect("tight feasible");
    assert!(b.endpoint_rounds >= a.endpoint_rounds);
    assert!(b.total_pairs >= a.total_pairs);
    assert!(b.final_state.error() <= 1e-5);
}

#[test]
fn breakdown_point_is_between_1e6_and_1e4() {
    // Figure 12's claim through the public API: find the uniform error
    // rate where channels become infeasible.
    let mut lo = 1e-7f64;
    let mut hi = 1e-3f64;
    for _ in 0..40 {
        let mid = (lo.ln() + hi.ln()).div_euclid(2.0).exp();
        let rates = ErrorRates::uniform(mid).expect("valid probability");
        let model = ChannelModel::ion_trap().with_rates(rates);
        match model.plan(30) {
            Ok(_) => lo = mid,
            Err(ChannelError::Unreachable { .. }) => hi = mid,
            Err(other) => panic!("unexpected error {other}"),
        }
    }
    assert!(
        (1e-6..=1e-4).contains(&hi),
        "breakdown near 1e-5 (got {hi:.2e})"
    );
}

#[test]
fn purified_links_really_are_what_the_planner_says() {
    // The planner's link state equals running the purify crate manually.
    let rates = ErrorRates::ion_trap();
    let noise = RoundNoise::from_rates(&rates);
    let spec = link::LinkSpec::raw_default().with_rounds(2);
    let from_link = link::link_state(&spec, &rates, &noise);
    let mut manual = link::raw_link_state(600, &rates);
    for _ in 0..2 {
        manual = Protocol::Dejmps.noisy_step(&manual, &noise).state;
    }
    assert!(from_link.approx_eq(&manual, 1e-15));
    let _unused: BellDiagonal = manual;
}
