//! Cross-crate resilience guarantees:
//!
//! * a zero-fault `FaultPlan` wrapped around any fabric reproduces the
//!   healthy simulator's report exactly (minus the fault block);
//! * fault scenarios are deterministic across sweep worker counts
//!   (byte-identical `ScenarioReport` CSV/JSON for 1 vs 4 workers);
//! * severed fabrics surface structured `Unreachable` drops instead of
//!   hanging;
//! * the simulator's measured cross-bisection throughput collapse never
//!   beats the `qic-analytic` degraded-bisection bound.

use qic::fault::{FaultPlan, UNREACHABLE};
use qic::net::config::NetConfig;
use qic::net::sim::{BatchDriver, CommOutcome, NetworkSim};
use qic::net::topology::{Coord, Topology, TopologyKind};
use qic::prelude::*;

fn crossing_batch() -> Vec<(Coord, Coord)> {
    vec![
        (Coord::new(0, 0), Coord::new(3, 3)),
        (Coord::new(3, 3), Coord::new(0, 0)),
        (Coord::new(0, 3), Coord::new(3, 0)),
        (Coord::new(3, 0), Coord::new(0, 3)),
        (Coord::new(1, 1), Coord::new(2, 2)),
    ]
}

#[test]
fn zero_fault_wrapper_reproduces_the_healthy_report_on_every_fabric() {
    for kind in TopologyKind::ALL {
        for routing in RoutingPolicy::ALL {
            let cfg = NetConfig::small_test()
                .with_topology(kind)
                .with_routing(routing);
            let healthy = NetworkSim::new(cfg.clone()).run(&mut BatchDriver::new(crossing_batch()));
            let wrapped =
                NetworkSim::with_topology(cfg.clone(), FaultPlan::healthy().compile(cfg.fabric()))
                    .run(&mut BatchDriver::new(crossing_batch()));
            // The fault layer costs nothing when unused: everything but
            // the (all-zero) fault block is identical.
            let mut stripped = wrapped.clone();
            stripped.fault = None;
            assert_eq!(stripped, healthy, "{kind}/{routing}");
            let fault = wrapped.fault.expect("fault-aware topology reports stats");
            assert_eq!(fault.dropped, 0);
            assert_eq!(fault.rerouted, 0);
            assert_eq!(fault.delivered, healthy.comms_completed);
            assert_eq!(fault.mean_route_inflation, 1.0);
        }
    }
}

#[test]
fn fault_scenarios_are_worker_count_independent() {
    for name in ["resilience_sweep", "degraded_faceoff"] {
        let spec = ScenarioRegistry::builtin()
            .spec(name, ScenarioScale::SmallTest)
            .expect("registered");
        let serial = qic::run(&spec.clone().with_workers(1)).unwrap();
        let parallel = qic::run(&spec.with_workers(4)).unwrap();
        assert_eq!(serial.to_csv(), parallel.to_csv(), "{name}: CSV drifted");
        assert_eq!(serial.to_json(), parallel.to_json(), "{name}: JSON drifted");
    }
}

#[test]
fn severed_endpoints_drop_with_structured_outcomes() {
    // Cut node 0 off a 4×4 mesh entirely (its two incident links die).
    let cfg = NetConfig::small_test();
    let fabric = cfg.fabric();
    let east = fabric.link_index(0, Port(0)) as u32;
    let north = fabric.link_index(0, Port(2)) as u32;
    let degraded = FaultPlan::healthy()
        .with_dead_link(east)
        .with_dead_link(north)
        .compile(fabric);
    assert_eq!(Topology::distance(&degraded, 0, 15), UNREACHABLE);

    let mut driver = BatchDriver::new(vec![
        (Coord::new(0, 0), Coord::new(3, 3)), // severed → dropped
        (Coord::new(1, 0), Coord::new(3, 3)), // fine
    ]);
    let report = NetworkSim::with_topology(cfg, degraded).run(&mut driver);
    assert_eq!(report.comms_completed, 2, "drops still finish");
    let fault = report.fault.expect("degraded run reports fault stats");
    assert_eq!((fault.delivered, fault.dropped), (1, 1));
    let outcomes: Vec<CommOutcome> = driver.completions.iter().map(|d| d.outcome).collect();
    assert!(outcomes.contains(&CommOutcome::Unreachable));
    assert!(outcomes.contains(&CommOutcome::Delivered));
    // The dropped comm contributes no latency sample.
    assert_eq!(report.comm_latency_us.count(), 1);
}

#[test]
fn detours_inflate_routes_but_deliver() {
    // Kill one central link on the mesh: dimension-order traffic through
    // it must detour, stay minimal in the surviving metric, and deliver.
    let cfg = NetConfig::small_test();
    let fabric = cfg.fabric();
    // Link between (1,1) and (2,1): on the straight route 0,1 → 3,1.
    let mid = fabric.link_index(fabric.node_index(Coord::new(1, 1)), Port(0)) as u32;
    let degraded = FaultPlan::healthy().with_dead_link(mid).compile(fabric);
    let mut driver = BatchDriver::new(vec![(Coord::new(0, 1), Coord::new(3, 1))]);
    let report = NetworkSim::with_topology(cfg, degraded).run(&mut driver);
    let fault = report.fault.unwrap();
    assert_eq!(fault.delivered, 1);
    assert_eq!(fault.dropped, 0);
    assert_eq!(fault.rerouted, 1, "the straight path is gone");
    // 3 healthy hops → 5 surviving hops (around the dead link).
    assert!((fault.mean_route_inflation - 5.0 / 3.0).abs() < 1e-12);
}

#[test]
fn measured_throughput_never_beats_the_degraded_bisection_bound() {
    use qic::analytic::degraded::{bisection_comm_throughput, degradation_factor};

    // Saturate the mesh bisection with cross-cut traffic, healthy vs
    // degraded (half the cut links dead), and compare against the
    // closed-form bound.
    let mut cfg = NetConfig::small_test();
    cfg.generators_per_edge = 1; // wire-limited: the bound is tight-ish
    let healthy_fabric = cfg.fabric();
    let healthy_bisection = healthy_fabric.bisection_width();

    // Kill 2 of the 4 links crossing the row-median cut (rows 0–1 vs 2–3).
    let cut_a = healthy_fabric.link_index(healthy_fabric.node_index(Coord::new(0, 1)), Port(2));
    let cut_b = healthy_fabric.link_index(healthy_fabric.node_index(Coord::new(1, 1)), Port(2));
    let degraded = FaultPlan::healthy()
        .with_dead_link(cut_a as u32)
        .with_dead_link(cut_b as u32)
        .compile(healthy_fabric);
    let surviving_bisection = degraded.bisection_width();
    assert_eq!(surviving_bisection, healthy_bisection - 2);

    // Cross-cut batch: every comm crosses the row-median cut.
    let batch: Vec<(Coord, Coord)> = (0..4)
        .map(|x| (Coord::new(x, 0), Coord::new(x, 3)))
        .collect();
    let report =
        NetworkSim::with_topology(cfg.clone(), degraded).run(&mut BatchDriver::new(batch.clone()));
    let delivered = report.fault.unwrap().delivered;
    assert_eq!(delivered, 4, "the surviving cut still carries everything");

    // Measured cross-cut throughput vs the analytic ceiling.
    let measured = delivered as f64 / (report.makespan.as_us_f64() * 1e-6);
    let bound = bisection_comm_throughput(
        surviving_bisection,
        cfg.generators_per_edge,
        cfg.times.generate(),
        cfg.link_cost_factor,
        cfg.raw_pairs_per_comm(),
    );
    assert!(
        measured <= bound,
        "simulator ({measured:.1} comms/s) beats the physical bound ({bound:.1})"
    );
    // And the factor matches the link arithmetic.
    let factor = degradation_factor(healthy_bisection, surviving_bisection);
    assert!((factor - 0.5).abs() < 1e-12);
}

#[test]
fn degraded_programs_always_drain() {
    // A QFT over a heavily damaged machine: dropped communications
    // retire their instructions, so the program finishes and the run
    // reports how much was lost.
    let spec = ScenarioSpec::machine(
        "qft_on_damage",
        MachineSpec::preset(NetPreset::SmallTest)
            .with_purify_depth(1)
            .with_outputs_per_comm(2)
            .with_fault(
                FaultPlan::healthy()
                    .with_seed(7)
                    .with_link_kill(0.25)
                    .with_node_loss(0.1),
            ),
        WorkloadSpec::Qft { qubits: 16 },
    );
    let report = qic::run(&spec).expect("validates");
    let p = &report.report.points[0];
    let delivered = p.mean("comms_delivered").unwrap();
    let dropped = p.mean("comms_dropped").unwrap();
    assert_eq!(delivered + dropped, p.mean("comms_completed").unwrap());
    assert!(delivered > 0.0, "some traffic survives 25% link loss");
}
