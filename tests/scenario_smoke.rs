//! Scenario smoke: every registry entry, at `small_test` scale, must
//! validate, JSON round-trip, and run to a well-formed report through
//! the single `qic::run` entry point. CI runs this as its
//! scenario-smoke step; golden drift on the figure presets is caught by
//! `tests/scenario_golden.rs`.

use qic::prelude::*;

#[test]
fn every_registered_scenario_runs_at_small_test_scale() {
    let registry = ScenarioRegistry::builtin();
    assert!(
        registry.entries().len() >= 8,
        "the gallery promises at least eight presets"
    );
    for entry in registry.entries() {
        let spec = entry.spec(ScenarioScale::SmallTest);
        spec.validate()
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));

        // The spec is data: it must survive serialization before it
        // ever runs.
        let reloaded = ScenarioSpec::from_json(&spec.to_json())
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        assert_eq!(spec, reloaded, "{}: JSON round trip drifted", entry.name);

        let report = qic::run(&reloaded).unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        assert_eq!(report.spec.name, spec.name);
        assert!(
            !report.report.points.is_empty(),
            "{}: empty report",
            entry.name
        );
        let metric = match spec.experiment {
            ExperimentSpec::Machine { .. } => "makespan_us",
            ExperimentSpec::Channel { .. } => "pairs",
        };
        for point in &report.report.points {
            let v = point
                .mean(metric)
                .unwrap_or_else(|| panic!("{}: point missing {metric}", entry.name));
            assert!(
                v > 0.0 || v.is_infinite(),
                "{}: nonsense {metric} {v}",
                entry.name
            );
        }
        // Emitters never fail and stay non-empty.
        assert!(report.to_csv().lines().count() > report.report.points.len());
        assert!(report.to_json().ends_with("}\n"));
    }
}

#[test]
fn full_scale_specs_validate_without_running() {
    // Full scale is minutes of compute for some presets; validation
    // must still be instant and clean.
    for entry in ScenarioRegistry::builtin().entries() {
        entry
            .spec(ScenarioScale::Full)
            .validate()
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
    }
}
