//! Cross-crate integration: workloads × layouts on the full machine.

use qic::prelude::*;
use qic_workload::Program;

fn machine(layout: Layout) -> Machine {
    let mut b = Machine::builder();
    b.grid(5, 5)
        .resources(8, 8, 4)
        .outputs_per_comm(3)
        .purify_depth(2)
        .layout(layout);
    b.build().expect("valid machine")
}

#[test]
fn every_kernel_completes_under_both_layouts() {
    let kernels = [
        Program::qft(10),
        Program::modular_multiplication(5),
        Program::modular_exponentiation(4, 1),
        Program::shor_kernel(4, 1),
    ];
    for layout in Layout::ALL {
        let m = machine(layout);
        for program in &kernels {
            let report = m.run(program);
            assert_eq!(
                report.instructions as usize,
                program.len(),
                "{layout}: {} instructions expected",
                program.len()
            );
        }
    }
}

#[test]
fn mobile_beats_home_base_on_qft() {
    // Figure 15's point: the Mobile walk turns all-to-all into local hops.
    let program = Program::qft(16);
    let hb = machine(Layout::HomeBase).run(&program);
    let mb = machine(Layout::MobileQubit).run(&program);
    assert!(mb.makespan < hb.makespan);
    assert!(mb.net.teleport_ops < hb.net.teleport_ops);
}

#[test]
fn makespan_respects_critical_path() {
    // A machine cannot beat (critical path) × (fastest possible op).
    let program = Program::qft(10);
    let m = machine(Layout::HomeBase);
    let report = m.run(&program);
    let per_level_floor = OpTimes::ion_trap().teleport_local(); // one hop minimum
    let floor = per_level_floor * u64::from(program.critical_path());
    assert!(report.makespan > floor);
}

#[test]
fn parallel_workloads_beat_serial_chains() {
    // Eight fully independent adjacent pairs vs eight ops all serialised
    // through qubit 0.
    let m = machine(Layout::HomeBase);
    let parallel = Program::new(
        16,
        (0..8)
            .map(|k| qic_workload::Instruction::interact(2 * k, 2 * k + 1))
            .collect(),
    )
    .expect("valid");
    let serial = Program::new(
        16,
        (1..=8)
            .map(|k| qic_workload::Instruction::interact(0, k))
            .collect(),
    )
    .expect("valid");
    let t_parallel = m.run(&parallel).makespan;
    let t_serial = m.run(&serial).makespan;
    assert!(
        t_serial.as_us_f64() > 3.0 * t_parallel.as_us_f64(),
        "serial {t_serial} should dwarf parallel {t_parallel}"
    );
}

#[test]
fn reports_serialize_round_trip() {
    // Reports are data (C-SERDE): verify a JSON-ish round trip through
    // serde's token model using serde_test-free equality via serde_json
    // being unavailable — use bincode-like manual check through
    // serde::Serialize to a string via format Debug equality after a
    // clone. (We avoid extra deps; Clone+PartialEq is the contract here.)
    let report = machine(Layout::HomeBase).run(&Program::qft(6));
    let copied = report.clone();
    assert_eq!(report, copied);
}
