//! # qic — quantum interconnect simulator
//!
//! Facade crate for the `qic` workspace, a Rust reproduction of
//! *Isailovic, Patel, Whitney, Kubiatowicz, "Interconnection Networks for
//! Scalable Quantum Computers", ISCA 2006* (arXiv:quant-ph/0604048).
//!
//! The workspace models how a large ion-trap quantum computer communicates:
//! logical qubits move by teleportation, teleportation consumes high-fidelity
//! EPR pairs, and those pairs are distributed across a mesh of teleporter
//! nodes, purified, and delivered to communication endpoints.
//!
//! Each subsystem lives in its own crate, re-exported here under a short
//! module name:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`physics`] | `qic-physics` | fidelity algebra, Bell-diagonal states, transport/teleport models (Tables 1–2, Eqs 1–5) |
//! | [`iontrap`] | `qic-iontrap` | electrode-level shuttle waveforms, ballistic channels, junctions (Fig. 2) |
//! | [`purify`] | `qic-purify` | DEJMPS / BBPSSW / pumping protocols, tree & queue purifiers (Figs 8, 14) |
//! | [`analytic`] | `qic-analytic` | chained-channel error & resource models (Figs 9–12) |
//! | [`des`] | `qic-des` | deterministic discrete-event engine |
//! | [`net`] | `qic-net` | interconnect fabrics (mesh/torus/hypercube), routing policies, virtual wires, the communication simulator (Figs 4–6, 13, 16) |
//! | [`workload`] | `qic-workload` | QFT / modular-arithmetic instruction streams |
//! | [`core`] | `qic-core` | machine builder, layouts, logical scheduler, experiment presets |
//! | [`sweep`] | `qic-sweep` | parallel campaign engine: declarative parameter sweeps, deterministic seeding, CSV/JSON reports |
//!
//! # Quickstart
//!
//! ```
//! use qic::prelude::*;
//!
//! // Set up a quantum channel across 20 mesh hops and check that, after
//! // endpoint purification, it meets the fault-tolerance threshold.
//! let model = ChannelModel::ion_trap();
//! let plan = model.plan(20).expect("channel is realisable");
//! assert!(plan.final_state.fidelity() >= constants::threshold_fidelity());
//! ```

pub use qic_analytic as analytic;
pub use qic_core as core;
pub use qic_des as des;
pub use qic_iontrap as iontrap;
pub use qic_net as net;
pub use qic_physics as physics;
pub use qic_purify as purify;
pub use qic_sweep as sweep;
pub use qic_workload as workload;

/// One-stop imports for examples and downstream users.
///
/// The purification placement strategy is [`prelude::PurifyPlacement`]
/// (`qic-analytic`); the qubit-to-site placement keeps the plain
/// `Placement` name (`qic-core`).
pub mod prelude {
    pub use qic_analytic::figures;
    pub use qic_analytic::link::{link_cost, link_state, raw_link_state, LinkSpec};
    pub use qic_analytic::plan::{ChannelError, ChannelModel, ChannelPlan};
    pub use qic_analytic::strategy::PurifyPlacement;
    pub use qic_core::prelude::*;
    pub use qic_net::routing::{Router, RoutingPolicy};
    pub use qic_net::topology::{
        Coord, Fabric, Hypercube, Mesh, Port, Topology, TopologyKind, Torus,
    };
    pub use qic_net::{NetConfig, NetReport};
    pub use qic_physics::prelude::*;
    pub use qic_purify::prelude::*;
    pub use qic_sweep::prelude::*;
    pub use qic_workload::prelude::*;
}
