//! # qic — quantum interconnect simulator
//!
//! Facade crate for the `qic` workspace, a Rust reproduction of
//! *Isailovic, Patel, Whitney, Kubiatowicz, "Interconnection Networks for
//! Scalable Quantum Computers", ISCA 2006* (arXiv:quant-ph/0604048).
//!
//! The workspace models how a large ion-trap quantum computer communicates:
//! logical qubits move by teleportation, teleportation consumes high-fidelity
//! EPR pairs, and those pairs are distributed across a mesh of teleporter
//! nodes, purified, and delivered to communication endpoints.
//!
//! Each subsystem lives in its own crate, re-exported here under a short
//! module name:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`physics`] | `qic-physics` | fidelity algebra, Bell-diagonal states, transport/teleport models (Tables 1–2, Eqs 1–5) |
//! | [`iontrap`] | `qic-iontrap` | electrode-level shuttle waveforms, ballistic channels, junctions (Fig. 2) |
//! | [`purify`] | `qic-purify` | DEJMPS / BBPSSW / pumping protocols, tree & queue purifiers (Figs 8, 14) |
//! | [`analytic`] | `qic-analytic` | chained-channel error & resource models (Figs 9–12) |
//! | [`des`] | `qic-des` | deterministic discrete-event engine |
//! | [`net`] | `qic-net` | interconnect fabrics (mesh/torus/hypercube), routing policies, virtual wires, the communication simulator (Figs 4–6, 13, 16) |
//! | [`fault`] | `qic-fault` | deterministic fault injection: declarative `FaultPlan`s compiled into `DegradedFabric` wrappers (dead links/nodes/modules, degraded pools, hot spots) |
//! | [`modular`] | `qic-modular` | hierarchical multi-module fabrics: K on-module fabrics joined by an optical-switch or fat-tree tier with per-tier link parameters |
//! | [`workload`] | `qic-workload` | QFT / modular-arithmetic instruction streams |
//! | [`core`] | `qic-core` | machine builder, layouts, logical scheduler, the Scenario API (spec/registry/[`run`]) |
//! | [`sweep`] | `qic-sweep` | parallel campaign engine: declarative parameter sweeps, deterministic seeding, CSV/JSON reports |
//! | [`probe`] | `qic-probe` | zero-cost structured tracing: per-resource time series, JSONL event logs, Chrome-trace (Perfetto) export |
//! | [`serve`] | `qic-serve` | scenario service: shared executor, content-addressed result cache, streaming JSONL job API |
//!
//! # Quickstart
//!
//! Every experiment is a declarative [`ScenarioSpec`] — *machine ×
//! fabric × routing × workload × purification strategy, swept* — run
//! through the single [`run`] entry point. Named presets for the
//! paper's figures (and beyond) live in the scenario registry:
//!
//! ```
//! use qic::prelude::*;
//!
//! // A registered preset: the topology faceoff at test scale …
//! let spec = ScenarioRegistry::builtin()
//!     .spec("topology_faceoff", ScenarioScale::SmallTest)
//!     .expect("registered");
//! // … is pure data: it round-trips through JSON.
//! let spec = ScenarioSpec::from_json(&spec.to_json())?;
//! let report = qic::run(&spec)?;
//! assert_eq!(report.report.points.len(), 6); // 3 fabrics × 2 policies
//! println!("{}", report.to_csv());
//! # Ok::<(), qic::core::scenario::ScenarioError>(())
//! ```
//!
//! The layers underneath stay available for direct use:
//!
//! ```
//! use qic::prelude::*;
//!
//! // Set up a quantum channel across 20 mesh hops and check that, after
//! // endpoint purification, it meets the fault-tolerance threshold.
//! let model = ChannelModel::ion_trap();
//! let plan = model.plan(20).expect("channel is realisable");
//! assert!(plan.final_state.fidelity() >= constants::threshold_fidelity());
//! ```

pub use qic_analytic as analytic;
pub use qic_core as core;
pub use qic_des as des;
pub use qic_fault as fault;
pub use qic_iontrap as iontrap;
pub use qic_modular as modular;
pub use qic_net as net;
pub use qic_physics as physics;
pub use qic_probe as probe;
pub use qic_purify as purify;
pub use qic_serve as serve;
pub use qic_sweep as sweep;
pub use qic_workload as workload;

pub use qic_core::scenario::{
    CheckpointSpec, ObserveSpec, ScenarioProgress, ScenarioReport, ScenarioSpec, SpecDigest,
};
pub use qic_sweep::{Executor, Shard};

/// Runs a scenario: the single entry point for every experiment.
///
/// Validates the spec (structured errors with scenario context), builds
/// the campaign its axes describe, evaluates every point on the worker
/// pool, and returns the deterministic report. See
/// [`qic_core::scenario`] for the spec format, the JSON round-trip and
/// the preset registry.
///
/// # Errors
///
/// [`qic_core::scenario::ScenarioError`] if the spec fails validation.
pub fn run(spec: &ScenarioSpec) -> Result<ScenarioReport, qic_core::scenario::ScenarioError> {
    qic_core::scenario::run(spec)
}

/// Runs a scenario on a shared [`Executor`] instead of a transient
/// per-call pool — byte-identical to [`run`], but many concurrent
/// campaigns interleave fairly on one set of workers. The service layer
/// ([`serve`]) builds on this. See [`qic_core::scenario::run_on`].
///
/// # Errors
///
/// [`qic_core::scenario::ScenarioError`] if the spec fails validation
/// or carries a checkpoint block.
pub fn run_on(
    spec: &ScenarioSpec,
    exec: &Executor,
) -> Result<ScenarioReport, qic_core::scenario::ScenarioError> {
    qic_core::scenario::run_on(spec, exec)
}

/// Runs one contiguous shard `i/K` of a scenario's campaign; merging
/// all `K` shard reports with [`qic_sweep::CampaignReport::merge`]
/// reproduces the serial report byte for byte. See
/// [`qic_core::scenario::run_shard`].
///
/// # Errors
///
/// [`qic_core::scenario::ScenarioError`] if the spec fails validation
/// or carries a checkpoint block.
pub fn run_shard(
    spec: &ScenarioSpec,
    shard: Shard,
) -> Result<ScenarioReport, qic_core::scenario::ScenarioError> {
    qic_core::scenario::run_shard(spec, shard)
}

/// Runs a checkpointed scenario with a point budget, committing the
/// manifest and reporting progress; repeat until
/// [`ScenarioProgress::Complete`]. See
/// [`qic_core::scenario::run_budgeted`].
///
/// # Errors
///
/// [`qic_core::scenario::ScenarioError`] if the spec fails validation,
/// has no checkpoint block, or the manifest is unusable.
pub fn run_budgeted(
    spec: &ScenarioSpec,
    budget: Option<usize>,
) -> Result<ScenarioProgress, qic_core::scenario::ScenarioError> {
    qic_core::scenario::run_budgeted(spec, budget)
}

/// One-stop imports for examples and downstream users.
///
/// The purification placement strategy is [`prelude::PurifyPlacement`]
/// (`qic-analytic`); the qubit-to-site placement keeps the plain
/// `Placement` name (`qic-core`).
pub mod prelude {
    pub use qic_analytic::cost::{
        pareto_front, ComponentCounts, CostEstimate, CostModel, NetworkShape,
    };
    pub use qic_analytic::figures;
    pub use qic_analytic::figures::PairMetric;
    pub use qic_analytic::link::{link_cost, link_state, raw_link_state, LinkSpec};
    pub use qic_analytic::plan::{ChannelError, ChannelModel, ChannelPlan};
    pub use qic_analytic::strategy::PurifyPlacement;
    pub use qic_core::prelude::*;
    pub use qic_fault::prelude::*;
    pub use qic_modular::{Interconnect, LinkParams, ModularFabric, ModularSpec, RouteProfile};
    pub use qic_net::routing::{Router, RoutingPolicy};
    pub use qic_net::topology::{
        Coord, Fabric, Hypercube, Mesh, Port, Topology, TopologyKind, Torus,
    };
    pub use qic_net::{NetConfig, NetReport};
    pub use qic_physics::prelude::*;
    pub use qic_probe::{NoProbe, Probe, RecordingProbe, TimelineReport};
    pub use qic_purify::prelude::*;
    pub use qic_sweep::prelude::*;
    pub use qic_workload::prelude::*;
}
