//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no registry access, so this proc-macro crate
//! accepts `#[derive(Serialize, Deserialize)]` (including `#[serde(...)]`
//! helper attributes) and expands to nothing. No code in this workspace
//! serialises at runtime yet; when a real serialisation backend lands,
//! swap this vendored crate for the published one — the source-level
//! derive syntax is already the real thing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and `#[serde(...)]`; expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and `#[serde(...)]`; expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
