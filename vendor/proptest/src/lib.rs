//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace's property
//! suites use: the [`Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_flat_map`, range and tuple strategies, [`collection::vec`],
//! [`any`], and the `proptest!` / `prop_assert!` / `prop_assert_eq!`
//! macros.
//!
//! Differences from the real crate, by design:
//!
//! * **Deterministic by default.** Every test case's RNG seed is derived
//!   from a fixed workspace seed, the test's name, and the case index, so
//!   tier-1 runs are identical run-to-run and machine-to-machine. Override
//!   the base seed with `QIC_PROPTEST_SEED=<u64>` to explore new inputs.
//! * **No shrinking.** A failure reports the seed and case index; re-run
//!   with the same environment to reproduce it exactly.
//! * **Case count** defaults to 64; override with `PROPTEST_CASES=<n>`.
//!
//! `proptest-regressions/` directories are still committed next to each
//! suite in the real crate's format, so swapping the published proptest
//! back in (when the build environment gains registry access) picks up
//! any recorded failures.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Deterministic case scheduling for the `proptest!` macro.

    /// Base seed for all property tests (override: `QIC_PROPTEST_SEED`).
    pub const DEFAULT_BASE_SEED: u64 = 0x5149_4331_2006_0604;

    /// Number of cases per property (override: `PROPTEST_CASES`).
    pub const DEFAULT_CASES: u32 = 64;

    /// Resolves the per-run case count.
    pub fn cases() -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v
                .parse()
                .expect("PROPTEST_CASES must be a positive integer"),
            Err(_) => DEFAULT_CASES,
        }
    }

    /// Resolves the per-run base seed.
    pub fn base_seed() -> u64 {
        match std::env::var("QIC_PROPTEST_SEED") {
            Ok(v) => v.parse().expect("QIC_PROPTEST_SEED must be a u64"),
            Err(_) => DEFAULT_BASE_SEED,
        }
    }

    /// The deterministic RNG handed to strategies (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the RNG for one (test, case) pair: FNV-1a over the test
        /// name, mixed with the base seed and case index.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut rng = TestRng {
                state: h ^ base_seed() ^ (u64::from(case) << 32),
            };
            // One warm-up draw decorrelates neighbouring case indices.
            let _ = rng.next_u64();
            rng
        }

        /// The next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, n)`; panics if `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "cannot sample below 0");
            let threshold = n.wrapping_neg() % n;
            loop {
                let m = u128::from(self.next_u64()) * u128::from(n);
                if (m as u64) >= threshold {
                    return (m >> 64) as u64;
                }
            }
        }
    }
}

use test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred` (resamples, up to a retry cap).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Builds a second strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 10000 consecutive samples",
            self.reason
        );
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                if span == 0 {
                    // Full u64/usize domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty float range strategy");
        let x = self.start + rng.next_f64() * (self.end - self.start);
        // Guard against round-up onto the excluded endpoint.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty float range strategy");
        let x = self.start + (rng.next_f64() as f32) * (self.end - self.start);
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// Strategy over a type's whole domain: `any::<bool>()`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A length specification: an exact `usize` or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything the property suites import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::TestRng;
    pub use crate::{any, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines deterministic property tests; see the crate docs for seeding.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cases = $crate::test_runner::cases();
            for __case in 0..__cases {
                let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }));
                if let Err(panic) = __result {
                    eprintln!(
                        "proptest failure: test={} case={}/{} base_seed={:#x} \
                         (set QIC_PROPTEST_SEED / PROPTEST_CASES to reproduce)",
                        stringify!($name),
                        __case,
                        __cases,
                        $crate::test_runner::base_seed(),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

/// `assert!` that reports through the proptest failure path.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` that reports through the proptest failure path.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// `assert_ne!` that reports through the proptest failure path.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges_stay_in_bounds", 0);
        for _ in 0..1_000 {
            let x = (5u32..17).sample(&mut rng);
            assert!((5..17).contains(&x));
            let f = (0.25..1.0f64).sample(&mut rng);
            assert!((0.25..1.0).contains(&f));
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(TestRng::for_case("t", 3).next_u64(), c.next_u64());
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(v in collection::vec(0u64..10, 1..5), flag in any::<bool>()) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
            let _ = flag;
        }
    }
}
