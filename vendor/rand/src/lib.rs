//! Offline stand-in for `rand`.
//!
//! Implements exactly the slice of the `rand` 0.9 API this workspace
//! uses: a seedable [`rngs::SmallRng`] (xoshiro256++, the same algorithm
//! the real crate uses on 64-bit targets) plus the [`RngExt`] extension
//! methods `random::<T>()` and `random_range(range)`. Streams are *not*
//! bit-compatible with the published crate, but they are deterministic:
//! a generator is a pure function of its seed.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core pseudo-random interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG via [`RngExt::random`].
pub trait Sample {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Uniform in `[0, 1)` with 53 bits of precision.
impl Sample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integers samplable uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Draws uniformly from `[lo, hi)`. Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample from empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                // Debiased multiply-shift (Lemire); span == 0 means 2^64.
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                let threshold = span.wrapping_neg() % span;
                loop {
                    let x = rng.next_u64();
                    let m = (x as u128) * (span as u128);
                    if (m as u64) >= threshold {
                        return lo.wrapping_add((m >> 64) as $t);
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, mirroring `rand::Rng` (0.9 naming).
pub trait RngExt: RngCore {
    /// Draws one uniform value of type `T`.
    fn random<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from the half-open `range`.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind `rand`'s 64-bit `SmallRng`.
    ///
    /// Small, fast, and statistically solid for simulation workloads; not
    /// cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the 64-bit seed through splitmix64 as the xoshiro
            // authors recommend, so nearby seeds give unrelated streams.
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respected() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[r.random_range(0u64..7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
