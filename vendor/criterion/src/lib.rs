//! Offline stand-in for `criterion`.
//!
//! Provides `Criterion::bench_function`, `Bencher::iter`, `black_box`,
//! and the `criterion_group!` / `criterion_main!` macros with the same
//! call syntax as the real crate, backed by a simple wall-clock runner:
//! a warm-up pass sizes the batch, then a fixed number of timed batches
//! report best / median-ish / mean nanoseconds per iteration. There is
//! no statistical regression machinery and no HTML output — this exists
//! so bench targets compile and produce useful numbers offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Returns the argument, opaque to the optimiser.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Hands a timing loop to benchmark closures.
pub struct Bencher {
    /// Nanoseconds per iteration measured by the latest [`Bencher::iter`].
    ns_per_iter: Vec<f64>,
}

impl Bencher {
    /// Times `inner`, amortised over automatically sized batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut inner: F) {
        // Warm up and size a batch to ~2ms so Instant overhead vanishes.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < Duration::from_millis(20) {
            black_box(inner());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
        let batch = ((2_000_000.0 / per_iter.max(1.0)) as u64).clamp(1, 1_000_000);

        const SAMPLES: usize = 15;
        self.ns_per_iter = (0..SAMPLES)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..batch {
                    black_box(inner());
                }
                t.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        self.ns_per_iter.sort_by(f64::total_cmp);
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark and prints its timing line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            ns_per_iter: Vec::new(),
        };
        f(&mut b);
        if b.ns_per_iter.is_empty() {
            println!("{id:<40} (no measurement: Bencher::iter never called)");
        } else {
            let best = b.ns_per_iter[0];
            let mid = b.ns_per_iter[b.ns_per_iter.len() / 2];
            let mean = b.ns_per_iter.iter().sum::<f64>() / b.ns_per_iter.len() as f64;
            println!(
                "{id:<40} best {:>12} median {:>12} mean {:>12}",
                fmt_ns(best),
                fmt_ns(mid),
                fmt_ns(mean)
            );
        }
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `fn main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
