//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait names and re-exports the
//! stub derive macros so `use serde::{Deserialize, Serialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile exactly as they would
//! against the real crate. No serialisation format is implemented — the
//! workspace currently treats serde derives as a forward-compatible data
//! contract (see `vendor/README.md`).

#![forbid(unsafe_code)]

/// Marker counterpart of `serde::Serialize` (no-op in the offline stub).
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize` (no-op in the offline stub).
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
