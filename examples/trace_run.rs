//! Observability end to end: run the `resilience_sweep` preset with
//! structured tracing attached, print the stall-cause breakdown next to
//! the exported trace files, and validate every emitted document
//! against the `qic::probe::schema` checker.
//!
//! Every `.trace.json` loads directly in Perfetto
//! (<https://ui.perfetto.dev> → "Open trace file") or
//! `chrome://tracing`; the `.events.jsonl` files are the same story as
//! line-delimited structured events for ad-hoc tooling.
//!
//! Run with `cargo run --release --example trace_run`.

use qic::prelude::*;
use qic::ObserveSpec;

fn main() {
    let dir = "target/trace_run";
    let spec = ScenarioRegistry::builtin()
        .spec("resilience_sweep", ScenarioScale::SmallTest)
        .expect("registered")
        .with_observe(ObserveSpec::to_dir(dir));

    eprintln!("scenario: {} (traces → {dir}/)", spec.name);
    let report = qic::run(&spec).expect("spec validates");

    // Stall-cause breakdown per point: the simulator's scalar counters
    // next to the probe's (they agree — `trace.stall_*` come from the
    // same hook sites) plus the timeline peaks only a probe can see.
    println!(
        "{:>38} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "point", "tele", "wire", "store", "util peak", "queue max"
    );
    for point in &report.report.points {
        let label = point
            .params
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "{label:>38} {:>8.0} {:>8.0} {:>8.0} {:>10.3} {:>10.0}",
            point.mean("trace.stall_teleporter").unwrap_or(0.0),
            point.mean("trace.stall_wire").unwrap_or(0.0),
            point.mean("trace.stall_storage").unwrap_or(0.0),
            point.mean("trace.teleporter_util_peak").unwrap_or(0.0),
            point.mean("trace.max_queue_depth").unwrap_or(0.0),
        );
    }
    println!(
        "\ntotal evaluation wall time: {:.1} ms",
        report.report.total_wall_ns() as f64 / 1e6
    );

    // Validate every exported document against the schema checker —
    // the writer never gets to grade its own homework.
    let mut events = 0u64;
    let mut traces = 0u64;
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("observe directory exists")
        .map(|e| e.expect("readable entry").path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).expect("readable trace");
        if name.ends_with(".events.jsonl") {
            events += qic::probe::schema::validate_events_jsonl(&text)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        } else if name.ends_with(".trace.json") {
            traces += qic::probe::schema::validate_chrome_trace(&text)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
    assert!(events > 0, "event logs should not be empty");
    assert!(traces > 0, "chrome traces should not be empty");
    println!("validated {events} structured events and {traces} Chrome-trace records under {dir}/");
    println!("open any {dir}/*.trace.json in https://ui.perfetto.dev");
}
