//! Cost–fidelity Pareto fronts for modular machines.
//!
//! The single-chip fabrics answer "which topology is fastest"; the
//! modular sweep asks the budget question behind every scaling plan:
//! *how many modules can you afford before the inter-tier links eat
//! your fidelity?* This example runs the `cost_fidelity_pareto` preset
//! (fabric × module count × inter-tier unit cost) through `qic::run`,
//! prints the full sweep with its cost/fidelity/latency columns, strips
//! the dominated points with `pareto_front`, and then re-runs the sweep
//! with a fat-tree inter tier to show how the switch choice moves the
//! front.
//!
//! Run with `cargo run --release --example modular_pareto`.

use qic::prelude::*;

/// Runs one sweep and returns `(report, pareto-front indices)`.
fn sweep(spec: &ScenarioSpec) -> (qic::sweep::CampaignReport, Vec<usize>) {
    let report = qic::run(spec).expect("modular presets validate").report;
    let coords: Vec<(f64, f64)> = report
        .points
        .iter()
        .map(|p| {
            (
                p.mean("cost_dollars").expect("modular points price out"),
                p.mean("fidelity").expect("modular points report fidelity"),
            )
        })
        .collect();
    let front = pareto_front(&coords);
    (report, front)
}

fn print_table(title: &str, report: &qic::sweep::CampaignReport, front: &[usize]) {
    println!("{title}");
    println!(
        "  {:>10} {:>8} {:>10} {:>10} {:>9} {:>14} {:>14}",
        "topology", "modules", "unit cost", "dollars", "fidelity", "pred lat (ns)", "makespan (µs)"
    );
    for (i, p) in report.points.iter().enumerate() {
        let marker = if front.contains(&i) { "*" } else { " " };
        println!(
            "{marker} {:>10} {:>8} {:>10} {:>10.0} {:>9.4} {:>14.0} {:>14.1}",
            p.param("topology"),
            p.param("modules"),
            p.param("inter_cost"),
            p.mean("cost_dollars").unwrap(),
            p.mean("fidelity").unwrap(),
            p.mean("predicted_latency_ns").unwrap(),
            p.mean("makespan_us").unwrap(),
        );
    }
}

fn main() {
    // The registered preset behind `qic::run` / campaigns / qic-serve.
    // SmallTest keeps the example quick; swap in `ScenarioScale::Full`
    // for the 8×8-module version of the same chart.
    let spec = ScenarioRegistry::builtin()
        .spec("cost_fidelity_pareto", ScenarioScale::SmallTest)
        .expect("registered");
    let (optical, optical_front) = sweep(&spec);
    print_table(
        "fabric × modules × inter-tier unit cost, optical-switch tier:",
        &optical,
        &optical_front,
    );
    println!(
        "\n(* = on the cost-fidelity Pareto front: no point is at most as\n\
         expensive with strictly higher estimated end-to-end fidelity)"
    );

    // The same machines behind a radix-2 fat tree: more switch ports
    // (cost) and an extra stage per crossing (fidelity, latency).
    let mut fat = spec.clone();
    fat.name = "cost_fidelity_pareto_fat_tree".into();
    let ExperimentSpec::Machine { machine, .. } = &mut fat.experiment else {
        unreachable!("the pareto preset is a machine scenario");
    };
    let modular = machine
        .modular
        .take()
        .expect("the pareto preset is modular");
    machine.modular = Some(Box::new(
        (*modular).with_interconnect(Interconnect::FatTree { radix: 2 }),
    ));
    let (fat_tree, fat_front) = sweep(&fat);
    println!();
    print_table(
        "same sweep behind a radix-2 fat tree:",
        &fat_tree,
        &fat_front,
    );

    // Headline: what the front costs at each tier choice.
    let cheapest = |report: &qic::sweep::CampaignReport, front: &[usize]| {
        let i = front[0]; // fronts are sorted by ascending cost
        (
            report.points[i].mean("cost_dollars").unwrap(),
            report.points[i].mean("fidelity").unwrap(),
        )
    };
    let (oc, of) = cheapest(&optical, &optical_front);
    let (fc, ff) = cheapest(&fat_tree, &fat_front);
    println!(
        "\nreading: the cheapest undominated optical-switch machine is ${oc:.0}\n\
         at fidelity {of:.4}; the fat tree's entry point is ${fc:.0} at {ff:.4}.\n\
         Choose the switch by where your budget crosses the front, not by\n\
         port count alone."
    );
}
