//! Shor-kernel pipeline: the paper's three communication-intensive
//! components (QFT, modular exponentiation, modular multiplication) run
//! back-to-back on one machine.
//!
//! Run with `cargo run --release --example shor_pipeline [n]`.

use qic::prelude::*;
use qic_workload::Program;

fn main() {
    let n: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let grid = 6u16; // 36 sites hold the 2n-qubit register pair for n ≤ 18
    assert!(
        2 * n <= u32::from(grid) * u32::from(grid),
        "registers must fit the grid"
    );

    let mut builder = Machine::builder();
    builder
        .grid(grid, grid)
        .resources(12, 12, 6)
        .outputs_per_comm(7)
        .purify_depth(2);

    let phases: [(&str, Program); 4] = [
        ("QFT (all-to-all)", Program::qft(n)),
        ("MM (bipartite)", Program::modular_multiplication(n)),
        (
            "ME (square+multiply)",
            Program::modular_exponentiation(n, 2),
        ),
        ("Shor kernel (ME, then QFT)", Program::shor_kernel(n, 1)),
    ];

    for layout in Layout::ALL {
        builder.layout(layout);
        let machine = builder.build().expect("valid machine");
        println!("== {layout} layout ==");
        println!(
            "{:<28} {:>7} {:>9} {:>12} {:>10} {:>9}",
            "phase", "instrs", "depth", "makespan", "teleports", "mean lat"
        );
        for (name, program) in &phases {
            let report = machine.run(program);
            println!(
                "{:<28} {:>7} {:>9} {:>12} {:>10} {:>9}",
                name,
                report.instructions,
                program.critical_path(),
                report.makespan.to_string(),
                report.net.teleport_ops,
                report
                    .net
                    .mean_latency()
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "-".into()),
            );
        }
        println!();
    }
    println!(
        "note: the ME/MM phases exercise the bipartite pattern (register A\n\
         versus register B); QFT exercises all-to-all. Compare layouts: the\n\
         Mobile walk wins on QFT's sequential structure, while Home Base is\n\
         competitive on bipartite traffic where walkers bounce between sides."
    );
}
