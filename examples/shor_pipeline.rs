//! Shor-kernel pipeline: the paper's three communication-intensive
//! components (QFT, modular exponentiation, modular multiplication)
//! plus the composed kernel, as one registry scenario — a layout ×
//! workload sweep through the single `qic::run` entry point.
//!
//! Run with `cargo run --release --example shor_pipeline`.

use qic::prelude::*;

fn main() {
    let spec = ScenarioRegistry::builtin()
        .spec("shor_kernel", ScenarioScale::Full)
        .expect("registered");
    let report = qic::run(&spec).expect("registry specs validate");

    // The workload axis carries the four phases; recover each point's
    // program for static metadata (instruction count, dependency depth).
    let workloads: Vec<WorkloadSpec> = spec
        .axes
        .iter()
        .find_map(|axis| match axis {
            ScenarioAxis::Workloads { workloads } => Some(workloads.clone()),
            _ => None,
        })
        .expect("shor_kernel sweeps workloads");

    for layout in Layout::ALL {
        println!("== {layout} layout ==");
        println!(
            "{:<16} {:>7} {:>9} {:>14} {:>10} {:>12}",
            "phase", "instrs", "depth", "makespan (ms)", "teleports", "mean lat (µs)"
        );
        for (w, workload) in workloads.iter().enumerate() {
            let point = report
                .report
                .points
                .iter()
                .find(|p| {
                    p.param("layout").as_text() == Some(&layout.to_string())
                        && p.param("workload").as_text() == Some(&workload.label())
                })
                .unwrap_or_else(|| panic!("point layout={layout} workload#{w} exists"));
            let program = workload.program().expect("pipeline phases are programs");
            println!(
                "{:<16} {:>7} {:>9} {:>14.2} {:>10.0} {:>12.1}",
                workload.label(),
                program.len(),
                program.critical_path(),
                point.mean("makespan_us").unwrap() / 1e3,
                point.mean("teleport_ops").unwrap(),
                point.mean("latency_mean_us").unwrap_or(f64::NAN),
            );
        }
        println!();
    }
    println!(
        "note: the ME/MM phases exercise the bipartite pattern (register A\n\
         versus register B); QFT exercises all-to-all. Compare layouts: the\n\
         Mobile walk wins on QFT's sequential structure, while Home Base is\n\
         competitive on bipartite traffic where walkers bounce between sides."
    );
}
