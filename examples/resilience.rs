//! Graceful degradation across fabrics: the `resilience_sweep` preset
//! (fault rate × mesh/torus/hypercube under adaptive routing) plus the
//! structural damage report and analytic bisection bound per fabric.
//!
//! Run with `cargo run --release --example resilience`.

use qic::analytic::degraded::degradation_factor;
use qic::fault::FaultPlan;
use qic::net::config::NetConfig;
use qic::net::topology::Topology;
use qic::prelude::*;

fn main() {
    let spec = ScenarioRegistry::builtin()
        .spec("resilience_sweep", ScenarioScale::SmallTest)
        .expect("registered");
    eprintln!(
        "scenario: {} ({} points)",
        spec.name,
        spec.param_space().len()
    );
    let report = qic::run(&spec).expect("preset validates");

    // Degradation table: per fabric, each fault rate's makespan
    // inflation against that fabric's own healthy (rate 0) row.
    println!(
        "{:>10} {:>11} {:>10} {:>9} {:>9} {:>10} {:>10}",
        "fabric", "fault_rate", "delivered", "dropped", "rerouted", "infl(hops)", "slowdown"
    );
    let points = &report.report.points;
    let baseline = |fabric: &str| {
        points
            .iter()
            .find(|p| {
                p.param("topology").as_text() == Some(fabric)
                    && p.param("fault_rate").as_f64() == Some(0.0)
            })
            .and_then(|p| p.mean("makespan_us"))
            .expect("every fabric has a healthy row")
    };
    for p in points {
        let fabric = p.param("topology").as_text().unwrap();
        let rate = p.param("fault_rate").as_f64().unwrap();
        let delivered = p.mean("comms_delivered").unwrap_or(0.0);
        let dropped = p.mean("comms_dropped").unwrap_or(0.0);
        let total = delivered + dropped;
        println!(
            "{fabric:>10} {rate:>11.2} {:>9.0}% {dropped:>9.0} {:>9.0} {:>10.3} {:>9.2}×",
            100.0 * delivered / total.max(1.0),
            p.mean("comms_rerouted").unwrap_or(0.0),
            p.mean("route_inflation").unwrap_or(1.0),
            p.mean("makespan_us").unwrap_or(f64::NAN) / baseline(fabric),
        );
    }

    // Structural view: what the heaviest sweep rate does to each fabric,
    // and the analytic throughput ceiling that damage implies.
    let rate = 0.15;
    let plan = FaultPlan::healthy().with_seed(42).with_link_kill(rate);
    println!("\nstructure at link-kill rate {rate} (plan seed 42):");
    println!(
        "{:>10} {:>7} {:>9} {:>10} {:>11} {:>10}",
        "fabric", "links", "survive", "bisection", "reachable", "analytic⌈"
    );
    for kind in TopologyKind::ALL {
        let net = NetConfig::small_test().with_topology(kind);
        let healthy = net.fabric();
        let degraded = plan.clone().compile(healthy);
        let s = degraded.summary();
        println!(
            "{:>10} {:>7} {:>9} {:>4} → {:<3} {:>10.0}% {:>9.0}%",
            kind,
            healthy.links(),
            s.surviving_links,
            healthy.bisection_width(),
            s.bisection_width,
            100.0 * s.reachable_fraction,
            100.0 * degradation_factor(healthy.bisection_width(), s.bisection_width),
        );
    }

    // The whole study is data: the JSON spec re-runs byte-identically.
    let reloaded = ScenarioSpec::from_json(&spec.to_json()).expect("round trip");
    let rerun = qic::run(&reloaded).expect("round-tripped spec validates");
    assert_eq!(report.to_json(), rerun.to_json());
    eprintln!("\nJSON round trip re-ran to byte-identical output");
}
