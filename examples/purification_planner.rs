//! Purification planner: provision the purification subsystem for a
//! machine, comparing protocols and placement strategies.
//!
//! Run with `cargo run --example purification_planner [hops]`.

use qic::prelude::*;
use qic_analytic::plan::ChannelModel;
use qic_analytic::strategy::PurifyPlacement;
use qic_physics::bell::BellDiagonal;

fn main() {
    let hops: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    println!("provisioning a {hops}-hop channel (hop = 600 cells)\n");

    // Protocol choice: DEJMPS vs BBPSSW round counts from a raw link.
    let noise = RoundNoise::ion_trap();
    let raw = qic_analytic::link::raw_link_state(600, &ErrorRates::ion_trap());
    println!("raw link pair error: {:.2e}", raw.error());
    let arriving = BellDiagonal::werner_f64(1.0 - (f64::from(hops) * raw.error()).min(0.5))
        .expect("valid fidelity");
    println!(
        "== protocol comparison (from Werner error {:.2e}) ==",
        arriving.error()
    );
    for protocol in Protocol::ALL {
        match rounds_to_reach(protocol, arriving, constants::THRESHOLD_ERROR, &noise, 64) {
            Some(r) => {
                let (pairs, out) = pairs_for_rounds(protocol, arriving, r, &noise);
                println!(
                    "  {protocol:<7}: {r} rounds, {pairs:.1} raw pairs per output, final error {:.1e}",
                    out.error()
                );
            }
            None => println!("  {protocol:<7}: cannot reach threshold"),
        }
    }

    // PurifyPlacement comparison at this distance.
    println!("\n== placement comparison at {hops} hops ==");
    let base = ChannelModel::ion_trap();
    println!(
        "  {:<40} {:>8} {:>12} {:>12}",
        "placement", "rounds", "teleported", "total"
    );
    for placement in PurifyPlacement::FIGURE_SET {
        let model = base.clone().with_placement(placement);
        match model.plan(hops) {
            Ok(plan) => println!(
                "  {:<40} {:>8} {:>12.1} {:>12.3e}",
                placement.legend(),
                plan.endpoint_rounds,
                plan.teleported_pairs,
                plan.total_pairs
            ),
            Err(e) => println!("  {:<40} infeasible: {e}", placement.legend()),
        }
    }

    // Queue purifier hardware plan.
    println!("\n== queue purifier hardware (Figure 14) ==");
    let depth = 3;
    let queue = QueuePurifier::new(depth, Protocol::Dejmps, noise);
    let tree = TreePurifier::new(depth, Protocol::Dejmps);
    let times = OpTimes::ion_trap();
    println!(
        "  depth {depth} queue purifier: {} units (tree would need {})",
        depth,
        tree.hardware_units()
    );
    println!(
        "  serial latency per output: {} (tree: {})",
        queue.serial_latency_per_output(&times, 600 * u64::from(hops)),
        tree.latency(&times, 600 * u64::from(hops)),
    );
    println!(
        "  expected raw pairs per output from the raw link state: {:.2}",
        queue.expected_pairs_per_output(&raw)
    );
}
