//! Topology faceoff: mesh vs torus vs hypercube at a matched 64-node
//! scale, under both routing policies.
//!
//! The paper computes everything on a 2D mesh with dimension-order
//! routing; this scenario asks the question it could not: what does the
//! same workload cost on a wrap-around torus or a binary hypercube? It
//! prints the static fabric metadata (the README comparison table), runs
//! the `topology × routing` scenario (`faceoff_spec`, registered as
//! `topology_faceoff`) through `qic::run` on 4 workers, re-runs it on 1
//! worker to prove the report is byte-identical, and closes with the
//! analytic chained-teleport latency at each fabric's diameter.
//!
//! Run with `cargo run --release --example topology_faceoff`.

use qic::analytic::crossover::fabric_crossover;
use qic::prelude::*;

fn main() {
    // --- static fabric metadata at 64 nodes ---------------------------
    let fabrics: [(&str, Fabric); 3] = [
        ("mesh", Fabric::Mesh(Mesh::new(8, 8))),
        ("torus", Fabric::Torus(Torus::new(8, 8))),
        ("hypercube", Fabric::Hypercube(Hypercube::new(6))),
    ];
    println!("fabric metadata at 64 nodes:");
    println!(
        "{:>10} {:>9} {:>10} {:>11} {:>7} {:>10}",
        "topology", "diameter", "bisection", "ports/node", "links", "avg dist"
    );
    for (name, f) in &fabrics {
        println!(
            "{:>10} {:>9} {:>10} {:>11} {:>7} {:>10.2}",
            name,
            f.diameter(),
            f.bisection_width(),
            f.ports_per_node(),
            f.links(),
            f.avg_distance(),
        );
    }

    // --- the scenario: topology × routing, QFT-64, Home-Base ----------
    let spec = faceoff_spec(FaceoffScale::Full);
    let parallel = qic::run(&spec.clone().with_workers(4))
        .expect("faceoff presets validate")
        .report;
    eprintln!(
        "\nran {} faceoff points on 4 workers",
        parallel.points.len()
    );
    let serial = qic::run(&spec.with_workers(1))
        .expect("faceoff presets validate")
        .report;
    assert_eq!(
        parallel.to_json(),
        serial.to_json(),
        "campaign reports must not depend on worker count"
    );
    assert_eq!(parallel.to_csv(), serial.to_csv());
    eprintln!("1-worker re-run is byte-identical (scheduling-independent)");

    println!("\nQFT-64 on 64 nodes, Home-Base layout:");
    println!(
        "{:>10} {:>9} {:>14} {:>11} {:>11} {:>11} {:>13}",
        "topology", "routing", "makespan (ms)", "p50 (µs)", "p95 (µs)", "p99 (µs)", "EPR pairs/ms"
    );
    for point in &parallel.points {
        let makespan_us = point.mean("makespan_us").unwrap();
        // EPR throughput: link pairs actually consumed per millisecond of
        // simulated execution.
        let throughput = point.mean("pairs_consumed").unwrap() / (makespan_us / 1e3);
        println!(
            "{:>10} {:>9} {:>14.2} {:>11.1} {:>11.1} {:>11.1} {:>13.0}",
            point.param("topology"),
            point.param("routing"),
            makespan_us / 1e3,
            point.mean("latency_p50_us").unwrap_or(f64::NAN),
            point.mean("latency_p95_us").unwrap_or(f64::NAN),
            point.mean("latency_p99_us").unwrap_or(f64::NAN),
            throughput,
        );
    }

    // --- headline reading ---------------------------------------------
    let makespan = |topo: &str, routing: &str| {
        parallel
            .points
            .iter()
            .find(|p| {
                p.param("topology").as_text() == Some(topo)
                    && p.param("routing").as_text() == Some(routing)
            })
            .and_then(|p| p.mean("makespan_us"))
            .expect("point exists")
    };
    println!(
        "\nreading: wrap-around links make the torus {:.2}x faster than the mesh on\n\
         identical traffic; the hypercube halves route lengths but splits the same\n\
         t teleporters across 6 dimension sets instead of 2 ({:.2}x vs mesh) —\n\
         connectivity is only as good as the router bandwidth behind it.",
        makespan("mesh", "dor") / makespan("torus", "dor"),
        makespan("mesh", "dor") / makespan("hypercube", "dor"),
    );

    // --- analytic tie-in: latency floor at each fabric's diameter ------
    let times = OpTimes::ion_trap();
    let hops: Vec<u32> = fabrics.iter().map(|(_, f)| f.diameter()).collect();
    let floor = fabric_crossover(hops, constants::DEFAULT_HOP_CELLS, &times);
    println!("\nuncontended diameter-crossing latency (chained teleport, 600-cell hops):");
    for ((name, _), pt) in fabrics.iter().zip(&floor) {
        println!(
            "  {:>10}: {:>8} over {} cells (ballistic would take {})",
            name, pt.teleport, pt.cells, pt.ballistic
        );
    }

    // CSV excerpt (full emitters: CampaignReport::to_csv / to_json).
    let csv = parallel.to_csv();
    println!("\nCSV excerpt ({} rows total):", csv.lines().count() - 1);
    for line in csv.lines().take(3) {
        let cut = line.chars().take(100).collect::<String>();
        println!("  {cut}…");
    }
}
