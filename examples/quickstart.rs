//! Quickstart: why quantum computers need an EPR distribution network,
//! and how to plan a channel with `qic`.
//!
//! Run with `cargo run --example quickstart`.

use qic::prelude::*;
use qic_analytic::plan::ChannelError;

fn main() -> Result<(), ChannelError> {
    let times = OpTimes::ion_trap();
    let rates = ErrorRates::ion_trap();

    // 1. The problem: ballistic transport decoheres with distance.
    println!("== Ballistic transport (Equation 1) ==");
    for cells in [100u64, 600, 2_000, 10_000] {
        let f = transport::ballistic_fidelity(Fidelity::ONE, cells, &rates);
        println!(
            "  {cells:>6} cells: error {:.2e}, time {}",
            f.infidelity(),
            times.ballistic(cells)
        );
    }
    println!(
        "  -> corner to corner of a 1000x1000 grid already exceeds 1e-3 error;\n\
     the fault-tolerance threshold for data-grade pairs is {:.1e}.\n",
        constants::THRESHOLD_ERROR
    );

    // 2. The fix: teleport data using purified EPR pairs. Plan a channel.
    println!("== Channel plan: 20 mesh hops, endpoints-only purification ==");
    let model = ChannelModel::ion_trap();
    let plan = model.plan(20)?;
    println!(
        "  link pair error            : {:.2e}",
        plan.link_state.error()
    );
    println!(
        "  arriving end-to-end error  : {:.2e}",
        plan.arriving_state.error()
    );
    println!("  endpoint purify rounds     : {}", plan.endpoint_rounds);
    println!(
        "  delivered pair error       : {:.2e}",
        plan.final_state.error()
    );
    println!("  pairs arriving per good one: {:.2}", plan.endpoint_pairs);
    println!(
        "  teleport ops per good pair : {:.1}",
        plan.teleported_pairs
    );
    println!("  raw pairs per good pair    : {:.1}", plan.total_pairs);
    println!("  channel setup latency      : {}", plan.setup_latency);
    println!(
        "  one logical qubit (49 phys): {:.0} pairs\n",
        plan.pairs_per_logical_comm(constants::LEVEL2_STEANE_QUBITS)
    );
    assert!(plan.final_state.fidelity() >= constants::threshold_fidelity());

    // 3. Run an actual program on a machine — as a declarative
    //    scenario through the single `qic::run` entry point. The spec
    //    is data: `spec.to_json()` serializes the whole experiment.
    println!("== QFT-16 on a 4x4 machine (event-driven simulation) ==");
    let spec = ScenarioSpec::machine(
        "quickstart",
        MachineSpec::preset(NetPreset::SmallTest)
            .with_resources(8, 8, 4)
            .with_outputs_per_comm(7) // level-1 Steane code
            .with_purify_depth(2),
        WorkloadSpec::Qft { qubits: 16 },
    )
    .with_axis(ScenarioAxis::Layouts {
        layouts: Layout::ALL.to_vec(),
    });
    let report = qic::run(&spec).expect("spec validates");
    for point in &report.report.points {
        println!(
            "  {:<12}: makespan {:.2} ms, {} teleports, {} purify ops, util T'={:.0}% P={:.0}%",
            point.param("layout"),
            point.mean("makespan_us").unwrap() / 1e3,
            point.mean("teleport_ops").unwrap(),
            point.mean("purify_ops").unwrap(),
            point.mean("teleporter_utilization").unwrap() * 100.0,
            point.mean("purifier_utilization").unwrap() * 100.0,
        );
    }
    Ok(())
}
