//! Design-space exploration: a 3-axis scenario from the registry.
//!
//! Sweeps mesh size × purifier depth × resource allocation (64 points)
//! over the event-driven simulator, QFT-16 workload, on 4 worker
//! threads — the kind of cost/fidelity design-space study that related
//! interconnect-fabric work runs, as one registry lookup. The same
//! scenario is re-run on 1 worker to demonstrate the engine's
//! scheduling-independence guarantee: both reports are byte-identical.
//!
//! Run with `cargo run --release --example design_space`.

use qic::prelude::*;

fn main() {
    let spec = ScenarioRegistry::builtin()
        .spec("design_space", ScenarioScale::Full)
        .expect("registered");
    let parallel = qic::run(&spec.clone().with_workers(4))
        .expect("registry specs validate")
        .report;
    eprintln!(
        "ran {} points × {} replicate(s) on 4 workers",
        parallel.points.len(),
        parallel.replicates
    );

    // Determinism: the 1-worker run must produce byte-identical output.
    let serial = qic::run(&spec.with_workers(1))
        .expect("registry specs validate")
        .report;
    assert_eq!(
        parallel.to_json(),
        serial.to_json(),
        "campaign reports must not depend on worker count"
    );
    eprintln!("1-worker re-run is byte-identical (scheduling-independent)");

    println!(
        "{:>5} {:>6} {:>6} {:>14} {:>14} {:>14} {:>8}",
        "mesh", "depth", "units", "makespan (ms)", "p95 lat (µs)", "tele util", "stalls"
    );
    for point in &parallel.points {
        let stalls = point.mean("teleporter_stalls").unwrap_or(0.0)
            + point.mean("wire_stalls").unwrap_or(0.0)
            + point.mean("storage_stalls").unwrap_or(0.0);
        println!(
            "{:>5} {:>6} {:>6} {:>14.2} {:>14.1} {:>14.3} {:>8.0}",
            point.param("mesh"),
            point.param("depth"),
            point.param("units"),
            point.mean("makespan_us").unwrap() / 1e3,
            point.mean("latency_p95_us").unwrap_or(f64::NAN),
            point.mean("teleporter_utilization").unwrap(),
            stalls,
        );
    }

    // Headline reading: more purifier depth costs time; more units buy
    // it back. Compare the extremes at the largest mesh.
    let at = |mesh: i64, depth: i64, units: i64| {
        parallel
            .points
            .iter()
            .find(|p| {
                p.param("mesh").as_i64() == Some(mesh)
                    && p.param("depth").as_i64() == Some(depth)
                    && p.param("units").as_i64() == Some(units)
            })
            .and_then(|p| p.mean("makespan_us"))
            .expect("point exists")
    };
    println!(
        "\nreading: at mesh 8, deepening purification 1→4 rounds costs {:.1}x with 2 units\n\
         but only {:.1}x with 16 units — the campaign quantifies how much hardware\n\
         buys back the fidelity/latency trade.",
        at(8, 4, 2) / at(8, 1, 2),
        at(8, 4, 16) / at(8, 1, 16),
    );

    // CSV excerpt (full emitters: CampaignReport::to_csv / to_json).
    let csv = parallel.to_csv();
    println!("\nCSV excerpt ({} rows total):", csv.lines().count() - 1);
    for line in csv.lines().take(4) {
        let cut = line.chars().take(100).collect::<String>();
        println!("  {cut}…");
    }
}
