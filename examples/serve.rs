//! The scenario service, drivable from the shell: a JSONL session over
//! stdin/stdout (default) or a `std::net` TCP listener.
//!
//! ```text
//! serve [--workers N] [--jobs N] [--queue N] [--cache DIR] [--out DIR] [--tcp ADDR]
//! ```
//!
//! One request per line in, one or more events per line out (see
//! `qic_serve::front` for the protocol). A quick session:
//!
//! ```text
//! $ printf '%s\n' \
//!     '{"op": "submit", "preset": "design_space", "scale": "small"}' \
//!     '{"op": "wait", "job": 1}' \
//!     '{"op": "submit", "preset": "design_space", "scale": "small"}' \
//!     '{"op": "wait", "job": 2}' \
//!     '{"op": "metrics"}' \
//!     '{"op": "shutdown"}' \
//!   | cargo run --release --example serve -- --cache target/serve_cache
//! ```
//!
//! The second `wait` resolves with `"source": "memory"` — same digest,
//! same bytes, no recomputation. With `--out DIR`, each completed job
//! also lands as `job-N.json` / `job-N.csv`, byte-identical to what
//! `scenario_run` writes for the same spec.
//!
//! With `--tcp ADDR` (e.g. `--tcp 127.0.0.1:7878`) the example serves
//! JSONL sessions over TCP instead, one connection at a time, until a
//! session sends `shutdown`:
//!
//! ```text
//! $ cargo run --release --example serve -- --tcp 127.0.0.1:7878 &
//! $ printf '{"op": "metrics"}\n{"op": "shutdown"}\n' | nc 127.0.0.1 7878
//! ```

use std::io::{BufReader, Write as _};
use std::path::PathBuf;

use qic::serve::{serve_lines, Serve, ServeConfig};

const USAGE: &str =
    "usage: serve [--workers N] [--jobs N] [--queue N] [--cache DIR] [--out DIR] [--tcp ADDR]";

struct Cli {
    config: ServeConfig,
    out: Option<PathBuf>,
    tcp: Option<String>,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        config: ServeConfig::default(),
        out: None,
        tcp: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--workers" => {
                cli.config.workers = value("--workers").parse().expect("--workers wants a count");
            }
            "--jobs" => {
                cli.config.parallel_jobs = value("--jobs").parse().expect("--jobs wants a count");
            }
            "--queue" => {
                cli.config.queue_limit = value("--queue").parse().expect("--queue wants a count");
            }
            "--cache" => cli.config.cache_dir = Some(PathBuf::from(value("--cache"))),
            "--out" => cli.out = Some(PathBuf::from(value("--out"))),
            "--tcp" => cli.tcp = Some(value("--tcp")),
            flag => panic!("unknown flag {flag:?}\n{USAGE}"),
        }
    }
    cli
}

fn main() {
    let cli = parse_cli();
    let serve = Serve::start(cli.config);
    let handle = serve.handle();
    eprintln!("serve: ready with {} workers", handle.workers());
    match &cli.tcp {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            serve_lines(&handle, stdin.lock(), stdout.lock(), cli.out.as_deref())
                .expect("stdio session");
        }
        Some(addr) => {
            let listener =
                std::net::TcpListener::bind(addr).unwrap_or_else(|e| panic!("binding {addr}: {e}"));
            eprintln!("serve: listening on {addr}");
            // One JSONL session per connection, until one says shutdown.
            for stream in listener.incoming() {
                let stream = match stream {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("serve: accept failed: {e}");
                        continue;
                    }
                };
                let reader = BufReader::new(stream.try_clone().expect("clone stream"));
                let mut writer = stream;
                if serve_lines(&handle, reader, &mut writer, cli.out.as_deref()).is_err() {
                    eprintln!("serve: session dropped");
                    continue;
                }
                let _ = writer.flush();
                // A session that ends cleanly (EOF or shutdown op) ends
                // the listener; a dropped connection does not.
                break;
            }
        }
    }
    serve.shutdown();
    eprintln!("serve: drained");
}
