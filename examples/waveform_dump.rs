//! Physical-layer tour: electrode waveforms, junction turns and route
//! costs on an ion-trap floorplan (Figure 2 territory).
//!
//! Run with `cargo run --example waveform_dump`.

use qic::iontrap::channel::{Channel, IonId};
use qic::iontrap::floorplan::{Floorplan, Site};
use qic::iontrap::waveform::ShuttlePlan;
use qic::prelude::*;

fn main() {
    let times = OpTimes::ion_trap();
    let rates = ErrorRates::ion_trap();

    // 1. The Figure 2 shuttle: cell 3 to cell 9.
    println!("== electrode schedule for a 6-cell shuttle (Figure 2) ==");
    let schedule = ShuttlePlan::new(3, 9)
        .expect("distinct cells")
        .waveforms(&times);
    print!("{}", schedule.render());
    println!(
        "phases: {}, total {}, well trajectory {:?}\n",
        schedule.phases(),
        schedule.total_time(),
        schedule.well_trajectory()
    );

    // 2. An occupancy-checked channel with two ions.
    println!("== collision-checked channel ==");
    let mut ch = Channel::new(32);
    ch.insert(IonId(1), 0).expect("cell empty");
    ch.insert(IonId(2), 16).expect("cell empty");
    let out = ch.shuttle(IonId(1), 10).expect("path clear");
    println!(
        "ion1 0->10: {} in {}, fidelity now 1-{:.1e}",
        out.schedule.phases(),
        out.elapsed,
        out.fidelity_after.infidelity()
    );
    match ch.shuttle(IonId(1), 20) {
        Err(e) => println!("ion1 10->20 refused: {e}"),
        Ok(_) => unreachable!("ion2 blocks the path"),
    }

    // 3. Route planning across a floorplan with junction turn costs.
    println!("\n== floorplan routes (600-cell edges, X junctions) ==");
    let fp = Floorplan::grid(8, 8, 600);
    for (from, to) in [
        (Site { x: 0, y: 0 }, Site { x: 7, y: 0 }),
        (Site { x: 0, y: 0 }, Site { x: 4, y: 4 }),
        (Site { x: 0, y: 0 }, Site { x: 7, y: 7 }),
    ] {
        let r = fp.route(from, to).expect("sites on grid");
        println!(
            "  {from}->{to}: {} cells ({} turns), {} ballistic, survival {:.5}",
            r.total_cells,
            r.turns,
            r.time(&times),
            r.survival(&rates)
        );
    }
    println!(
        "\nthe longest route ({} cells) would lose {:.1e} fidelity if data moved\n\
         ballistically — this is why the mesh teleports everything beyond ~600 cells.",
        fp.diameter_cells(),
        1.0 - qic::physics::transport::survival(fp.diameter_cells(), &rates)
    );
}
