//! Scenario API end to end: load a spec from a JSON string, run it
//! through the single `qic::run` entry point, print the report.
//!
//! The spec below is exactly what `ScenarioSpec::to_json` emits — an
//! experiment as data. Edit the string (fabric, routing, workload,
//! axes) and rerun; no Rust changes needed. Pass a registry name
//! (`cargo run --release --example scenario_run -- fig16`) to run a
//! named preset instead.
//!
//! Run with `cargo run --release --example scenario_run`.

use qic::prelude::*;

/// A study the pre-scenario API could not express without new code:
/// synthetic (locality-free) traffic across all three fabrics under
/// both routing policies.
const SPEC_JSON: &str = r#"{
  "name": "fabric_stress_from_json",
  "seed": 2006,
  "replicates": 1,
  "workers": 0,
  "experiment": {
    "kind": "machine",
    "machine": {
      "preset": "small_test",
      "width": 4, "height": 4,
      "topology": "mesh", "routing": "dor",
      "layout": "Home Base",
      "teleporters": 4, "generators": 4, "purifiers": 2,
      "purify_depth": 2, "outputs_per_comm": 3
    },
    "workload": {"kind": "synthetic", "qubits": 8, "comms": 24, "seed": 7}
  },
  "axes": [
    {"axis": "topology", "kinds": ["mesh", "torus", "hypercube"]},
    {"axis": "routing", "policies": ["dor", "adaptive"]}
  ]
}"#;

fn main() {
    let spec = match std::env::args().nth(1) {
        Some(name) => ScenarioRegistry::builtin()
            .spec(&name, ScenarioScale::SmallTest)
            .unwrap_or_else(|| {
                let names: Vec<&str> = ScenarioRegistry::builtin()
                    .entries()
                    .iter()
                    .map(|e| e.name)
                    .collect();
                panic!("unknown scenario {name:?}; registered: {names:?}")
            }),
        None => ScenarioSpec::from_json(SPEC_JSON).expect("embedded spec parses"),
    };

    eprintln!("scenario: {}", spec.name);
    let report = qic::run(&spec).expect("spec validates");
    println!(
        "{} points, {} replicate(s) each",
        report.report.points.len(),
        report.report.replicates
    );

    // Every metric the simulator reports is in the campaign report;
    // print the headline ones per point.
    println!(
        "\n{:>28} {:>14} {:>11} {:>11}",
        "point", "makespan (ms)", "p95 (µs)", "stalls"
    );
    for point in &report.report.points {
        let label = point
            .params
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ");
        let stalls = point.mean("teleporter_stalls").unwrap_or(0.0)
            + point.mean("wire_stalls").unwrap_or(0.0)
            + point.mean("storage_stalls").unwrap_or(0.0);
        println!(
            "{label:>28} {:>14.2} {:>11.1} {:>11.0}",
            point.mean("makespan_us").unwrap_or(f64::NAN) / 1e3,
            point.mean("latency_p95_us").unwrap_or(f64::NAN),
            stalls,
        );
    }

    // The spec round-trips: serialize, re-parse, re-run, same bytes.
    let reloaded = ScenarioSpec::from_json(&spec.to_json()).expect("round trip");
    let rerun = qic::run(&reloaded).expect("round-tripped spec validates");
    assert_eq!(
        report.to_json(),
        rerun.to_json(),
        "a spec fully determines its report"
    );
    eprintln!("\nJSON round trip re-ran to byte-identical output");

    println!("\nCSV excerpt:");
    for line in report.to_csv().lines().take(3) {
        let cut = line.chars().take(100).collect::<String>();
        println!("  {cut}…");
    }
}
