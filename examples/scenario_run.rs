//! Scenario API end to end: load a spec from a JSON string, run it
//! through the single `qic::run` entry point, print the report.
//!
//! The spec below is exactly what `ScenarioSpec::to_json` emits — an
//! experiment as data. Edit the string (fabric, routing, workload,
//! axes) and rerun; no Rust changes needed. Pass a registry name
//! (`cargo run --release --example scenario_run -- fig16`) to run a
//! named preset instead.
//!
//! Campaigns too big for one sitting have three more modes:
//!
//! ```text
//! scenario_run [name] [--out DIR]            # serial; write CSV + record JSON
//! scenario_run [name] --shard i/K --out DIR  # run shard i of K, write its record
//! scenario_run [name] --merge K --out DIR    # merge K shard records -> CSV + JSON
//! scenario_run [name] --resume --out DIR [--checkpoint-every N] [--budget M]
//!                                            # checkpointed run; resumes a manifest
//! ```
//!
//! Sharded: the K shard records merge byte-identically to the serial
//! run. Resumable: kill the process (or stop it with `--budget`) and
//! rerun — the final report is byte-identical to an uninterrupted run.
//!
//! Run with `cargo run --release --example scenario_run`.

use qic::prelude::*;
use qic::sweep::{CampaignReport, Shard};
use qic::CheckpointSpec;
use std::path::{Path, PathBuf};

/// A study the pre-scenario API could not express without new code:
/// synthetic (locality-free) traffic across all three fabrics under
/// both routing policies.
const SPEC_JSON: &str = r#"{
  "name": "fabric_stress_from_json",
  "seed": 2006,
  "replicates": 1,
  "workers": 0,
  "experiment": {
    "kind": "machine",
    "machine": {
      "preset": "small_test",
      "width": 4, "height": 4,
      "topology": "mesh", "routing": "dor",
      "layout": "Home Base",
      "teleporters": 4, "generators": 4, "purifiers": 2,
      "purify_depth": 2, "outputs_per_comm": 3
    },
    "workload": {"kind": "synthetic", "qubits": 8, "comms": 24, "seed": 7}
  },
  "axes": [
    {"axis": "topology", "kinds": ["mesh", "torus", "hypercube"]},
    {"axis": "routing", "policies": ["dor", "adaptive"]}
  ]
}"#;

struct Cli {
    name: Option<String>,
    shard: Option<Shard>,
    merge: Option<usize>,
    resume: bool,
    every: Option<u32>,
    budget: Option<usize>,
    out: Option<String>,
}

const USAGE: &str = "usage: scenario_run [name] [--out DIR] [--shard i/K] [--merge K] \
                     [--resume] [--checkpoint-every N] [--budget M]";

fn parse_cli() -> Cli {
    let mut cli = Cli {
        name: None,
        shard: None,
        merge: None,
        resume: false,
        every: None,
        budget: None,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--shard" => {
                let v = value("--shard");
                cli.shard =
                    Some(Shard::parse(&v).unwrap_or_else(|| {
                        panic!("--shard wants i/K with i < K, got {v:?}\n{USAGE}")
                    }));
            }
            "--merge" => {
                cli.merge = Some(value("--merge").parse().expect("--merge wants a count"));
            }
            "--resume" => cli.resume = true,
            "--checkpoint-every" => {
                cli.every = Some(
                    value("--checkpoint-every")
                        .parse()
                        .expect("--checkpoint-every wants a point count"),
                );
            }
            "--budget" => {
                cli.budget = Some(
                    value("--budget")
                        .parse()
                        .expect("--budget wants a point count"),
                );
            }
            "--out" => cli.out = Some(value("--out")),
            flag if flag.starts_with("--") => panic!("unknown flag {flag:?}\n{USAGE}"),
            name => {
                assert!(cli.name.is_none(), "one scenario name only\n{USAGE}");
                cli.name = Some(name.to_string());
            }
        }
    }
    cli
}

fn out_dir(cli: &Cli) -> PathBuf {
    let dir = PathBuf::from(cli.out.as_deref().unwrap_or("target/scenario_run"));
    std::fs::create_dir_all(&dir).expect("create output directory");
    dir
}

fn write_outputs(dir: &Path, name: &str, report: &CampaignReport) {
    let csv = dir.join(format!("{name}.csv"));
    std::fs::write(&csv, report.to_csv()).expect("write CSV");
    let json = dir.join(format!("{name}.json"));
    std::fs::write(&json, report.to_record_json()).expect("write record JSON");
    eprintln!("wrote {} and {}", csv.display(), json.display());
}

fn shard_path(dir: &Path, name: &str, shard: Shard) -> PathBuf {
    dir.join(format!(
        "{name}.shard{}of{}.json",
        shard.index(),
        shard.count()
    ))
}

fn main() {
    let cli = parse_cli();
    let spec = match &cli.name {
        Some(name) => ScenarioRegistry::builtin()
            .spec(name, ScenarioScale::SmallTest)
            .unwrap_or_else(|| {
                let names: Vec<&str> = ScenarioRegistry::builtin()
                    .entries()
                    .iter()
                    .map(|e| e.name)
                    .collect();
                panic!("unknown scenario {name:?}; registered: {names:?}")
            }),
        None => ScenarioSpec::from_json(SPEC_JSON).expect("embedded spec parses"),
    };
    eprintln!("scenario: {}", spec.name);

    // --merge K: no evaluation at all — read the K shard records and
    // stitch them back into the serial report.
    if let Some(count) = cli.merge {
        let dir = out_dir(&cli);
        let parts: Vec<CampaignReport> = (0..count)
            .map(|i| {
                let path = shard_path(&dir, &spec.name, Shard::new(i, count));
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
                CampaignReport::from_record_json(&text)
                    .unwrap_or_else(|e| panic!("parsing {}: {e}", path.display()))
            })
            .collect();
        let merged = CampaignReport::merge(parts).expect("shard records cover the campaign");
        println!("merged {count} shards: {} points", merged.points.len());
        write_outputs(&dir, &spec.name, &merged);
        return;
    }

    // --shard i/K: evaluate one contiguous slice, record it for merge.
    if let Some(shard) = cli.shard {
        let dir = out_dir(&cli);
        let report = qic::run_shard(&spec, shard).expect("spec validates");
        let path = shard_path(&dir, &spec.name, shard);
        std::fs::write(&path, report.report.to_record_json()).expect("write shard record");
        println!(
            "shard {shard}: {} of {} points -> {}",
            report.report.points.len(),
            spec.param_space().len(),
            path.display()
        );
        return;
    }

    // --resume (with optional --budget M): checkpointed, resumable run.
    if cli.resume || cli.budget.is_some() || cli.every.is_some() {
        let dir = out_dir(&cli);
        let ckpt =
            CheckpointSpec::to_dir(dir.display().to_string()).with_every(cli.every.unwrap_or(16));
        let spec = spec.with_checkpoint(ckpt);
        match qic::run_budgeted(&spec, cli.budget).expect("spec validates, manifest loads") {
            ScenarioProgress::Partial { done, total } => {
                println!("checkpointed {done}/{total} points; rerun with --resume to continue");
            }
            ScenarioProgress::Complete(report) => {
                println!("complete: {} points", report.report.points.len());
                write_outputs(&dir, &spec.name, &report.report);
            }
        }
        return;
    }

    let report = qic::run(&spec).expect("spec validates");
    println!(
        "{} points, {} replicate(s) each",
        report.report.points.len(),
        report.report.replicates
    );
    if cli.out.is_some() {
        write_outputs(&out_dir(&cli), &spec.name, &report.report);
    }

    // Every metric the simulator reports is in the campaign report;
    // print the headline ones per point.
    println!(
        "\n{:>28} {:>14} {:>11} {:>11}",
        "point", "makespan (ms)", "p95 (µs)", "stalls"
    );
    for point in &report.report.points {
        let label = point
            .params
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ");
        let stalls = point.mean("teleporter_stalls").unwrap_or(0.0)
            + point.mean("wire_stalls").unwrap_or(0.0)
            + point.mean("storage_stalls").unwrap_or(0.0);
        println!(
            "{label:>28} {:>14.2} {:>11.1} {:>11.0}",
            point.mean("makespan_us").unwrap_or(f64::NAN) / 1e3,
            point.mean("latency_p95_us").unwrap_or(f64::NAN),
            stalls,
        );
    }

    // The spec round-trips: serialize, re-parse, re-run, same bytes.
    let reloaded = ScenarioSpec::from_json(&spec.to_json()).expect("round trip");
    let rerun = qic::run(&reloaded).expect("round-tripped spec validates");
    assert_eq!(
        report.to_json(),
        rerun.to_json(),
        "a spec fully determines its report"
    );
    eprintln!("\nJSON round trip re-ran to byte-identical output");

    println!("\nCSV excerpt:");
    for line in report.to_csv().lines().take(3) {
        let cut = line.chars().take(100).collect::<String>();
        println!("  {cut}…");
    }
}
