//! Resource-contention study: the Figure 16 experiment as a scenario.
//!
//! Sweeps the interconnect area split between teleporters/generators and
//! queue purifiers, for both layouts, and prints normalized execution
//! times of the QFT benchmark. The whole experiment is one declarative
//! [`ScenarioSpec`] run through `qic::run`; the paper's normalized
//! dataset is unpacked from the campaign report with
//! `figure16_from_campaign`.
//!
//! Run with `cargo run --release --example qft_contention [tiny|reduced|paper]`.

use qic::core::experiment::figure16_from_campaign;
use qic::prelude::*;

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("paper") => Fig16Scale::Paper,
        Some("tiny") => Fig16Scale::Tiny,
        _ => Fig16Scale::Reduced,
    };
    eprintln!("running Figure 16 sweep at {scale:?} scale...");
    let spec = fig16_spec(scale);
    let report = qic::run(&spec).expect("figure presets validate");
    let result = figure16_from_campaign(scale, &report.report);
    println!(
        "baselines (t=g=p=1024): Home Base {:.1} ms, Mobile {:.1} ms",
        result.baseline_us[0] / 1e3,
        result.baseline_us[1] / 1e3
    );
    println!(
        "\n{:<10} {:>4} {:>4} {:>4} {:>10} {:>10}",
        "config", "t", "g", "p", "HomeBase", "Mobile"
    );
    for p in &result.points {
        println!(
            "{:<10} {:>4} {:>4} {:>4} {:>10.3} {:>10.3}",
            p.label, p.t, p.g, p.p, p.home_base, p.mobile
        );
    }
    println!(
        "\nreading: Home-Base channels share T' nodes heavily, so shifting area\n\
         from P to T'/G helps — until purifiers starve. Mobile channels are\n\
         mostly one hop, so endpoint purifier throughput dominates and the\n\
         t=g=8p point degrades hardest (the paper's closing observation)."
    );
    eprintln!(
        "\nthe whole experiment is data — `ScenarioSpec::from_json` re-runs it:\n{}",
        spec.to_json()
    );
}
