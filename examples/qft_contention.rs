//! Resource-contention study: the Figure 16 experiment as an example.
//!
//! Sweeps the interconnect area split between teleporters/generators and
//! queue purifiers, for both layouts, and prints normalized execution
//! times of the QFT benchmark.
//!
//! Run with `cargo run --release --example qft_contention [tiny|reduced|paper]`.

use qic::core::experiment::{figure16, Fig16Scale};

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("paper") => Fig16Scale::Paper,
        Some("tiny") => Fig16Scale::Tiny,
        _ => Fig16Scale::Reduced,
    };
    eprintln!("running Figure 16 sweep at {scale:?} scale...");
    let result = figure16(scale);
    println!(
        "baselines (t=g=p=1024): Home Base {:.1} ms, Mobile {:.1} ms",
        result.baseline_us[0] / 1e3,
        result.baseline_us[1] / 1e3
    );
    println!(
        "\n{:<10} {:>4} {:>4} {:>4} {:>10} {:>10}",
        "config", "t", "g", "p", "HomeBase", "Mobile"
    );
    for p in &result.points {
        println!(
            "{:<10} {:>4} {:>4} {:>4} {:>10.3} {:>10.3}",
            p.label, p.t, p.g, p.p, p.home_base, p.mobile
        );
    }
    println!(
        "\nreading: Home-Base channels share T' nodes heavily, so shifting area\n\
         from P to T'/G helps — until purifiers starve. Mobile channels are\n\
         mostly one hop, so endpoint purifier throughput dominates and the\n\
         t=g=8p point degrades hardest (the paper's closing observation)."
    );
}
