//! Operation time constants — **Table 1** of the paper.
//!
//! | Operation      | Variable | Time (µs) |
//! |----------------|----------|-----------|
//! | One-qubit gate | `t1q`    | 1         |
//! | Two-qubit gate | `t2q`    | 20        |
//! | Move one cell  | `tmv`    | 0.2       |
//! | Measure        | `tms`    | 100       |
//! | Generate       | `tgen`   | 122       |
//! | Teleport       | `ttprt`  | ~122      |
//! | Purify         | `tprfy`  | ~121      |
//!
//! One *cell* is the minimum distance of a ballistic move (one ion trap).
//! Teleportation and purification also require classical bits to be routed
//! between the endpoints, so their total latency grows with distance; the
//! `~` entries of Table 1 are the distance-independent parts, recovered here
//! by [`OpTimes::teleport_local`] and [`OpTimes::purify_round_local`].

use serde::{Deserialize, Serialize};

use crate::time::Duration;

/// Time constants for the primitive operations of an ion-trap quantum
/// computer (Table 1 of the paper).
///
/// Construct the published values with [`OpTimes::ion_trap`]; the `with_*`
/// builder methods derive variants for sensitivity studies.
///
/// # Example
///
/// ```
/// use qic_physics::optime::OpTimes;
/// use qic_physics::time::Duration;
///
/// let t = OpTimes::ion_trap();
/// // Teleport latency (Eq. 5): 2·t1q + t2q + tms = 122 µs plus classical bits.
/// assert_eq!(t.teleport_local(), Duration::from_micros(122));
/// // One purification round (Eq. 6): t2q + tms = 120 µs plus a classical bit.
/// assert_eq!(t.purify_round_local(), Duration::from_micros(120));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OpTimes {
    one_qubit_gate: Duration,
    two_qubit_gate: Duration,
    move_cell: Duration,
    measure: Duration,
    /// Classical communication cost per ballistic cell of distance. The paper
    /// assumes classical signalling is "orders of magnitude faster than the
    /// quantum operations"; the default models 1 ns per cell.
    classical_per_cell: Duration,
}

impl OpTimes {
    /// The experimental ion-trap values of Table 1
    /// (`t1q`=1 µs, `t2q`=20 µs, `tmv`=0.2 µs/cell, `tms`=100 µs).
    pub fn ion_trap() -> Self {
        OpTimes {
            one_qubit_gate: Duration::from_micros(1),
            two_qubit_gate: Duration::from_micros(20),
            move_cell: Duration::from_nanos(200),
            measure: Duration::from_micros(100),
            classical_per_cell: Duration::from_nanos(1),
        }
    }

    /// Duration of a one-qubit gate (`t1q`).
    pub fn one_qubit_gate(&self) -> Duration {
        self.one_qubit_gate
    }

    /// Duration of a two-qubit gate (`t2q`).
    pub fn two_qubit_gate(&self) -> Duration {
        self.two_qubit_gate
    }

    /// Duration of one ballistic move across a single cell (`tmv`).
    pub fn move_cell(&self) -> Duration {
        self.move_cell
    }

    /// Duration of a projective measurement (`tms`).
    pub fn measure(&self) -> Duration {
        self.measure
    }

    /// Classical signalling time per cell of physical distance.
    pub fn classical_per_cell(&self) -> Duration {
        self.classical_per_cell
    }

    /// Replaces the one-qubit gate time.
    pub fn with_one_qubit_gate(mut self, d: Duration) -> Self {
        self.one_qubit_gate = d;
        self
    }

    /// Replaces the two-qubit gate time.
    pub fn with_two_qubit_gate(mut self, d: Duration) -> Self {
        self.two_qubit_gate = d;
        self
    }

    /// Replaces the per-cell ballistic move time.
    pub fn with_move_cell(mut self, d: Duration) -> Self {
        self.move_cell = d;
        self
    }

    /// Replaces the measurement time.
    pub fn with_measure(mut self, d: Duration) -> Self {
        self.measure = d;
        self
    }

    /// Replaces the per-cell classical signalling time.
    pub fn with_classical_per_cell(mut self, d: Duration) -> Self {
        self.classical_per_cell = d;
        self
    }

    /// Ballistic movement time across `cells` traps (Equation 2:
    /// `t = tmv · D`).
    pub fn ballistic(&self, cells: u64) -> Duration {
        self.move_cell * cells
    }

    /// Classical signalling latency across `cells` of physical distance.
    pub fn classical(&self, cells: u64) -> Duration {
        self.classical_per_cell * cells
    }

    /// The distance-independent part of a teleportation (Equation 5 with
    /// `D = 0`): two one-qubit gates, one two-qubit gate and a measurement.
    /// Equals the "~122 µs" `ttprt` entry of Table 1.
    pub fn teleport_local(&self) -> Duration {
        self.one_qubit_gate * 2 + self.two_qubit_gate + self.measure
    }

    /// Full teleportation latency over a distance of `cells`
    /// (Equation 5: `2·t1q + t2q + tms + t_classical·D`).
    pub fn teleport(&self, cells: u64) -> Duration {
        self.teleport_local() + self.classical(cells)
    }

    /// The distance-independent part of one purification round (Equation 6
    /// with zero-distance classical exchange): one two-qubit gate and one
    /// measurement. The "~121 µs" `tprfy` entry of Table 1 is this value
    /// plus the classical bit exchange.
    pub fn purify_round_local(&self) -> Duration {
        self.two_qubit_gate + self.measure
    }

    /// Full single-round purification latency when the endpoints are `cells`
    /// apart (Equation 6: `t2q + tms + t_classical`).
    pub fn purify_round(&self, cells: u64) -> Duration {
        self.purify_round_local() + self.classical(cells)
    }

    /// EPR-pair generation time as listed in Table 1 (122 µs). The paper
    /// sizes generator and teleporter bandwidth against each other using
    /// this value ("generation and teleportation have nearly equivalent
    /// latency", Section 5.3).
    pub fn generate(&self) -> Duration {
        // Table 1 lists tgen = 122 µs, matching teleport latency.
        self.teleport_local()
    }

    /// EPR-pair generation time counting only the gates it is built from
    /// (one single- plus one double-qubit gate, Section 4.4's "projected to
    /// be 21 µs"). Exposed because the paper's prose and its Table 1
    /// disagree; see DESIGN.md §5.
    pub fn generate_gates_only(&self) -> Duration {
        self.one_qubit_gate + self.two_qubit_gate
    }
}

impl Default for OpTimes {
    /// Same as [`OpTimes::ion_trap`].
    fn default() -> Self {
        OpTimes::ion_trap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let t = OpTimes::ion_trap();
        assert_eq!(t.one_qubit_gate(), Duration::from_micros(1));
        assert_eq!(t.two_qubit_gate(), Duration::from_micros(20));
        assert_eq!(t.move_cell(), Duration::from_us_f64(0.2));
        assert_eq!(t.measure(), Duration::from_micros(100));
    }

    #[test]
    fn teleport_matches_table1() {
        let t = OpTimes::ion_trap();
        assert_eq!(t.teleport_local(), Duration::from_micros(122));
        assert_eq!(t.generate(), Duration::from_micros(122));
        assert_eq!(t.generate_gates_only(), Duration::from_micros(21));
    }

    #[test]
    fn purify_round_matches_table1() {
        let t = OpTimes::ion_trap();
        // 120 µs of quantum ops + ~1 µs classical for a ~600-cell span ≈
        // the "~121 µs" of Table 1.
        assert_eq!(t.purify_round_local(), Duration::from_micros(120));
        let with_classical = t.purify_round(600);
        assert!(with_classical > t.purify_round_local());
        assert!(with_classical < Duration::from_micros(122));
    }

    #[test]
    fn ballistic_is_linear_in_distance() {
        let t = OpTimes::ion_trap();
        assert_eq!(t.ballistic(0), Duration::ZERO);
        assert_eq!(t.ballistic(5), Duration::from_micros(1));
        assert_eq!(t.ballistic(600), Duration::from_micros(120));
    }

    #[test]
    fn teleport_grows_with_classical_distance() {
        let t = OpTimes::ion_trap();
        assert!(t.teleport(10_000) > t.teleport(0));
        assert_eq!(t.teleport(0), t.teleport_local());
    }

    #[test]
    fn builder_overrides() {
        let t = OpTimes::ion_trap()
            .with_one_qubit_gate(Duration::from_micros(2))
            .with_two_qubit_gate(Duration::from_micros(10))
            .with_measure(Duration::from_micros(50))
            .with_move_cell(Duration::from_nanos(100))
            .with_classical_per_cell(Duration::from_nanos(2));
        assert_eq!(t.teleport_local(), Duration::from_micros(2 * 2 + 10 + 50));
        assert_eq!(t.ballistic(10), Duration::from_micros(1));
        assert_eq!(t.classical(500), Duration::from_micros(1));
    }
}
