//! Operation error probabilities — **Table 2** of the paper.
//!
//! | Operation      | Variable | Error probability |
//! |----------------|----------|-------------------|
//! | One-qubit gate | `p1q`    | 1e-8              |
//! | Two-qubit gate | `p2q`    | 1e-7              |
//! | Move one cell  | `pmv`    | 1e-6              |
//! | Measure        | `pms`    | 1e-8              |
//!
//! Estimates come from Metodi et al. (MICRO 2005) and the ARDA roadmap
//! (references [19, 29] of the paper).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Error raised when a probability parameter lies outside `[0, 1]` or is not
/// finite.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidProbabilityError {
    name: &'static str,
    value: f64,
}

impl InvalidProbabilityError {
    /// The name of the offending parameter.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The rejected value.
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl fmt::Display for InvalidProbabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "probability `{}` must lie in [0, 1], got {}",
            self.name, self.value
        )
    }
}

impl std::error::Error for InvalidProbabilityError {}

fn check(name: &'static str, value: f64) -> Result<f64, InvalidProbabilityError> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(value)
    } else {
        Err(InvalidProbabilityError { name, value })
    }
}

/// Error probability constants for ion-trap operations (Table 2 of the
/// paper).
///
/// All values are probabilities in `[0, 1]`; the constructors validate this
/// invariant so downstream fidelity arithmetic never sees junk.
///
/// # Example
///
/// ```
/// use qic_physics::error::ErrorRates;
///
/// let r = ErrorRates::ion_trap();
/// assert_eq!(r.move_cell(), 1e-6);
/// // Uniform rates are used by the Figure 12 sensitivity sweep.
/// let u = ErrorRates::uniform(1e-5)?;
/// assert_eq!(u.one_qubit_gate(), u.measure());
/// # Ok::<(), qic_physics::error::InvalidProbabilityError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorRates {
    one_qubit_gate: f64,
    two_qubit_gate: f64,
    move_cell: f64,
    measure: f64,
}

impl ErrorRates {
    /// The published ion-trap estimates of Table 2
    /// (`p1q`=1e-8, `p2q`=1e-7, `pmv`=1e-6, `pms`=1e-8).
    pub fn ion_trap() -> Self {
        ErrorRates {
            one_qubit_gate: 1e-8,
            two_qubit_gate: 1e-7,
            move_cell: 1e-6,
            measure: 1e-8,
        }
    }

    /// A noiseless device; useful for isolating model terms in tests.
    pub fn noiseless() -> Self {
        ErrorRates {
            one_qubit_gate: 0.0,
            two_qubit_gate: 0.0,
            move_cell: 0.0,
            measure: 0.0,
        }
    }

    /// Sets **all four** error rates to `p`, as in the Figure 12 sensitivity
    /// sweep ("all error rates are set to the rate specified on the
    /// x-axis").
    ///
    /// # Errors
    ///
    /// Returns [`InvalidProbabilityError`] if `p` is not a probability.
    pub fn uniform(p: f64) -> Result<Self, InvalidProbabilityError> {
        let p = check("uniform", p)?;
        Ok(ErrorRates {
            one_qubit_gate: p,
            two_qubit_gate: p,
            move_cell: p,
            measure: p,
        })
    }

    /// Builds a fully custom rate set.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidProbabilityError`] if any argument is not a
    /// probability in `[0, 1]`.
    pub fn new(
        one_qubit_gate: f64,
        two_qubit_gate: f64,
        move_cell: f64,
        measure: f64,
    ) -> Result<Self, InvalidProbabilityError> {
        Ok(ErrorRates {
            one_qubit_gate: check("one_qubit_gate", one_qubit_gate)?,
            two_qubit_gate: check("two_qubit_gate", two_qubit_gate)?,
            move_cell: check("move_cell", move_cell)?,
            measure: check("measure", measure)?,
        })
    }

    /// Error probability of a one-qubit gate (`p1q`).
    pub fn one_qubit_gate(&self) -> f64 {
        self.one_qubit_gate
    }

    /// Error probability of a two-qubit gate (`p2q`).
    pub fn two_qubit_gate(&self) -> f64 {
        self.two_qubit_gate
    }

    /// Error probability of moving one cell ballistically (`pmv`).
    pub fn move_cell(&self) -> f64 {
        self.move_cell
    }

    /// Error probability of a measurement (`pms`).
    pub fn measure(&self) -> f64 {
        self.measure
    }

    /// Replaces the one-qubit-gate error rate.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidProbabilityError`] if `p` is not a probability.
    pub fn with_one_qubit_gate(mut self, p: f64) -> Result<Self, InvalidProbabilityError> {
        self.one_qubit_gate = check("one_qubit_gate", p)?;
        Ok(self)
    }

    /// Replaces the two-qubit-gate error rate.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidProbabilityError`] if `p` is not a probability.
    pub fn with_two_qubit_gate(mut self, p: f64) -> Result<Self, InvalidProbabilityError> {
        self.two_qubit_gate = check("two_qubit_gate", p)?;
        Ok(self)
    }

    /// Replaces the per-cell movement error rate.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidProbabilityError`] if `p` is not a probability.
    pub fn with_move_cell(mut self, p: f64) -> Result<Self, InvalidProbabilityError> {
        self.move_cell = check("move_cell", p)?;
        Ok(self)
    }

    /// Replaces the measurement error rate.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidProbabilityError`] if `p` is not a probability.
    pub fn with_measure(mut self, p: f64) -> Result<Self, InvalidProbabilityError> {
        self.measure = check("measure", p)?;
        Ok(self)
    }
}

impl Default for ErrorRates {
    /// Same as [`ErrorRates::ion_trap`].
    fn default() -> Self {
        ErrorRates::ion_trap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values() {
        let r = ErrorRates::ion_trap();
        assert_eq!(r.one_qubit_gate(), 1e-8);
        assert_eq!(r.two_qubit_gate(), 1e-7);
        assert_eq!(r.move_cell(), 1e-6);
        assert_eq!(r.measure(), 1e-8);
    }

    #[test]
    fn uniform_sets_all() {
        let r = ErrorRates::uniform(1e-4).unwrap();
        assert_eq!(r.one_qubit_gate(), 1e-4);
        assert_eq!(r.two_qubit_gate(), 1e-4);
        assert_eq!(r.move_cell(), 1e-4);
        assert_eq!(r.measure(), 1e-4);
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(ErrorRates::uniform(-0.1).is_err());
        assert!(ErrorRates::uniform(1.5).is_err());
        assert!(ErrorRates::uniform(f64::NAN).is_err());
        let err = ErrorRates::new(2.0, 0.0, 0.0, 0.0).unwrap_err();
        assert_eq!(err.name(), "one_qubit_gate");
        assert_eq!(err.value(), 2.0);
        assert!(err.to_string().contains("one_qubit_gate"));
    }

    #[test]
    fn builders_validate() {
        let r = ErrorRates::noiseless();
        assert!(r.with_move_cell(0.5).is_ok());
        assert!(r.with_move_cell(-0.5).is_err());
        assert!(r.with_measure(1.0).is_ok());
        assert!(r.with_one_qubit_gate(f64::INFINITY).is_err());
        assert!(r.with_two_qubit_gate(0.3).is_ok());
    }

    #[test]
    fn noiseless_is_zero() {
        let r = ErrorRates::noiseless();
        assert_eq!(
            r.one_qubit_gate() + r.two_qubit_gate() + r.move_cell() + r.measure(),
            0.0
        );
    }
}
