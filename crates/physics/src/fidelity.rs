//! Fidelity — the state-quality measure of Section 4.1.
//!
//! Fidelity measures the overlap between an operational state and a
//! reference ("error-free") state: 1 means the system is definitely in the
//! reference state, 0 means no overlap. For a state that passed through a
//! channel flipping a bit with probability `p`, the fidelity is `1 − p`, so
//! `1 − F` ("infidelity") is the error probability the paper plots on its
//! y-axes.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Error raised when constructing a [`Fidelity`] from a value outside
/// `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidFidelityError(f64);

impl InvalidFidelityError {
    /// The rejected value.
    pub fn value(&self) -> f64 {
        self.0
    }
}

impl fmt::Display for InvalidFidelityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fidelity must lie in [0, 1], got {}", self.0)
    }
}

impl std::error::Error for InvalidFidelityError {}

/// A fidelity value, statically guaranteed to lie in `[0, 1]`.
///
/// `Fidelity` is a validated newtype over `f64` (guideline C-NEWTYPE): all
/// physics code takes and returns `Fidelity`, so range errors surface at the
/// construction boundary instead of deep inside a model.
///
/// # Example
///
/// ```
/// use qic_physics::fidelity::Fidelity;
///
/// let f = Fidelity::new(0.999)?;
/// assert!((f.infidelity() - 1e-3).abs() < 1e-12);
/// assert!(f > Fidelity::from_error(2e-3));
/// # Ok::<(), qic_physics::fidelity::InvalidFidelityError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(try_from = "f64", into = "f64")]
pub struct Fidelity(f64);

impl Fidelity {
    /// Perfect fidelity (the reference state itself).
    pub const ONE: Fidelity = Fidelity(1.0);

    /// Zero overlap with the reference state.
    pub const ZERO: Fidelity = Fidelity(0.0);

    /// The fully mixed two-qubit state's overlap with any Bell state.
    pub const QUARTER: Fidelity = Fidelity(0.25);

    /// Creates a fidelity, validating that `value ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidFidelityError`] if `value` is not finite or lies
    /// outside `[0, 1]`.
    pub fn new(value: f64) -> Result<Self, InvalidFidelityError> {
        if value.is_finite() && (0.0..=1.0).contains(&value) {
            Ok(Fidelity(value))
        } else {
            Err(InvalidFidelityError(value))
        }
    }

    /// Creates a fidelity, clamping `value` into `[0, 1]` (NaN maps to 0).
    ///
    /// Model code uses this at the end of floating-point pipelines where
    /// values may stray a ULP outside the range.
    pub fn new_clamped(value: f64) -> Self {
        if value.is_nan() {
            Fidelity(0.0)
        } else {
            Fidelity(value.clamp(0.0, 1.0))
        }
    }

    /// Creates the fidelity `1 − error`, clamping into `[0, 1]`.
    pub fn from_error(error: f64) -> Self {
        Fidelity::new_clamped(1.0 - error)
    }

    /// The raw value in `[0, 1]`.
    pub fn value(self) -> f64 {
        self.0
    }

    /// The infidelity `1 − F` — the "error" plotted by Figures 8–9.
    pub fn infidelity(self) -> f64 {
        1.0 - self.0
    }

    /// The Werner-state *polarization* `(4F − 1)/3`, the quantity that
    /// multiplies under composition of depolarizing processes; Equation 3 is
    /// written in terms of it.
    pub fn polarization(self) -> f64 {
        (4.0 * self.0 - 1.0) / 3.0
    }

    /// Inverse of [`Fidelity::polarization`].
    pub fn from_polarization(s: f64) -> Self {
        Fidelity::new_clamped((3.0 * s + 1.0) / 4.0)
    }

    /// Multiplies fidelity by a survival probability (e.g. `(1 − pmv)^D` for
    /// ballistic movement, Equation 1).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `survival` lies outside `[0, 1]`.
    pub fn attenuate(self, survival: f64) -> Self {
        debug_assert!(
            (0.0..=1.0).contains(&survival),
            "survival must be a probability"
        );
        Fidelity::new_clamped(self.0 * survival)
    }

    /// Whether this fidelity meets a minimum threshold (e.g. the
    /// fault-tolerance threshold `1 − 7.5e-5` of Section 4.6).
    pub fn meets(self, threshold: Fidelity) -> bool {
        self.0 >= threshold.0
    }

    /// Total-order comparison (IEEE `totalOrder` on the valid range). Useful
    /// for sorting; values are guaranteed non-NaN by construction.
    pub fn total_cmp(&self, other: &Fidelity) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Display for Fidelity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 > 0.99 {
            // Near one, the infidelity is the informative quantity.
            write!(f, "1-{:.3e}", self.infidelity())
        } else {
            write!(f, "{:.6}", self.0)
        }
    }
}

impl TryFrom<f64> for Fidelity {
    type Error = InvalidFidelityError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Fidelity::new(value)
    }
}

impl From<Fidelity> for f64 {
    fn from(f: Fidelity) -> f64 {
        f.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Fidelity::new(0.5).is_ok());
        assert!(Fidelity::new(0.0).is_ok());
        assert!(Fidelity::new(1.0).is_ok());
        assert!(Fidelity::new(-0.1).is_err());
        assert!(Fidelity::new(1.1).is_err());
        assert!(Fidelity::new(f64::NAN).is_err());
        assert_eq!(Fidelity::new(1.5).unwrap_err().value(), 1.5);
    }

    #[test]
    fn clamping() {
        assert_eq!(Fidelity::new_clamped(1.2), Fidelity::ONE);
        assert_eq!(Fidelity::new_clamped(-0.2), Fidelity::ZERO);
        assert_eq!(Fidelity::new_clamped(f64::NAN), Fidelity::ZERO);
    }

    #[test]
    fn error_round_trip() {
        let f = Fidelity::from_error(1e-4);
        assert!((f.infidelity() - 1e-4).abs() < 1e-15);
    }

    #[test]
    fn polarization_round_trip() {
        for &v in &[0.25, 0.5, 0.75, 0.99, 1.0] {
            let f = Fidelity::new(v).unwrap();
            let back = Fidelity::from_polarization(f.polarization());
            assert!((back.value() - v).abs() < 1e-12);
        }
        // The fully mixed state has zero polarization.
        assert_eq!(Fidelity::QUARTER.polarization(), 0.0);
        assert_eq!(Fidelity::ONE.polarization(), 1.0);
    }

    #[test]
    fn attenuation() {
        let f = Fidelity::ONE.attenuate(0.9).attenuate(0.9);
        assert!((f.value() - 0.81).abs() < 1e-12);
    }

    #[test]
    fn threshold_check() {
        let threshold = Fidelity::from_error(7.5e-5);
        assert!(Fidelity::from_error(1e-5).meets(threshold));
        assert!(!Fidelity::from_error(1e-4).meets(threshold));
        assert!(threshold.meets(threshold));
    }

    #[test]
    fn display_form() {
        assert_eq!(Fidelity::new(0.5).unwrap().to_string(), "0.500000");
        let s = Fidelity::from_error(1e-6).to_string();
        assert!(s.starts_with("1-"), "near-one fidelities print as 1-ε: {s}");
    }

    #[test]
    fn ordering() {
        let mut v = [
            Fidelity::new(0.7).unwrap(),
            Fidelity::new(0.2).unwrap(),
            Fidelity::new(0.9).unwrap(),
        ];
        v.sort_by(Fidelity::total_cmp);
        assert_eq!(v[0].value(), 0.2);
        assert_eq!(v[2].value(), 0.9);
    }
}
