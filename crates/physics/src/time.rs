//! Simulated physical time.
//!
//! All latencies in the paper are given in microseconds (Table 1). We store
//! time as an integer number of **nanoseconds** so that event-driven
//! simulation remains exact and deterministic: `0.2 µs` per ballistic cell is
//! exactly 200 ns, so no floating-point drift can reorder events.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A span of simulated time with nanosecond resolution.
///
/// `Duration` is a thin newtype over `u64` nanoseconds. It forms a monoid
/// under addition ([`Duration::ZERO`] is the identity) and supports scalar
/// multiplication, which is how per-cell and per-hop costs are scaled by
/// distance.
///
/// # Example
///
/// ```
/// use qic_physics::time::Duration;
///
/// let per_cell = Duration::from_us_f64(0.2);
/// assert_eq!(per_cell * 5, Duration::from_micros(1));
/// assert_eq!((per_cell * 5).as_us_f64(), 1.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(u64);

impl Duration {
    /// The zero duration (additive identity).
    pub const ZERO: Duration = Duration(0);

    /// The largest representable duration; used as an "unreachable" sentinel
    /// by schedulers.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Creates a duration from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// Creates a duration from whole microseconds.
    ///
    /// # Panics
    ///
    /// Panics if the value overflows `u64` nanoseconds (≈ 584 years).
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Creates a duration from fractional microseconds, rounding to the
    /// nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    pub fn from_us_f64(us: f64) -> Self {
        assert!(
            us.is_finite() && us >= 0.0,
            "duration must be finite and non-negative"
        );
        Duration((us * 1_000.0).round() as u64)
    }

    /// Number of whole nanoseconds in this duration.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration expressed in (fractional) microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This duration expressed in (fractional) milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction: returns [`Duration::ZERO`] instead of
    /// underflowing.
    #[inline]
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition: clamps at [`Duration::MAX`].
    #[inline]
    pub fn saturating_add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }

    /// Checked scalar multiplication.
    pub fn checked_mul(self, k: u64) -> Option<Duration> {
        self.0.checked_mul(k).map(Duration)
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: Duration) -> Duration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: Duration) -> Duration {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add for Duration {
    type Output = Duration;

    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;

    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;

    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Mul<Duration> for u64 {
    type Output = Duration;

    #[inline]
    fn mul(self, rhs: Duration) -> Duration {
        Duration(self * rhs.0)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;

    #[inline]
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Div<Duration> for Duration {
    type Output = f64;

    /// Dimensionless ratio of two durations.
    fn div(self, rhs: Duration) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, Add::add)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == u64::MAX {
            write!(f, "∞")
        } else if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}µs", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Duration::from_micros(3), Duration::from_nanos(3_000));
        assert_eq!(Duration::from_millis(1), Duration::from_micros(1_000));
        assert_eq!(Duration::from_us_f64(0.2), Duration::from_nanos(200));
    }

    #[test]
    fn arithmetic() {
        let a = Duration::from_micros(10);
        let b = Duration::from_micros(4);
        assert_eq!(a + b, Duration::from_micros(14));
        assert_eq!(a - b, Duration::from_micros(6));
        assert_eq!(a * 3, Duration::from_micros(30));
        assert_eq!(a / 2, Duration::from_micros(5));
        assert!((a / b - 2.5).abs() < 1e-12);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            Duration::ZERO.saturating_sub(Duration::from_nanos(1)),
            Duration::ZERO
        );
        assert_eq!(
            Duration::MAX.saturating_add(Duration::from_nanos(1)),
            Duration::MAX
        );
    }

    #[test]
    fn sum_of_durations() {
        let total: Duration = (1..=4).map(Duration::from_micros).sum();
        assert_eq!(total, Duration::from_micros(10));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(Duration::from_nanos(5).to_string(), "5ns");
        assert_eq!(Duration::from_micros(122).to_string(), "122.000µs");
        assert_eq!(Duration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(Duration::from_millis(2500).to_string(), "2.500s");
        assert_eq!(Duration::MAX.to_string(), "∞");
    }

    #[test]
    fn min_max() {
        let a = Duration::from_micros(1);
        let b = Duration::from_micros(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_f64_panics() {
        let _ = Duration::from_us_f64(-1.0);
    }
}
