//! Architectural constants fixed by the paper.

use crate::fidelity::Fidelity;

/// The fault-tolerance threshold on data-grade EPR-pair error: EPR pairs
/// used to teleport data must have fidelity at least `1 − 7.5e-5`
/// (Section 4.6, citing Svore et al., "Local Fault-Tolerant Quantum
/// Computation").
pub const THRESHOLD_ERROR: f64 = 7.5e-5;

/// [`THRESHOLD_ERROR`] as a [`Fidelity`].
pub fn threshold_fidelity() -> Fidelity {
    Fidelity::from_error(THRESHOLD_ERROR)
}

/// Default spacing between adjacent teleporter (T') nodes, in ballistic
/// cells. Section 4.6 derives ~600 cells as the distance at which
/// teleportation (122 µs) becomes faster than ballistic movement
/// (0.2 µs/cell).
pub const DEFAULT_HOP_CELLS: u64 = 600;

/// Physical qubits per logical qubit for a level-2 Steane code
/// (7² = 49, Section 4.7: "we are transporting 49 physical data qubits").
pub const LEVEL2_STEANE_QUBITS: u32 = 49;

/// Physical qubits per logical qubit for a level-1 Steane code (7). Used by
/// reduced-scale simulation presets.
pub const LEVEL1_STEANE_QUBITS: u32 = 7;

/// Physical qubits per logical qubit for a level-3 Steane code (343,
/// Section 2.2: "not uncommon to see proposals to use 49 or 343 physical
/// qubits").
pub const LEVEL3_STEANE_QUBITS: u32 = 343;

/// Purification tree depth the paper uses in simulation: "we will need a
/// maximum purification tree of depth three (for distances under
/// consideration); consequently, we use Queue Purifiers of depth three"
/// (Section 5.3).
pub const SIM_PURIFY_ROUNDS: u32 = 3;

/// Expected EPR pairs for the longest communication path in the Section 5
/// simulations: `2^3 × 49 = 392` (pairs for endpoint purification × qubits
/// per logical qubit).
pub const PAIRS_PER_LOGICAL_COMM: u32 = (1 << SIM_PURIFY_ROUNDS) * LEVEL2_STEANE_QUBITS;

/// Grid edge of the Section 5 simulations (16×16 logical qubits).
pub const SIM_GRID_EDGE: u32 = 16;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_per_comm_is_392() {
        assert_eq!(PAIRS_PER_LOGICAL_COMM, 392);
    }

    #[test]
    fn threshold_is_stricter_than_gate_errors() {
        // The threshold must be loose enough that purification can reach it
        // under Table 2 noise (gate error 1e-7 ≪ 7.5e-5).
        const { assert!(THRESHOLD_ERROR > 1e-7) };
        assert!(threshold_fidelity().value() > 0.9999);
    }

    #[test]
    fn steane_code_sizes() {
        assert_eq!(LEVEL1_STEANE_QUBITS.pow(2), LEVEL2_STEANE_QUBITS);
        assert_eq!(LEVEL1_STEANE_QUBITS.pow(3), LEVEL3_STEANE_QUBITS);
    }
}
