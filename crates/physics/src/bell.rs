//! Bell-diagonal EPR-pair states.
//!
//! Every EPR pair in the network is described by its diagonal in the Bell
//! basis: a probability vector over the four Bell states. This is exact for
//! the processes the paper models — Pauli noise, twirling, purification and
//! teleportation all map Bell-diagonal states to Bell-diagonal states — and
//! reduces pair dynamics to arithmetic on four real numbers.
//!
//! The coefficient ordering `(a, b, c, d)` follows the DEJMPS paper
//! (Deutsch et al., PRL 77:2818):
//! `a = ⟨Φ⁺|ρ|Φ⁺⟩`, `b = ⟨Ψ⁻|ρ|Ψ⁻⟩`, `c = ⟨Ψ⁺|ρ|Ψ⁺⟩`, `d = ⟨Φ⁻|ρ|Φ⁻⟩`,
//! with `Φ⁺` the reference ("good") state, so the fidelity is `a`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::fidelity::Fidelity;

/// The four Bell states.
///
/// The discriminants match the `(a, b, c, d)` coefficient order of
/// [`BellDiagonal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BellState {
    /// `|Φ⁺⟩ = (|00⟩ + |11⟩)/√2` — the reference state produced by
    /// generators.
    PhiPlus = 0,
    /// `|Ψ⁻⟩ = (|01⟩ − |10⟩)/√2` (the singlet).
    PsiMinus = 1,
    /// `|Ψ⁺⟩ = (|01⟩ + |10⟩)/√2`.
    PsiPlus = 2,
    /// `|Φ⁻⟩ = (|00⟩ − |11⟩)/√2`.
    PhiMinus = 3,
}

impl BellState {
    /// All four states in coefficient order.
    pub const ALL: [BellState; 4] = [
        BellState::PhiPlus,
        BellState::PsiMinus,
        BellState::PsiPlus,
        BellState::PhiMinus,
    ];

    /// The Pauli-frame label `(x, z)` of this Bell state: which bit-flip /
    /// phase-flip error, applied to one half of `|Φ⁺⟩`, produces it.
    ///
    /// `Φ⁺ = I`, `Ψ⁺ = X`, `Φ⁻ = Z`, `Ψ⁻ = Y = XZ` (up to global phase).
    pub fn pauli_label(self) -> (bool, bool) {
        match self {
            BellState::PhiPlus => (false, false),
            BellState::PsiPlus => (true, false),
            BellState::PhiMinus => (false, true),
            BellState::PsiMinus => (true, true),
        }
    }

    /// Inverse of [`BellState::pauli_label`].
    pub fn from_pauli_label(x: bool, z: bool) -> Self {
        match (x, z) {
            (false, false) => BellState::PhiPlus,
            (true, false) => BellState::PsiPlus,
            (false, true) => BellState::PhiMinus,
            (true, true) => BellState::PsiMinus,
        }
    }
}

impl fmt::Display for BellState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BellState::PhiPlus => "Φ+",
            BellState::PsiMinus => "Ψ-",
            BellState::PsiPlus => "Ψ+",
            BellState::PhiMinus => "Φ-",
        };
        f.write_str(s)
    }
}

/// Error raised when Bell-diagonal coefficients are invalid (negative,
/// non-finite, or not summing to one).
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidBellStateError {
    coeffs: [f64; 4],
}

impl InvalidBellStateError {
    /// The rejected coefficient vector.
    pub fn coeffs(&self) -> [f64; 4] {
        self.coeffs
    }
}

impl fmt::Display for InvalidBellStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bell-diagonal coefficients must be non-negative and sum to 1, got {:?}",
            self.coeffs
        )
    }
}

impl std::error::Error for InvalidBellStateError {}

/// Tolerance on the coefficient-sum invariant.
const SUM_TOL: f64 = 1e-9;

/// A Bell-diagonal two-qubit mixed state: a probability distribution over
/// the four Bell states.
///
/// # Example
///
/// ```
/// use qic_physics::bell::{BellDiagonal, BellState};
///
/// // A Werner state of fidelity 0.9 spreads the remaining 0.1 uniformly.
/// let w = BellDiagonal::werner_f64(0.9)?;
/// assert!((w.fidelity().value() - 0.9).abs() < 1e-12);
/// assert!((w.coeff(BellState::PsiPlus) - 0.1 / 3.0).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BellDiagonal {
    /// Coefficients in `(Φ⁺, Ψ⁻, Ψ⁺, Φ⁻)` order.
    coeffs: [f64; 4],
}

impl BellDiagonal {
    /// The perfect pair `|Φ⁺⟩⟨Φ⁺|`.
    pub fn perfect() -> Self {
        BellDiagonal {
            coeffs: [1.0, 0.0, 0.0, 0.0],
        }
    }

    /// The maximally mixed two-qubit state `I/4`.
    pub fn maximally_mixed() -> Self {
        BellDiagonal { coeffs: [0.25; 4] }
    }

    /// Creates a state from explicit coefficients in `(Φ⁺, Ψ⁻, Ψ⁺, Φ⁻)`
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidBellStateError`] if any coefficient is negative or
    /// non-finite, or if they do not sum to 1 within `1e-9`.
    pub fn new(coeffs: [f64; 4]) -> Result<Self, InvalidBellStateError> {
        let ok = coeffs.iter().all(|&c| c.is_finite() && c >= -SUM_TOL)
            && (coeffs.iter().sum::<f64>() - 1.0).abs() <= SUM_TOL;
        if ok {
            let mut c = coeffs;
            for x in &mut c {
                *x = x.max(0.0);
            }
            Ok(BellDiagonal { coeffs: c })
        } else {
            Err(InvalidBellStateError { coeffs })
        }
    }

    /// The Werner state of fidelity `f`: weight `f` on `Φ⁺` and `(1−f)/3`
    /// on each other Bell state.
    pub fn werner(f: Fidelity) -> Self {
        let rest = (1.0 - f.value()) / 3.0;
        BellDiagonal {
            coeffs: [f.value(), rest, rest, rest],
        }
    }

    /// [`BellDiagonal::werner`] from a raw `f64`.
    ///
    /// # Errors
    ///
    /// Returns an error if `f` is not a valid fidelity.
    pub fn werner_f64(f: f64) -> Result<Self, crate::fidelity::InvalidFidelityError> {
        Ok(BellDiagonal::werner(Fidelity::new(f)?))
    }

    /// A "binary" pair that suffered a phase flip with probability `p`
    /// (weight on `Φ⁻`), the dominant error channel for ballistic transport
    /// of EPR halves.
    pub fn phase_flipped(p: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&p));
        BellDiagonal {
            coeffs: [1.0 - p, 0.0, 0.0, p],
        }
    }

    /// The coefficient of a given Bell state.
    pub fn coeff(&self, s: BellState) -> f64 {
        self.coeffs[s as usize]
    }

    /// All four coefficients in `(Φ⁺, Ψ⁻, Ψ⁺, Φ⁻)` order.
    pub fn coeffs(&self) -> [f64; 4] {
        self.coeffs
    }

    /// The fidelity to the reference state `Φ⁺` (the `a` coefficient).
    pub fn fidelity(&self) -> Fidelity {
        Fidelity::new_clamped(self.coeffs[0])
    }

    /// The infidelity `1 − a` — the quantity the paper's figures plot.
    pub fn error(&self) -> f64 {
        1.0 - self.coeffs[0]
    }

    /// Twirls the state into Werner form: fidelity is preserved, the other
    /// three coefficients are averaged. This is the randomisation step of
    /// the BBPSSW protocol ("partially randomizes its state after every
    /// round", Section 4.5).
    pub fn twirl(&self) -> Self {
        BellDiagonal::werner(self.fidelity())
    }

    /// Mixes the state with `I/4`: `ρ → (1−ε)ρ + ε·I/4`. Models isotropic
    /// (depolarizing) noise from imperfect local operations.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `eps` is outside `[0, 1]`.
    pub fn depolarize(&self, eps: f64) -> Self {
        debug_assert!(
            (0.0..=1.0).contains(&eps),
            "depolarization must be a probability"
        );
        let mut out = [0.0; 4];
        for (o, c) in out.iter_mut().zip(self.coeffs) {
            *o = (1.0 - eps) * c + eps * 0.25;
        }
        BellDiagonal { coeffs: out }
    }

    /// Applies an independent Pauli channel to **one half** of the pair:
    /// with probability `px`/`pz`/`py` an X/Z/Y error occurs. Used for
    /// per-cell ballistic-movement noise on EPR halves in transit.
    pub fn apply_pauli_noise(&self, px: f64, py: f64, pz: f64) -> Self {
        let pi = 1.0 - px - py - pz;
        debug_assert!(pi >= -SUM_TOL, "total Pauli error must be ≤ 1");
        let noise = BellDiagonal {
            // (Φ+, Ψ-, Ψ+, Φ-) receive (I, Y, X, Z) weights respectively.
            coeffs: [pi.max(0.0), py, px, pz],
        };
        self.convolve(&noise)
    }

    /// Pauli-frame convolution of two Bell-diagonal states.
    ///
    /// Teleporting one half of a pair `ρ` using a resource pair `σ`
    /// composes their Pauli error frames: the resulting pair is Bell
    /// diagonal with coefficients given by the group convolution over
    /// `Z₂ × Z₂`. This identity is what lets the chained-teleportation
    /// channel of Figure 5 be modelled exactly; Equation 3's
    /// `(4F−1)/3 · (4F'−1)/3` product is its Werner-state shadow (see
    /// [`crate::teleport`]).
    pub fn convolve(&self, other: &BellDiagonal) -> Self {
        let mut out = [0.0; 4];
        for s1 in BellState::ALL {
            let (x1, z1) = s1.pauli_label();
            for s2 in BellState::ALL {
                let (x2, z2) = s2.pauli_label();
                let s = BellState::from_pauli_label(x1 ^ x2, z1 ^ z2);
                out[s as usize] += self.coeff(s1) * other.coeff(s2);
            }
        }
        BellDiagonal { coeffs: out }
    }

    /// Renormalises the coefficients to sum to one. Intended for use after
    /// post-selection (e.g. a purification round), where the caller divides
    /// by the success probability.
    ///
    /// # Panics
    ///
    /// Panics if the coefficient sum is zero or negative.
    pub fn normalized(&self) -> Self {
        let sum: f64 = self.coeffs.iter().sum();
        assert!(sum > 0.0, "cannot normalise a zero state");
        let mut out = self.coeffs;
        for c in &mut out {
            *c /= sum;
        }
        BellDiagonal { coeffs: out }
    }

    /// Element-wise approximate equality.
    pub fn approx_eq(&self, other: &BellDiagonal, tol: f64) -> bool {
        self.coeffs
            .iter()
            .zip(other.coeffs)
            .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Swaps the roles of the two qubits' Pauli frames under a basis change
    /// `b ↔ d` (`Ψ⁻ ↔ Φ⁻`). This is the effect of the DEJMPS pre-rotations
    /// (`Rx(π/2)` on one side, `Rx(−π/2)` on the other).
    pub fn dejmps_rotate(&self) -> Self {
        let [a, b, c, d] = self.coeffs;
        BellDiagonal {
            coeffs: [a, d, c, b],
        }
    }
}

impl Default for BellDiagonal {
    /// The perfect pair.
    fn default() -> Self {
        BellDiagonal::perfect()
    }
}

impl fmt::Display for BellDiagonal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[Φ+:{:.5} Ψ-:{:.5} Ψ+:{:.5} Φ-:{:.5}]",
            self.coeffs[0], self.coeffs[1], self.coeffs[2], self.coeffs[3]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_normalized(s: &BellDiagonal) {
        let sum: f64 = s.coeffs().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "coefficients sum to {sum}");
        assert!(s.coeffs().iter().all(|&c| c >= 0.0));
    }

    #[test]
    fn constructors() {
        assert_eq!(BellDiagonal::perfect().fidelity(), Fidelity::ONE);
        assert_eq!(
            BellDiagonal::maximally_mixed().fidelity(),
            Fidelity::QUARTER
        );
        assert_eq!(BellDiagonal::default(), BellDiagonal::perfect());
        let w = BellDiagonal::werner_f64(0.7).unwrap();
        assert_normalized(&w);
        assert!((w.coeff(BellState::PhiMinus) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn new_validates() {
        assert!(BellDiagonal::new([0.5, 0.5, 0.0, 0.0]).is_ok());
        assert!(BellDiagonal::new([0.5, 0.6, 0.0, 0.0]).is_err());
        assert!(BellDiagonal::new([1.5, -0.5, 0.0, 0.0]).is_err());
        let err = BellDiagonal::new([f64::NAN, 0.0, 0.0, 0.0]).unwrap_err();
        assert!(err.to_string().contains("sum to 1"));
        assert!(err.coeffs()[0].is_nan());
    }

    #[test]
    fn pauli_labels_round_trip() {
        for s in BellState::ALL {
            let (x, z) = s.pauli_label();
            assert_eq!(BellState::from_pauli_label(x, z), s);
        }
    }

    #[test]
    fn twirl_preserves_fidelity() {
        let s = BellDiagonal::new([0.8, 0.15, 0.03, 0.02]).unwrap();
        let t = s.twirl();
        assert_eq!(t.fidelity(), s.fidelity());
        let rest = t.coeff(BellState::PsiMinus);
        assert!((t.coeff(BellState::PsiPlus) - rest).abs() < 1e-12);
        assert!((t.coeff(BellState::PhiMinus) - rest).abs() < 1e-12);
    }

    #[test]
    fn depolarize_moves_toward_mixed() {
        let s = BellDiagonal::perfect().depolarize(0.1);
        assert_normalized(&s);
        assert!((s.fidelity().value() - (0.9 + 0.025)).abs() < 1e-12);
        let full = BellDiagonal::perfect().depolarize(1.0);
        assert!(full.approx_eq(&BellDiagonal::maximally_mixed(), 1e-12));
    }

    #[test]
    fn convolve_identity() {
        let s = BellDiagonal::new([0.7, 0.1, 0.15, 0.05]).unwrap();
        let id = BellDiagonal::perfect();
        assert!(s.convolve(&id).approx_eq(&s, 1e-12));
        assert!(id.convolve(&s).approx_eq(&s, 1e-12));
    }

    #[test]
    fn convolve_is_commutative_and_normalized() {
        let s = BellDiagonal::new([0.7, 0.1, 0.15, 0.05]).unwrap();
        let t = BellDiagonal::new([0.9, 0.02, 0.05, 0.03]).unwrap();
        let st = s.convolve(&t);
        let ts = t.convolve(&s);
        assert!(st.approx_eq(&ts, 1e-12));
        assert_normalized(&st);
    }

    #[test]
    fn convolve_werner_multiplies_polarization() {
        // For Werner states, convolution multiplies (4F−1)/3 — the algebra
        // behind Equation 3.
        let f1 = Fidelity::new(0.95).unwrap();
        let f2 = Fidelity::new(0.9).unwrap();
        let w = BellDiagonal::werner(f1).convolve(&BellDiagonal::werner(f2));
        let expected = Fidelity::from_polarization(f1.polarization() * f2.polarization());
        assert!((w.fidelity().value() - expected.value()).abs() < 1e-12);
    }

    #[test]
    fn pauli_noise_on_one_half() {
        // A pure phase flip (Z) maps Φ+ to Φ-.
        let s = BellDiagonal::perfect().apply_pauli_noise(0.0, 0.0, 1.0);
        assert!((s.coeff(BellState::PhiMinus) - 1.0).abs() < 1e-12);
        // An X flip maps Φ+ to Ψ+.
        let s = BellDiagonal::perfect().apply_pauli_noise(1.0, 0.0, 0.0);
        assert!((s.coeff(BellState::PsiPlus) - 1.0).abs() < 1e-12);
        // A Y flip maps Φ+ to Ψ-.
        let s = BellDiagonal::perfect().apply_pauli_noise(0.0, 1.0, 0.0);
        assert!((s.coeff(BellState::PsiMinus) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dejmps_rotation_swaps_b_d() {
        let s = BellDiagonal::new([0.7, 0.1, 0.15, 0.05]).unwrap();
        let r = s.dejmps_rotate();
        assert_eq!(r.coeff(BellState::PsiMinus), 0.05);
        assert_eq!(r.coeff(BellState::PhiMinus), 0.1);
        assert_eq!(r.coeff(BellState::PhiPlus), 0.7);
        // Involution.
        assert!(r.dejmps_rotate().approx_eq(&s, 1e-15));
    }

    #[test]
    fn normalized_rescales() {
        let s = BellDiagonal {
            coeffs: [0.2, 0.1, 0.1, 0.1],
        };
        let n = s.normalized();
        assert_normalized(&n);
        assert!((n.coeff(BellState::PhiPlus) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_all_components() {
        let s = BellDiagonal::maximally_mixed().to_string();
        for tag in ["Φ+", "Ψ-", "Ψ+", "Φ-"] {
            assert!(s.contains(tag));
        }
    }
}
