//! Exact two-qubit density-matrix simulation.
//!
//! [`PairState`] represents the joint state of one EPR pair as a full 4×4
//! density matrix. It exists to *validate* the Bell-diagonal fast path used
//! everywhere else: tests apply gates and channels at the matrix level and
//! check that [`crate::bell::BellDiagonal`] predicts the same populations.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::bell::{BellDiagonal, BellState};
use crate::complex::C64;
use crate::fidelity::Fidelity;
use crate::gates;
use crate::matrix::{Mat2, Mat4};

/// The state vector of a Bell state in the computational basis
/// `|00⟩,|01⟩,|10⟩,|11⟩`.
pub fn bell_vector(s: BellState) -> [C64; 4] {
    let h = std::f64::consts::FRAC_1_SQRT_2;
    match s {
        BellState::PhiPlus => [C64::real(h), C64::ZERO, C64::ZERO, C64::real(h)],
        BellState::PhiMinus => [C64::real(h), C64::ZERO, C64::ZERO, C64::real(-h)],
        BellState::PsiPlus => [C64::ZERO, C64::real(h), C64::real(h), C64::ZERO],
        BellState::PsiMinus => [C64::ZERO, C64::real(h), C64::real(-h), C64::ZERO],
    }
}

/// Error raised when a matrix is not a valid density matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidDensityError(String);

impl fmt::Display for InvalidDensityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid density matrix: {}", self.0)
    }
}

impl std::error::Error for InvalidDensityError {}

/// A two-qubit mixed state as an explicit density matrix.
///
/// # Example
///
/// ```
/// use qic_physics::bell::BellState;
/// use qic_physics::density::PairState;
/// use qic_physics::gates;
///
/// // A phase flip on one half turns Φ⁺ into Φ⁻.
/// let rho = PairState::pure(BellState::PhiPlus)
///     .apply_to_first(&gates::pauli_z());
/// assert!((rho.bell_overlap(BellState::PhiMinus) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairState {
    rho: Mat4,
}

impl PairState {
    /// A pure Bell state.
    pub fn pure(s: BellState) -> Self {
        PairState {
            rho: Mat4::outer(&bell_vector(s)),
        }
    }

    /// The maximally mixed state `I/4`.
    pub fn maximally_mixed() -> Self {
        PairState {
            rho: Mat4::identity().scale(0.25),
        }
    }

    /// Builds the Bell-diagonal mixture with the given coefficients.
    pub fn from_bell_diagonal(b: &BellDiagonal) -> Self {
        let mut rho = Mat4::default();
        for s in BellState::ALL {
            rho = rho + Mat4::outer(&bell_vector(s)).scale(b.coeff(s));
        }
        PairState { rho }
    }

    /// Wraps an explicit matrix, validating the density-matrix invariants
    /// (Hermitian, unit trace, plausible diagonal).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDensityError`] if the matrix is not Hermitian, does
    /// not have unit trace, or has a negative diagonal entry.
    pub fn from_matrix(rho: Mat4) -> Result<Self, InvalidDensityError> {
        if !rho.is_hermitian(1e-9) {
            return Err(InvalidDensityError("not Hermitian".into()));
        }
        if !rho.trace().approx_eq(C64::ONE, 1e-9) {
            return Err(InvalidDensityError(format!("trace {} ≠ 1", rho.trace())));
        }
        for i in 0..4 {
            if rho[(i, i)].re < -1e-9 {
                return Err(InvalidDensityError(format!("negative population at {i}")));
            }
        }
        Ok(PairState { rho })
    }

    /// The raw density matrix.
    pub fn matrix(&self) -> &Mat4 {
        &self.rho
    }

    /// Evolves under a two-qubit unitary.
    pub fn apply(&self, u: &Mat4) -> Self {
        PairState {
            rho: self.rho.conjugate_by(u),
        }
    }

    /// Applies a single-qubit unitary to the first qubit.
    pub fn apply_to_first(&self, u: &Mat2) -> Self {
        self.apply(&gates::on_first(u))
    }

    /// Applies a single-qubit unitary to the second qubit.
    pub fn apply_to_second(&self, u: &Mat2) -> Self {
        self.apply(&gates::on_second(u))
    }

    /// Applies an asymmetric Pauli channel to the first qubit: X with
    /// probability `px`, Y with `py`, Z with `pz` (identity otherwise).
    pub fn pauli_channel_first(&self, px: f64, py: f64, pz: f64) -> Self {
        let pi = 1.0 - px - py - pz;
        debug_assert!(pi >= -1e-12);
        let mut rho = self.rho.scale(pi.max(0.0));
        rho = rho + self.apply_to_first(&gates::pauli_x()).rho.scale(px);
        rho = rho + self.apply_to_first(&gates::pauli_y()).rho.scale(py);
        rho = rho + self.apply_to_first(&gates::pauli_z()).rho.scale(pz);
        PairState { rho }
    }

    /// Two-qubit depolarizing channel: `ρ → (1−ε)ρ + ε·I/4`.
    pub fn depolarize(&self, eps: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&eps));
        PairState {
            rho: self.rho.scale(1.0 - eps) + Mat4::identity().scale(eps * 0.25),
        }
    }

    /// The overlap `⟨s|ρ|s⟩` with a Bell state.
    pub fn bell_overlap(&self, s: BellState) -> f64 {
        let v = bell_vector(s);
        let mut acc = C64::ZERO;
        for r in 0..4 {
            for c in 0..4 {
                acc += v[r].conj() * self.rho[(r, c)] * v[c];
            }
        }
        acc.re
    }

    /// Fidelity to the reference state `Φ⁺`.
    pub fn fidelity(&self) -> Fidelity {
        Fidelity::new_clamped(self.bell_overlap(BellState::PhiPlus))
    }

    /// Projects onto the Bell-basis diagonal (full twirl): the
    /// [`BellDiagonal`] whose coefficients are this state's Bell-state
    /// populations. For states that are already Bell diagonal this is
    /// lossless.
    pub fn bell_diagonal(&self) -> BellDiagonal {
        let coeffs = [
            self.bell_overlap(BellState::PhiPlus),
            self.bell_overlap(BellState::PsiMinus),
            self.bell_overlap(BellState::PsiPlus),
            self.bell_overlap(BellState::PhiMinus),
        ];
        // Populations of a valid density matrix sum to ≤ 1 over an
        // orthonormal basis; clamp tiny negatives from rounding.
        let sum: f64 = coeffs.iter().sum();
        BellDiagonal::new(coeffs.map(|c| c / sum)).expect("populations form a distribution")
    }

    /// Whether the state is (numerically) Bell diagonal: its off-diagonal
    /// elements in the Bell basis vanish.
    pub fn is_bell_diagonal(&self, tol: f64) -> bool {
        for s1 in BellState::ALL {
            for s2 in BellState::ALL {
                if s1 == s2 {
                    continue;
                }
                let v1 = bell_vector(s1);
                let v2 = bell_vector(s2);
                let mut acc = C64::ZERO;
                for (r, a) in v1.iter().enumerate() {
                    for (c, b) in v2.iter().enumerate() {
                        acc += a.conj() * self.rho[(r, c)] * *b;
                    }
                }
                if acc.norm() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Measures the **second** qubit in the computational basis. Returns
    /// `(p0, post0, p1, post1)`: the probability of each outcome and the
    /// normalised post-measurement states (arbitrary when the probability
    /// is zero).
    pub fn measure_second(&self) -> (f64, PairState, f64, PairState) {
        let mut p0m = Mat4::default();
        let mut p1m = Mat4::default();
        for r in 0..4 {
            for c in 0..4 {
                // Second-qubit value is the low bit of the basis index.
                if r % 2 == 0 && c % 2 == 0 {
                    p0m.0[r][c] = self.rho[(r, c)];
                }
                if r % 2 == 1 && c % 2 == 1 {
                    p1m.0[r][c] = self.rho[(r, c)];
                }
            }
        }
        let p0 = p0m.trace().re;
        let p1 = p1m.trace().re;
        let post0 = if p0 > 1e-15 {
            p0m.scale(1.0 / p0)
        } else {
            Mat4::identity().scale(0.25)
        };
        let post1 = if p1 > 1e-15 {
            p1m.scale(1.0 / p1)
        } else {
            Mat4::identity().scale(0.25)
        };
        (p0, PairState { rho: post0 }, p1, PairState { rho: post1 })
    }
}

impl Default for PairState {
    /// The perfect pair `|Φ⁺⟩⟨Φ⁺|`.
    fn default() -> Self {
        PairState::pure(BellState::PhiPlus)
    }
}

impl fmt::Display for PairState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PairState({})", self.bell_diagonal())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bell_vectors_are_orthonormal() {
        for s1 in BellState::ALL {
            for s2 in BellState::ALL {
                let v1 = bell_vector(s1);
                let v2 = bell_vector(s2);
                let dot: C64 = (0..4).map(|i| v1[i].conj() * v2[i]).sum();
                let expect = if s1 == s2 { 1.0 } else { 0.0 };
                assert!(
                    dot.approx_eq(C64::real(expect), 1e-12),
                    "⟨{s1}|{s2}⟩ = {dot}"
                );
            }
        }
    }

    #[test]
    fn pure_states_have_unit_fidelity_to_themselves() {
        for s in BellState::ALL {
            let rho = PairState::pure(s);
            assert!((rho.bell_overlap(s) - 1.0).abs() < 1e-12);
            assert!(rho.is_bell_diagonal(1e-12));
        }
    }

    #[test]
    fn pauli_frame_labels_match_gates() {
        // Applying the labelled Pauli to the first half of Φ⁺ produces the
        // labelled Bell state — the identity BellState::pauli_label encodes.
        let phi = PairState::pure(BellState::PhiPlus);
        assert!(
            (phi.apply_to_first(&gates::pauli_x())
                .bell_overlap(BellState::PsiPlus)
                - 1.0)
                .abs()
                < 1e-12
        );
        assert!(
            (phi.apply_to_first(&gates::pauli_z())
                .bell_overlap(BellState::PhiMinus)
                - 1.0)
                .abs()
                < 1e-12
        );
        assert!(
            (phi.apply_to_first(&gates::pauli_y())
                .bell_overlap(BellState::PsiMinus)
                - 1.0)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn bell_diagonal_round_trip() {
        let b = BellDiagonal::new([0.7, 0.1, 0.15, 0.05]).unwrap();
        let rho = PairState::from_bell_diagonal(&b);
        assert!(rho.is_bell_diagonal(1e-12));
        assert!(rho.bell_diagonal().approx_eq(&b, 1e-12));
        assert!((rho.fidelity().value() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn from_matrix_validates() {
        assert!(PairState::from_matrix(Mat4::identity().scale(0.25)).is_ok());
        assert!(PairState::from_matrix(Mat4::identity()).is_err(), "trace 4");
        let mut skew = Mat4::identity().scale(0.25);
        skew.0[0][1] = C64::I;
        assert!(PairState::from_matrix(skew).is_err(), "not Hermitian");
    }

    #[test]
    fn pauli_channel_matches_bell_diagonal_model() {
        let b = BellDiagonal::new([0.85, 0.05, 0.06, 0.04]).unwrap();
        let (px, py, pz) = (0.01, 0.002, 0.03);
        let exact = PairState::from_bell_diagonal(&b)
            .pauli_channel_first(px, py, pz)
            .bell_diagonal();
        let fast = b.apply_pauli_noise(px, py, pz);
        assert!(
            exact.approx_eq(&fast, 1e-12),
            "matrix {exact} vs fast {fast}"
        );
    }

    #[test]
    fn depolarize_matches_bell_diagonal_model() {
        let b = BellDiagonal::new([0.9, 0.04, 0.03, 0.03]).unwrap();
        let exact = PairState::from_bell_diagonal(&b)
            .depolarize(0.2)
            .bell_diagonal();
        let fast = b.depolarize(0.2);
        assert!(exact.approx_eq(&fast, 1e-12));
    }

    #[test]
    fn measurement_probabilities_sum_to_one() {
        let rho = PairState::from_bell_diagonal(&BellDiagonal::new([0.6, 0.2, 0.1, 0.1]).unwrap());
        let (p0, post0, p1, post1) = rho.measure_second();
        assert!((p0 + p1 - 1.0).abs() < 1e-12);
        assert!(post0.matrix().trace().approx_eq(C64::ONE, 1e-9));
        assert!(post1.matrix().trace().approx_eq(C64::ONE, 1e-9));
    }

    #[test]
    fn measuring_phi_plus_second_qubit_is_unbiased() {
        let (p0, _, p1, _) = PairState::pure(BellState::PhiPlus).measure_second();
        assert!((p0 - 0.5).abs() < 1e-12);
        assert!((p1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cnot_on_bell_state() {
        // CNOT maps Φ⁺ to (|00⟩+|10⟩)/√2 = |+⟩|0⟩: measuring the second
        // qubit then yields 0 with certainty.
        let rho = PairState::pure(BellState::PhiPlus).apply(&gates::cnot());
        let (p0, _, p1, _) = rho.measure_second();
        assert!((p0 - 1.0).abs() < 1e-12);
        assert!(p1.abs() < 1e-12);
    }
}
