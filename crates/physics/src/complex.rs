//! A minimal complex-number type for the exact two-qubit simulator.
//!
//! The workspace deliberately avoids pulling a numerics crate for the sake
//! of one 4×4 density-matrix validator; this module implements exactly the
//! operations [`crate::matrix`] and [`crate::density`] need.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

use serde::{Deserialize, Serialize};

/// A complex number with `f64` components.
///
/// # Example
///
/// ```
/// use qic_physics::complex::C64;
///
/// let i = C64::I;
/// assert_eq!(i * i, -C64::ONE);
/// assert_eq!(C64::new(3.0, 4.0).norm(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };

    /// The multiplicative identity.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };

    /// The imaginary unit.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a purely real complex number.
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// `e^{iθ}` — a unit phase.
    pub fn cis(theta: f64) -> Self {
        C64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        C64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Whether both components are within `tol` of another value's.
    pub fn approx_eq(self, other: C64, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl Add for C64 {
    type Output = C64;

    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for C64 {
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for C64 {
    type Output = C64;

    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Neg for C64 {
    type Output = C64;

    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Mul for C64 {
    type Output = C64;

    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for C64 {
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for C64 {
    type Output = C64;

    fn mul(self, rhs: f64) -> C64 {
        C64::new(self.re * rhs, self.im * rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;

    fn mul(self, rhs: C64) -> C64 {
        rhs * self
    }
}

impl Div<f64> for C64 {
    type Output = C64;

    fn div(self, rhs: f64) -> C64 {
        C64::new(self.re / rhs, self.im / rhs)
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, Add::add)
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> C64 {
        C64::real(re)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.4}+{:.4}i", self.re, self.im)
        } else {
            write!(f, "{:.4}-{:.4}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_spot_checks() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(-0.5, 3.0);
        assert_eq!(a + b, b + a);
        assert_eq!(a * b, b * a);
        assert_eq!(a + C64::ZERO, a);
        assert_eq!(a * C64::ONE, a);
        assert_eq!(a - a, C64::ZERO);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(C64::I * C64::I, -C64::ONE);
    }

    #[test]
    fn conjugate_and_norm() {
        let z = C64::new(3.0, -4.0);
        assert_eq!(z.conj(), C64::new(3.0, 4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.norm(), 5.0);
        assert!((z * z.conj()).approx_eq(C64::real(25.0), 1e-12));
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..8 {
            let z = C64::cis(k as f64 * std::f64::consts::FRAC_PI_4);
            assert!((z.norm() - 1.0).abs() < 1e-12);
        }
        assert!(C64::cis(std::f64::consts::PI).approx_eq(-C64::ONE, 1e-12));
    }

    #[test]
    fn scalar_ops() {
        let z = C64::new(2.0, -6.0);
        assert_eq!(z * 0.5, C64::new(1.0, -3.0));
        assert_eq!(0.5 * z, z * 0.5);
        assert_eq!(z / 2.0, C64::new(1.0, -3.0));
    }

    #[test]
    fn sum_over_iterator() {
        let total: C64 = (0..4).map(|k| C64::new(k as f64, 1.0)).sum();
        assert_eq!(total, C64::new(6.0, 4.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(C64::new(1.0, 1.0).to_string(), "1.0000+1.0000i");
        assert_eq!(C64::new(1.0, -1.0).to_string(), "1.0000-1.0000i");
    }
}
