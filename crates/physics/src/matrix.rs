//! Small dense complex matrices (2×2 and 4×4) for the exact two-qubit
//! simulator.
//!
//! These are fixed-size, stack-allocated and specialised to the needs of
//! [`crate::density`]: products, adjoints, Kronecker products, traces and
//! Hermiticity/unitarity checks.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::complex::C64;

/// A 2×2 complex matrix (a single-qubit operator).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Mat2(pub [[C64; 2]; 2]);

impl Mat2 {
    /// The 2×2 identity.
    pub fn identity() -> Self {
        let mut m = Mat2::default();
        m.0[0][0] = C64::ONE;
        m.0[1][1] = C64::ONE;
        m
    }

    /// Builds a matrix from rows.
    pub const fn from_rows(rows: [[C64; 2]; 2]) -> Self {
        Mat2(rows)
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> Mat2 {
        let mut out = Mat2::default();
        for r in 0..2 {
            for c in 0..2 {
                out.0[r][c] = self.0[c][r].conj();
            }
        }
        out
    }

    /// Whether `U·U† = I` within tolerance `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        (*self * self.adjoint()).approx_eq(&Mat2::identity(), tol)
    }

    /// Element-wise approximate equality.
    pub fn approx_eq(&self, other: &Mat2, tol: f64) -> bool {
        for r in 0..2 {
            for c in 0..2 {
                if !self.0[r][c].approx_eq(other.0[r][c], tol) {
                    return false;
                }
            }
        }
        true
    }

    /// Kronecker product `self ⊗ rhs`, producing the 4×4 operator that
    /// applies `self` to the first qubit and `rhs` to the second.
    pub fn kron(&self, rhs: &Mat2) -> Mat4 {
        let mut out = Mat4::default();
        for r1 in 0..2 {
            for c1 in 0..2 {
                for r2 in 0..2 {
                    for c2 in 0..2 {
                        out.0[2 * r1 + r2][2 * c1 + c2] = self.0[r1][c1] * rhs.0[r2][c2];
                    }
                }
            }
        }
        out
    }
}

impl Mul for Mat2 {
    type Output = Mat2;

    fn mul(self, rhs: Mat2) -> Mat2 {
        let mut out = Mat2::default();
        for r in 0..2 {
            for c in 0..2 {
                let mut acc = C64::ZERO;
                for k in 0..2 {
                    acc += self.0[r][k] * rhs.0[k][c];
                }
                out.0[r][c] = acc;
            }
        }
        out
    }
}

/// A 4×4 complex matrix (a two-qubit operator or density matrix).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Mat4(pub [[C64; 4]; 4]);

impl Mat4 {
    /// The 4×4 identity.
    pub fn identity() -> Self {
        let mut m = Mat4::default();
        for i in 0..4 {
            m.0[i][i] = C64::ONE;
        }
        m
    }

    /// Builds a matrix from rows.
    pub const fn from_rows(rows: [[C64; 4]; 4]) -> Self {
        Mat4(rows)
    }

    /// The outer product `|v⟩⟨v|` of a 4-vector — a rank-1 projector when
    /// `v` is normalised.
    pub fn outer(v: &[C64; 4]) -> Mat4 {
        let mut out = Mat4::default();
        for r in 0..4 {
            for c in 0..4 {
                out.0[r][c] = v[r] * v[c].conj();
            }
        }
        out
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> Mat4 {
        let mut out = Mat4::default();
        for r in 0..4 {
            for c in 0..4 {
                out.0[r][c] = self.0[c][r].conj();
            }
        }
        out
    }

    /// Matrix trace.
    pub fn trace(&self) -> C64 {
        (0..4).map(|i| self.0[i][i]).sum()
    }

    /// Scales every element by a real factor.
    pub fn scale(&self, k: f64) -> Mat4 {
        let mut out = *self;
        for r in 0..4 {
            for c in 0..4 {
                out.0[r][c] = out.0[r][c] * k;
            }
        }
        out
    }

    /// The conjugation `U · self · U†` — how a density matrix evolves under
    /// a unitary `U`.
    pub fn conjugate_by(&self, u: &Mat4) -> Mat4 {
        *u * *self * u.adjoint()
    }

    /// Whether `U·U† = I` within tolerance `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        (*self * self.adjoint()).approx_eq(&Mat4::identity(), tol)
    }

    /// Whether the matrix is Hermitian within tolerance `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.approx_eq(&self.adjoint(), tol)
    }

    /// Element-wise approximate equality.
    pub fn approx_eq(&self, other: &Mat4, tol: f64) -> bool {
        for r in 0..4 {
            for c in 0..4 {
                if !self.0[r][c].approx_eq(other.0[r][c], tol) {
                    return false;
                }
            }
        }
        true
    }
}

impl Add for Mat4 {
    type Output = Mat4;

    fn add(self, rhs: Mat4) -> Mat4 {
        let mut out = Mat4::default();
        for r in 0..4 {
            for c in 0..4 {
                out.0[r][c] = self.0[r][c] + rhs.0[r][c];
            }
        }
        out
    }
}

impl Sub for Mat4 {
    type Output = Mat4;

    fn sub(self, rhs: Mat4) -> Mat4 {
        let mut out = Mat4::default();
        for r in 0..4 {
            for c in 0..4 {
                out.0[r][c] = self.0[r][c] - rhs.0[r][c];
            }
        }
        out
    }
}

impl Mul for Mat4 {
    type Output = Mat4;

    fn mul(self, rhs: Mat4) -> Mat4 {
        let mut out = Mat4::default();
        for r in 0..4 {
            for c in 0..4 {
                let mut acc = C64::ZERO;
                for k in 0..4 {
                    acc += self.0[r][k] * rhs.0[k][c];
                }
                out.0[r][c] = acc;
            }
        }
        out
    }
}

impl Index<(usize, usize)> for Mat4 {
    type Output = C64;

    fn index(&self, (r, c): (usize, usize)) -> &C64 {
        &self.0[r][c]
    }
}

impl IndexMut<(usize, usize)> for Mat4 {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut C64 {
        &mut self.0[r][c]
    }
}

impl fmt::Display for Mat4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..4 {
            for c in 0..4 {
                write!(f, "{}{}", self.0[r][c], if c == 3 { "\n" } else { "  " })?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;

    #[test]
    fn identity_is_unit() {
        let i2 = Mat2::identity();
        assert!(i2.is_unitary(1e-12));
        let i4 = Mat4::identity();
        assert_eq!(i4.trace(), C64::real(4.0));
        assert!(i4.is_unitary(1e-12));
        assert!(i4.is_hermitian(1e-12));
    }

    #[test]
    fn kron_of_identities_is_identity() {
        let k = Mat2::identity().kron(&Mat2::identity());
        assert!(k.approx_eq(&Mat4::identity(), 1e-12));
    }

    #[test]
    fn kron_respects_products() {
        // (A⊗B)(C⊗D) = (AC)⊗(BD)
        let a = gates::pauli_x();
        let b = gates::hadamard();
        let c = gates::pauli_z();
        let d = gates::pauli_y();
        let lhs = a.kron(&b) * c.kron(&d);
        let rhs = (a * c).kron(&(b * d));
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn outer_product_is_projector() {
        let v = [
            C64::real(1.0 / 2f64.sqrt()),
            C64::ZERO,
            C64::ZERO,
            C64::real(1.0 / 2f64.sqrt()),
        ];
        let p = Mat4::outer(&v);
        assert!((p * p).approx_eq(&p, 1e-12), "projector must be idempotent");
        assert!(p.is_hermitian(1e-12));
        assert!(p.trace().approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn conjugation_preserves_trace() {
        let rho = Mat4::outer(&[C64::ONE, C64::ZERO, C64::ZERO, C64::ZERO]);
        let u = gates::cnot();
        let evolved = rho.conjugate_by(&u);
        assert!(evolved.trace().approx_eq(rho.trace(), 1e-12));
        assert!(evolved.is_hermitian(1e-12));
    }

    #[test]
    fn indexing() {
        let mut m = Mat4::identity();
        m[(2, 3)] = C64::I;
        assert_eq!(m[(2, 3)], C64::I);
        assert_eq!(m[(0, 0)], C64::ONE);
    }
}
