//! Ion-trap physics substrate for the `qic` quantum-interconnect simulator.
//!
//! This crate implements the physical models of *Isailovic, Patel, Whitney,
//! Kubiatowicz, "Interconnection Networks for Scalable Quantum Computers",
//! ISCA 2006* (Section 4 and Tables 1–2):
//!
//! * [`optime::OpTimes`] — the operation time constants of Table 1,
//! * [`error::ErrorRates`] — the operation error probabilities of Table 2,
//! * [`fidelity::Fidelity`] — the fidelity measure of Section 4.1,
//! * [`bell::BellDiagonal`] — Bell-diagonal EPR-pair states (the state space
//!   on which purification and teleportation act),
//! * [`density`] — an exact two-qubit density-matrix simulator used to
//!   validate the Bell-diagonal fast path,
//! * [`transport`] — the ballistic-movement model (Equations 1–2),
//! * [`teleport`] — the teleportation and EPR-generation models
//!   (Equations 3–5).
//!
//! # Example
//!
//! Compute the fidelity of a qubit after one teleportation that uses an EPR
//! pair degraded by 300 cells of ballistic movement:
//!
//! ```
//! use qic_physics::prelude::*;
//!
//! let times = OpTimes::ion_trap();
//! let rates = ErrorRates::ion_trap();
//! let epr = transport::ballistic_fidelity(Fidelity::ONE, 300, &rates);
//! let data = teleport::teleport_fidelity(Fidelity::ONE, epr, &rates);
//! assert!(data.infidelity() > 1e-4 && data.infidelity() < 1e-3);
//! assert_eq!(teleport::teleport_time(0, &times), times.teleport_local());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bell;
pub mod complex;
pub mod constants;
pub mod density;
pub mod error;
pub mod fidelity;
pub mod gates;
pub mod matrix;
pub mod optime;
pub mod teleport;
pub mod time;
pub mod transport;

/// Convenient glob-import surface: `use qic_physics::prelude::*;`.
pub mod prelude {
    pub use crate::bell::{BellDiagonal, BellState};
    pub use crate::constants;
    pub use crate::error::ErrorRates;
    pub use crate::fidelity::Fidelity;
    pub use crate::optime::OpTimes;
    pub use crate::teleport;
    pub use crate::time::Duration;
    pub use crate::transport;
}

pub use bell::{BellDiagonal, BellState};
pub use error::ErrorRates;
pub use fidelity::Fidelity;
pub use optime::OpTimes;
pub use time::Duration;
