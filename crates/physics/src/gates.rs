//! Standard one- and two-qubit gates as explicit matrices.
//!
//! These feed the exact density-matrix simulator in [`crate::density`];
//! the event-driven network simulator never multiplies matrices — it uses
//! the Bell-diagonal fast path validated against these.

use std::f64::consts::FRAC_1_SQRT_2;

use crate::complex::C64;
use crate::matrix::{Mat2, Mat4};

/// The single-qubit identity.
pub fn identity2() -> Mat2 {
    Mat2::identity()
}

/// Pauli X (bit flip).
pub fn pauli_x() -> Mat2 {
    Mat2::from_rows([[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]])
}

/// Pauli Y.
pub fn pauli_y() -> Mat2 {
    Mat2::from_rows([
        [C64::ZERO, C64::new(0.0, -1.0)],
        [C64::new(0.0, 1.0), C64::ZERO],
    ])
}

/// Pauli Z (phase flip).
pub fn pauli_z() -> Mat2 {
    Mat2::from_rows([[C64::ONE, C64::ZERO], [C64::ZERO, C64::new(-1.0, 0.0)]])
}

/// Hadamard gate.
pub fn hadamard() -> Mat2 {
    Mat2::from_rows([
        [C64::real(FRAC_1_SQRT_2), C64::real(FRAC_1_SQRT_2)],
        [C64::real(FRAC_1_SQRT_2), C64::real(-FRAC_1_SQRT_2)],
    ])
}

/// Phase gate `diag(1, e^{iθ})`; `phase(π/2)` is S, `phase(π/4)` is T.
pub fn phase(theta: f64) -> Mat2 {
    Mat2::from_rows([[C64::ONE, C64::ZERO], [C64::ZERO, C64::cis(theta)]])
}

/// `R_x(θ) = e^{-iθX/2}` — the σx rotation; DEJMPS uses ±π/2 instances.
pub fn rx(theta: f64) -> Mat2 {
    let c = C64::real((theta / 2.0).cos());
    let s = C64::new(0.0, -(theta / 2.0).sin());
    Mat2::from_rows([[c, s], [s, c]])
}

/// CNOT with qubit 0 as control and qubit 1 as target (basis order
/// `|00⟩,|01⟩,|10⟩,|11⟩`).
pub fn cnot() -> Mat4 {
    let mut m = Mat4::default();
    m.0[0][0] = C64::ONE;
    m.0[1][1] = C64::ONE;
    m.0[2][3] = C64::ONE;
    m.0[3][2] = C64::ONE;
    m
}

/// Controlled-Z (symmetric in its operands).
pub fn cz() -> Mat4 {
    let mut m = Mat4::identity();
    m.0[3][3] = C64::new(-1.0, 0.0);
    m
}

/// Controlled phase `diag(1,1,1,e^{iθ})` — the gate family the Quantum
/// Fourier Transform is built from (`θ = 2π/2^k`).
pub fn controlled_phase(theta: f64) -> Mat4 {
    let mut m = Mat4::identity();
    m.0[3][3] = C64::cis(theta);
    m
}

/// SWAP gate.
pub fn swap() -> Mat4 {
    let mut m = Mat4::default();
    m.0[0][0] = C64::ONE;
    m.0[1][2] = C64::ONE;
    m.0[2][1] = C64::ONE;
    m.0[3][3] = C64::ONE;
    m
}

/// Applies `u` to the first qubit of a two-qubit system: `u ⊗ I`.
pub fn on_first(u: &Mat2) -> Mat4 {
    u.kron(&Mat2::identity())
}

/// Applies `u` to the second qubit of a two-qubit system: `I ⊗ u`.
pub fn on_second(u: &Mat2) -> Mat4 {
    Mat2::identity().kron(u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Mat4;

    #[test]
    fn paulis_are_unitary_and_hermitian() {
        for g in [pauli_x(), pauli_y(), pauli_z(), hadamard()] {
            assert!(g.is_unitary(1e-12));
            assert!(
                g.approx_eq(&g.adjoint(), 1e-12),
                "involutive gates are Hermitian"
            );
        }
    }

    #[test]
    fn pauli_algebra() {
        // XY = iZ
        let xy = pauli_x() * pauli_y();
        let mut iz = pauli_z();
        for r in 0..2 {
            for c in 0..2 {
                iz.0[r][c] *= C64::I;
            }
        }
        assert!(xy.approx_eq(&iz, 1e-12));
        // H X H = Z
        let hxh = hadamard() * pauli_x() * hadamard();
        assert!(hxh.approx_eq(&pauli_z(), 1e-12));
    }

    #[test]
    fn two_qubit_gates_are_unitary() {
        for g in [cnot(), cz(), swap(), controlled_phase(0.7)] {
            assert!(g.is_unitary(1e-12));
        }
    }

    #[test]
    fn cnot_truth_table() {
        let u = cnot();
        // |10> -> |11>
        assert_eq!(u.0[3][2], C64::ONE);
        // |11> -> |10>
        assert_eq!(u.0[2][3], C64::ONE);
        // |00>, |01> fixed
        assert_eq!(u.0[0][0], C64::ONE);
        assert_eq!(u.0[1][1], C64::ONE);
    }

    #[test]
    fn cz_commutes_with_swap() {
        let lhs = swap() * cz() * swap();
        assert!(lhs.approx_eq(&cz(), 1e-12));
    }

    #[test]
    fn rx_composes() {
        // Rx(π/2)·Rx(-π/2) = I (the DEJMPS pre-rotations cancel).
        let id = rx(std::f64::consts::FRAC_PI_2) * rx(-std::f64::consts::FRAC_PI_2);
        assert!(id.approx_eq(&Mat2::identity(), 1e-12));
        // Rx(π) ∝ X (up to global phase -i).
        let r = rx(std::f64::consts::PI);
        let mut minus_ix = pauli_x();
        for row in 0..2 {
            for c in 0..2 {
                minus_ix.0[row][c] *= C64::new(0.0, -1.0);
            }
        }
        assert!(r.approx_eq(&minus_ix, 1e-12));
    }

    #[test]
    fn controlled_phase_at_pi_is_cz() {
        assert!(controlled_phase(std::f64::consts::PI).approx_eq(&cz(), 1e-12));
    }

    #[test]
    fn lift_helpers_act_on_correct_qubit() {
        let x1 = on_first(&pauli_x());
        let x2 = on_second(&pauli_x());
        assert!(x1.is_unitary(1e-12) && x2.is_unitary(1e-12));
        // X⊗I maps |00⟩ to |10⟩ (index 0 → 2); I⊗X maps |00⟩ to |01⟩.
        assert_eq!(x1.0[2][0], C64::ONE);
        assert_eq!(x2.0[1][0], C64::ONE);
        // They commute.
        let lhs = x1 * x2;
        let rhs = x2 * x1;
        assert!(lhs.approx_eq(&rhs, 1e-12));
        let _: Mat4 = lhs;
    }
}
