//! Teleportation and EPR-generation models — **Section 4.4,
//! Equations 3–5**.
//!
//! Teleporting a qubit of fidelity `F_old` using an EPR pair of fidelity
//! `F_EPR` yields (Equation 3):
//!
//! ```text
//! F_new = 1/4 · (1 + 3·(1−p1q)(1−p2q) · (4(1−pms)² − 1)/3
//!                  · (4F_old − 1)/3 · (4F_EPR − 1)/3)
//! ```
//!
//! The module provides this scalar model, its Bell-diagonal refinement
//! (Pauli-frame convolution plus isotropic gate noise — exact for Werner
//! inputs, strictly more informative otherwise), EPR generation
//! (Equation 4) and teleportation latency (Equation 5).

use crate::bell::BellDiagonal;
use crate::error::ErrorRates;
use crate::fidelity::Fidelity;
use crate::optime::OpTimes;
use crate::time::Duration;

/// The gate/measurement attenuation factor of Equation 3:
/// `(1−p1q)(1−p2q) · (4(1−pms)² − 1)/3`.
pub fn gate_attenuation(rates: &ErrorRates) -> f64 {
    let gates = (1.0 - rates.one_qubit_gate()) * (1.0 - rates.two_qubit_gate());
    let meas = (4.0 * (1.0 - rates.measure()).powi(2) - 1.0) / 3.0;
    gates * meas
}

/// Fidelity after one teleportation (Equation 3).
///
/// # Example
///
/// ```
/// use qic_physics::prelude::*;
///
/// let rates = ErrorRates::noiseless();
/// // With perfect operations and a perfect pair, teleportation is exact.
/// let f = teleport::teleport_fidelity(Fidelity::new(0.9)?, Fidelity::ONE, &rates);
/// assert!((f.value() - 0.9).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn teleport_fidelity(f_old: Fidelity, f_epr: Fidelity, rates: &ErrorRates) -> Fidelity {
    let s = gate_attenuation(rates) * f_old.polarization() * f_epr.polarization();
    Fidelity::new_clamped(0.25 * (1.0 + 3.0 * s))
}

/// Bell-diagonal refinement of Equation 3: the teleported pair's Pauli
/// frame is the convolution of the input frames, attenuated by isotropic
/// gate/measurement noise.
///
/// For Werner-state inputs the fidelity of the result equals
/// [`teleport_fidelity`] exactly (see tests); for structured states it
/// tracks the full error composition that the scalar model collapses.
pub fn teleport_pair(
    moving: &BellDiagonal,
    resource: &BellDiagonal,
    rates: &ErrorRates,
) -> BellDiagonal {
    let eps = 1.0 - gate_attenuation(rates);
    moving.convolve(resource).depolarize(eps.clamp(0.0, 1.0))
}

/// Fidelity of a freshly generated EPR pair (Equation 4:
/// `F_gen ∝ (1−p1q)(1−p2q)·F_zero`).
pub fn generation_fidelity(rates: &ErrorRates, f_zero: Fidelity) -> Fidelity {
    Fidelity::new_clamped(
        (1.0 - rates.one_qubit_gate()) * (1.0 - rates.two_qubit_gate()) * f_zero.value(),
    )
}

/// A freshly generated pair at the Bell-diagonal level: the generation
/// gates' error is spread isotropically.
pub fn generated_pair(rates: &ErrorRates, f_zero: Fidelity) -> BellDiagonal {
    let f = generation_fidelity(rates, f_zero);
    BellDiagonal::werner(f)
}

/// Teleportation latency over a separation of `cells`
/// (Equation 5: `2·t1q + t2q + tms + t_classical·D`).
pub fn teleport_time(cells: u64, times: &OpTimes) -> Duration {
    times.teleport(cells)
}

/// The distance (in cells) beyond which a single teleportation is faster
/// than ballistic movement — "for a distance of about 600 cells,
/// teleportation is faster" (Section 4.6).
///
/// Returns `None` if ballistic movement is faster at every distance (e.g.
/// zero per-cell cost).
pub fn latency_crossover_cells(times: &OpTimes) -> Option<u64> {
    let per_cell_ballistic = times.move_cell().as_nanos();
    let per_cell_teleport = times.classical_per_cell().as_nanos();
    if per_cell_ballistic <= per_cell_teleport {
        return None;
    }
    let fixed = times.teleport_local().as_nanos();
    // Smallest D with fixed + tcl·D < tmv·D.
    Some(fixed / (per_cell_ballistic - per_cell_teleport) + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bell::BellState;

    #[test]
    fn noiseless_teleport_is_identity_on_fidelity() {
        let rates = ErrorRates::noiseless();
        for f in [0.25, 0.5, 0.9, 1.0] {
            let f_old = Fidelity::new(f).unwrap();
            let out = teleport_fidelity(f_old, Fidelity::ONE, &rates);
            assert!((out.value() - f).abs() < 1e-12, "F={f}");
        }
    }

    #[test]
    fn equation3_worked_example() {
        // With Table 2 rates and perfect inputs the residual error is the
        // gate/measurement term: ≈ (3/4)(p1q + p2q + 2·pms·4/3...) ~ 1e-7.
        let rates = ErrorRates::ion_trap();
        let f = teleport_fidelity(Fidelity::ONE, Fidelity::ONE, &rates);
        assert!(f.infidelity() > 0.0);
        assert!(
            f.infidelity() < 3e-7,
            "gate-limited error, got {}",
            f.infidelity()
        );
    }

    #[test]
    fn epr_error_dominates_when_pair_is_degraded() {
        // §4.6: for teleporters 100 cells apart, movement error ~1e-4
        // dwarfs the 1e-7 two-qubit gate error.
        let rates = ErrorRates::ion_trap();
        let epr = Fidelity::from_error(1e-4);
        let f = teleport_fidelity(Fidelity::ONE, epr, &rates);
        assert!(f.infidelity() > 0.9e-4 && f.infidelity() < 1.2e-4);
    }

    #[test]
    fn pair_teleport_matches_scalar_on_werner_inputs() {
        let rates = ErrorRates::ion_trap();
        let f_old = Fidelity::new(0.999).unwrap();
        let f_epr = Fidelity::new(0.9995).unwrap();
        let pair = teleport_pair(
            &BellDiagonal::werner(f_old),
            &BellDiagonal::werner(f_epr),
            &rates,
        );
        let scalar = teleport_fidelity(f_old, f_epr, &rates);
        assert!(
            (pair.fidelity().value() - scalar.value()).abs() < 1e-9,
            "pair {} vs scalar {}",
            pair.fidelity(),
            scalar
        );
    }

    #[test]
    fn pair_teleport_composes_pauli_frames() {
        // Teleporting with a Φ⁻ resource applies a phase flip: the
        // correction operations of Figure 3 would cancel it, and the error
        // tracking must know where it went.
        let rates = ErrorRates::noiseless();
        let moving = BellDiagonal::perfect();
        let resource = BellDiagonal::new([0.0, 0.0, 0.0, 1.0]).unwrap();
        let out = teleport_pair(&moving, &resource, &rates);
        assert!((out.coeff(BellState::PhiMinus) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn generation_fidelity_equation4() {
        let rates = ErrorRates::ion_trap();
        let f = generation_fidelity(&rates, Fidelity::ONE);
        let expected = (1.0 - 1e-8) * (1.0 - 1e-7);
        assert!((f.value() - expected).abs() < 1e-15);
        let pair = generated_pair(&rates, Fidelity::ONE);
        assert!((pair.fidelity().value() - expected).abs() < 1e-15);
    }

    #[test]
    fn teleport_time_equation5() {
        let times = OpTimes::ion_trap();
        assert_eq!(teleport_time(0, &times), Duration::from_micros(122));
        let far = teleport_time(10_000, &times);
        assert_eq!(far, Duration::from_micros(122) + Duration::from_micros(10));
    }

    #[test]
    fn crossover_near_600_cells() {
        let times = OpTimes::ion_trap();
        let d = latency_crossover_cells(&times).expect("ballistic is slower per cell");
        assert!(
            (590..=620).contains(&d),
            "crossover should be ~600 cells (Section 4.6), got {d}"
        );
        // At the crossover, teleport really is faster.
        assert!(teleport_time(d, &times) < times.ballistic(d));
        assert!(teleport_time(d - 2, &times) >= times.ballistic(d - 2));
    }

    #[test]
    fn crossover_none_when_ballistic_is_free() {
        let times = OpTimes::ion_trap().with_move_cell(Duration::ZERO);
        assert_eq!(latency_crossover_cells(&times), None);
    }
}
