//! Ballistic transport model — **Section 4.3, Equations 1–2**.
//!
//! An ion moved ballistically through `D` trap cells decoheres at each hop:
//!
//! > `F_new = F_old · (1 − pmv)^D`      (Equation 1)
//! >
//! > `t_ballistic = tmv · D`            (Equation 2)
//!
//! The same per-cell channel is expressed at the Bell-diagonal level for
//! EPR halves in transit, so the analytical and event-driven layers agree.

use crate::bell::BellDiagonal;
use crate::error::ErrorRates;
use crate::fidelity::Fidelity;
use crate::optime::OpTimes;
use crate::time::Duration;

/// Fidelity after ballistically moving a qubit across `cells` traps
/// (Equation 1).
///
/// # Example
///
/// ```
/// use qic_physics::prelude::*;
///
/// let rates = ErrorRates::ion_trap();
/// // Corner-to-corner on a 1000×1000 grid: error > 1e-3 (Section 1).
/// let f = transport::ballistic_fidelity(Fidelity::ONE, 2000, &rates);
/// assert!(f.infidelity() > 1e-3);
/// ```
pub fn ballistic_fidelity(start: Fidelity, cells: u64, rates: &ErrorRates) -> Fidelity {
    start.attenuate(survival(cells, rates))
}

/// The survival probability `(1 − pmv)^D` of Equation 1.
pub fn survival(cells: u64, rates: &ErrorRates) -> f64 {
    (1.0 - rates.move_cell()).powi(cells.min(i32::MAX as u64) as i32)
}

/// Time to ballistically move a qubit across `cells` traps (Equation 2).
pub fn ballistic_time(cells: u64, times: &OpTimes) -> Duration {
    times.ballistic(cells)
}

/// Moves **one half** of an EPR pair ballistically across `cells` traps,
/// at the Bell-diagonal level.
///
/// Per-cell decoherence is modelled as an isotropic Pauli channel of total
/// strength `pmv` on the moving half (X, Y, Z equally likely), whose
/// fidelity trace matches Equation 1 to first order.
pub fn ballistic_pair(state: &BellDiagonal, cells: u64, rates: &ErrorRates) -> BellDiagonal {
    let p = rates.move_cell();
    let mut out = *state;
    if p == 0.0 || cells == 0 {
        return out;
    }
    // Applying the same channel `cells` times is a convolution power;
    // compute it by exponentiation-by-squaring on the Pauli weights.
    let single = BellDiagonal::perfect().apply_pauli_noise(p / 3.0, p / 3.0, p / 3.0);
    let mut acc = BellDiagonal::perfect();
    let mut base = single;
    let mut n = cells;
    while n > 0 {
        if n & 1 == 1 {
            acc = acc.convolve(&base);
        }
        base = base.convolve(&base);
        n >>= 1;
    }
    out = out.convolve(&acc);
    out
}

/// Both halves of a generated pair move outward from a midpoint generator
/// (Figure 4): each half travels `cells_each`, so the pair convolves two
/// one-half channels.
pub fn distribute_from_midpoint(
    state: &BellDiagonal,
    cells_each: u64,
    rates: &ErrorRates,
) -> BellDiagonal {
    ballistic_pair(&ballistic_pair(state, cells_each, rates), cells_each, rates)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation1_matches_closed_form() {
        let rates = ErrorRates::ion_trap();
        let f = ballistic_fidelity(Fidelity::ONE, 100, &rates);
        let expected = (1.0 - 1e-6f64).powi(100);
        assert!((f.value() - expected).abs() < 1e-15);
    }

    #[test]
    fn one_cell_error_is_pmv() {
        let rates = ErrorRates::ion_trap();
        let f = ballistic_fidelity(Fidelity::ONE, 1, &rates);
        assert!((f.infidelity() - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn section1_grid_example() {
        // "a qubit would experience a probability of error of more than
        // 1e-3 in traveling from corner to corner" of a 1000×1000 grid.
        let rates = ErrorRates::ion_trap();
        let f = ballistic_fidelity(Fidelity::ONE, 1998, &rates);
        assert!(f.infidelity() > 1e-3);
        assert!(f.infidelity() < 3e-3);
    }

    #[test]
    fn equation2_timing() {
        let times = OpTimes::ion_trap();
        assert_eq!(ballistic_time(600, &times), Duration::from_micros(120));
        assert_eq!(ballistic_time(0, &times), Duration::ZERO);
    }

    #[test]
    fn pair_transport_fidelity_tracks_equation1() {
        // The isotropic per-cell channel must reproduce Equation 1's
        // fidelity loss to first order in pmv·D.
        let rates = ErrorRates::ion_trap();
        for cells in [1u64, 10, 100, 600] {
            let pair = ballistic_pair(&BellDiagonal::perfect(), cells, &rates);
            let scalar = ballistic_fidelity(Fidelity::ONE, cells, &rates);
            let drift = (pair.error() - scalar.infidelity()).abs();
            assert!(
                drift < 1e-3 * scalar.infidelity().max(1e-12),
                "cells={cells}: pair error {} vs scalar {}",
                pair.error(),
                scalar.infidelity()
            );
        }
    }

    #[test]
    fn pair_transport_zero_cases() {
        let rates = ErrorRates::ion_trap();
        let s = BellDiagonal::werner_f64(0.9).unwrap();
        assert!(ballistic_pair(&s, 0, &rates).approx_eq(&s, 1e-15));
        let noiseless = ErrorRates::noiseless();
        assert!(ballistic_pair(&s, 1000, &noiseless).approx_eq(&s, 1e-15));
    }

    #[test]
    fn midpoint_distribution_doubles_exposure() {
        let rates = ErrorRates::ion_trap();
        let one_side = ballistic_pair(&BellDiagonal::perfect(), 300, &rates);
        let both = distribute_from_midpoint(&BellDiagonal::perfect(), 300, &rates);
        assert!(both.error() > one_side.error() * 1.9);
        assert!(both.error() < one_side.error() * 2.1);
    }

    #[test]
    fn exponentiation_by_squaring_matches_iteration() {
        let rates = ErrorRates::uniform(1e-3).unwrap();
        let fast = ballistic_pair(&BellDiagonal::perfect(), 13, &rates);
        let mut slow = BellDiagonal::perfect();
        for _ in 0..13 {
            slow = slow.apply_pauli_noise(
                rates.move_cell() / 3.0,
                rates.move_cell() / 3.0,
                rates.move_cell() / 3.0,
            );
        }
        assert!(fast.approx_eq(&slow, 1e-12));
    }
}
