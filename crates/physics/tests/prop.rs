//! Property-based tests for the physics substrate.

use proptest::prelude::*;

use qic_physics::bell::{BellDiagonal, BellState};
use qic_physics::density::PairState;
use qic_physics::error::ErrorRates;
use qic_physics::fidelity::Fidelity;
use qic_physics::teleport;
use qic_physics::time::Duration;

/// Strategy: an arbitrary Bell-diagonal state.
fn bell_diagonal() -> impl Strategy<Value = BellDiagonal> {
    (0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64)
        .prop_filter("non-degenerate", |(a, b, c, d)| a + b + c + d > 1e-6)
        .prop_map(|(a, b, c, d)| {
            let sum = a + b + c + d;
            BellDiagonal::new([a / sum, b / sum, c / sum, d / sum])
                .expect("normalised coefficients are valid")
        })
}

fn is_distribution(s: &BellDiagonal) -> bool {
    let coeffs = s.coeffs();
    coeffs.iter().all(|&c| (0.0..=1.0 + 1e-12).contains(&c))
        && (coeffs.iter().sum::<f64>() - 1.0).abs() < 1e-9
}

proptest! {
    #[test]
    fn convolution_preserves_distribution(a in bell_diagonal(), b in bell_diagonal()) {
        let c = a.convolve(&b);
        prop_assert!(is_distribution(&c));
    }

    #[test]
    fn convolution_commutes(a in bell_diagonal(), b in bell_diagonal()) {
        prop_assert!(a.convolve(&b).approx_eq(&b.convolve(&a), 1e-12));
    }

    #[test]
    fn convolution_associates(
        a in bell_diagonal(),
        b in bell_diagonal(),
        c in bell_diagonal(),
    ) {
        let left = a.convolve(&b).convolve(&c);
        let right = a.convolve(&b.convolve(&c));
        prop_assert!(left.approx_eq(&right, 1e-12));
    }

    #[test]
    fn perfect_state_is_convolution_identity(a in bell_diagonal()) {
        prop_assert!(a.convolve(&BellDiagonal::perfect()).approx_eq(&a, 1e-12));
    }

    #[test]
    fn depolarize_interpolates_to_mixed(a in bell_diagonal(), eps in 0.0..1.0f64) {
        let d = a.depolarize(eps);
        prop_assert!(is_distribution(&d));
        // Fidelity moves toward 1/4 monotonically in eps.
        let towards = 0.25 + (a.fidelity().value() - 0.25) * (1.0 - eps);
        prop_assert!((d.fidelity().value() - towards).abs() < 1e-12);
    }

    #[test]
    fn twirl_preserves_fidelity_exactly(a in bell_diagonal()) {
        prop_assert!((a.twirl().fidelity().value() - a.fidelity().value()).abs() < 1e-15);
    }

    #[test]
    fn density_matrix_round_trip(a in bell_diagonal()) {
        let rho = PairState::from_bell_diagonal(&a);
        prop_assert!(rho.is_bell_diagonal(1e-9));
        prop_assert!(rho.bell_diagonal().approx_eq(&a, 1e-9));
    }

    #[test]
    fn density_pauli_channel_agrees_with_fast_path(
        a in bell_diagonal(),
        px in 0.0..0.3f64,
        py in 0.0..0.3f64,
        pz in 0.0..0.3f64,
    ) {
        let exact = PairState::from_bell_diagonal(&a)
            .pauli_channel_first(px, py, pz)
            .bell_diagonal();
        let fast = a.apply_pauli_noise(px, py, pz);
        prop_assert!(exact.approx_eq(&fast, 1e-9), "exact {exact} vs fast {fast}");
    }

    #[test]
    fn teleport_pair_outputs_are_physical(a in bell_diagonal(), b in bell_diagonal()) {
        let rates = ErrorRates::ion_trap();
        let out = teleport::teleport_pair(&a, &b, &rates);
        prop_assert!(is_distribution(&out));
    }

    #[test]
    fn werner_teleport_never_beats_its_inputs(f1 in 0.25..1.0f64, f2 in 0.25..1.0f64) {
        // For Werner resources the polarizations multiply, so the output
        // fidelity cannot exceed either input's.
        let rates = ErrorRates::noiseless();
        let out = teleport::teleport_pair(
            &BellDiagonal::werner(Fidelity::new(f1).unwrap()),
            &BellDiagonal::werner(Fidelity::new(f2).unwrap()),
            &rates,
        );
        prop_assert!(out.fidelity().value() <= f1.max(f2) + 1e-12);
    }

    #[test]
    fn equation3_matches_pauli_convolution_on_werner(
        f1 in 0.25..1.0f64,
        f2 in 0.25..1.0f64,
    ) {
        let rates = ErrorRates::ion_trap();
        let w1 = BellDiagonal::werner(Fidelity::new(f1).unwrap());
        let w2 = BellDiagonal::werner(Fidelity::new(f2).unwrap());
        let pair = teleport::teleport_pair(&w1, &w2, &rates);
        let scalar = teleport::teleport_fidelity(
            Fidelity::new(f1).unwrap(),
            Fidelity::new(f2).unwrap(),
            &rates,
        );
        prop_assert!((pair.fidelity().value() - scalar.value()).abs() < 1e-9);
    }

    #[test]
    fn duration_arithmetic_is_consistent(us_a in 0u64..10_000_000, us_b in 0u64..10_000_000) {
        let a = Duration::from_micros(us_a);
        let b = Duration::from_micros(us_b);
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b).saturating_sub(b), a);
        prop_assert_eq!(a * 2, a + a);
    }

    #[test]
    fn pauli_labels_biject(x in any::<bool>(), z in any::<bool>()) {
        let s = BellState::from_pauli_label(x, z);
        prop_assert_eq!(s.pauli_label(), (x, z));
    }
}
