//! The multi-threaded task executor behind [`Campaign::run`].
//!
//! Work distribution is a single shared atomic cursor: each worker
//! repeatedly claims the next unclaimed task index and evaluates it, so
//! stragglers never idle the pool (work stealing without queues —
//! cheap, fair, and contention-free for simulator-sized tasks).
//! Finished results stream back to the caller over a channel tagged
//! with their task index, so aggregation order never depends on thread
//! scheduling.
//!
//! [`Campaign::run`]: crate::campaign::Campaign::run

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

/// Flags the shared cancel latch when its worker unwinds, so the other
/// workers stop claiming tasks instead of draining the whole campaign
/// before the panic can propagate.
struct CancelOnPanic<'a>(&'a AtomicBool);

impl Drop for CancelOnPanic<'_> {
    fn drop(&mut self) {
        if thread::panicking() {
            self.0.store(true, Ordering::Relaxed);
        }
    }
}

/// Evaluates `tasks` task indices on `workers` threads, streaming each
/// `(index, result)` into `sink` as it completes.
///
/// The task function runs once per index in `0..tasks`; which thread
/// runs which index is scheduling-dependent, but `sink` receives every
/// index exactly once, so an index-addressed collection is
/// deterministic. A panicking task cancels the pool — the other
/// workers finish only their in-flight task, claim nothing further —
/// and then propagates to the caller.
pub fn run_indexed<R, F, S>(tasks: usize, workers: usize, task: F, mut sink: S)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
    S: FnMut(usize, R),
{
    let workers = workers.clamp(1, tasks.max(1));
    let cursor = AtomicUsize::new(0);
    let cancelled = AtomicBool::new(false);
    thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let tx = tx.clone();
                let cursor = &cursor;
                let cancelled = &cancelled;
                let task = &task;
                scope.spawn(move || {
                    let guard = CancelOnPanic(cancelled);
                    loop {
                        if cancelled.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= tasks {
                            break;
                        }
                        // A closed channel means the receiver is gone
                        // (caller unwinding); stop claiming work.
                        if tx.send((i, task(i))).is_err() {
                            break;
                        }
                    }
                    drop(guard);
                })
            })
            .collect();
        drop(tx);
        // Streams until every worker has dropped its sender.
        while let Ok((i, r)) = rx.recv() {
            sink(i, r);
        }
        // Join explicitly so a worker's panic payload (not the scope's
        // generic "a scoped thread panicked") reaches the caller.
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
}

/// Like [`run_indexed`], but collects results into a `Vec` ordered by
/// task index.
pub fn collect_indexed<R, F>(tasks: usize, workers: usize, task: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(tasks, || None);
    run_indexed(tasks, workers, task, |i, r| slots[i] = Some(r));
    slots
        .into_iter()
        .map(|s| s.expect("every task index reported exactly once"))
        .collect()
}

/// Worker count to use when a campaign does not pin one: the machine's
/// available parallelism, capped at 8 (simulator tasks are CPU-bound;
/// more threads only add scheduling noise).
pub fn default_workers() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_index_once() {
        for workers in [1, 2, 4, 7] {
            let got = collect_indexed(23, workers, |i| i * i);
            let want: Vec<usize> = (0..23).map(|i| i * i).collect();
            assert_eq!(got, want, "workers={workers}");
        }
    }

    #[test]
    fn zero_tasks_is_fine() {
        let got: Vec<u32> = collect_indexed(0, 4, |_| unreachable!());
        assert!(got.is_empty());
    }

    #[test]
    fn worker_count_is_clamped() {
        // More workers than tasks must not deadlock or skip work.
        let got = collect_indexed(3, 64, |i| i);
        assert_eq!(got, vec![0, 1, 2]);
        assert!(default_workers() >= 1);
    }

    #[test]
    fn streams_tagged_results() {
        let mut seen = [false; 50];
        run_indexed(
            50,
            4,
            |i| i,
            |i, r| {
                assert_eq!(i, r);
                assert!(!seen[i], "index {i} delivered twice");
                seen[i] = true;
            },
        );
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "task 3 exploded")]
    fn worker_panic_propagates() {
        let _ = collect_indexed(8, 2, |i| {
            if i == 3 {
                panic!("task 3 exploded");
            }
            i
        });
    }

    #[test]
    fn panic_cancels_outstanding_tasks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let evaluated = AtomicUsize::new(0);
        let tasks = 10_000;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_indexed(
                tasks,
                4,
                |i| {
                    if i == 0 {
                        panic!("first task fails");
                    }
                    evaluated.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_micros(20));
                },
                |_, _| {},
            );
        }));
        assert!(result.is_err(), "the panic must propagate");
        // Without cancellation the surviving workers would evaluate every
        // remaining task before the panic surfaced.
        assert!(
            evaluated.load(Ordering::Relaxed) < tasks - 1,
            "workers kept draining after the panic"
        );
    }
}
