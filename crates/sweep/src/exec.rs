//! The multi-threaded task executor behind [`Campaign::run`].
//!
//! Work distribution is a single shared atomic cursor: each worker
//! repeatedly claims the next unclaimed task index and evaluates it, so
//! stragglers never idle the pool (work stealing without queues —
//! cheap, fair, and contention-free for simulator-sized tasks).
//! Finished results stream back to the caller over a channel tagged
//! with their task index, so aggregation order never depends on thread
//! scheduling.
//!
//! [`Campaign::run`]: crate::campaign::Campaign::run

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::Instant;

use crate::progress::{NoProgress, ProgressSink};

/// Flags the shared cancel latch when its worker unwinds, so the other
/// workers stop claiming tasks instead of draining the whole campaign
/// before the panic can propagate.
struct CancelOnPanic<'a>(&'a AtomicBool);

impl Drop for CancelOnPanic<'_> {
    fn drop(&mut self) {
        if thread::panicking() {
            self.0.store(true, Ordering::Relaxed);
        }
    }
}

/// Evaluates `tasks` task indices on `workers` threads, streaming each
/// `(index, result)` into `sink` as it completes.
///
/// The task function runs once per index in `0..tasks`; which thread
/// runs which index is scheduling-dependent, but `sink` receives every
/// index exactly once, so an index-addressed collection is
/// deterministic. A panicking task cancels the pool — the other
/// workers finish only their in-flight task, claim nothing further —
/// and then propagates to the caller.
pub fn run_indexed<R, F, S>(tasks: usize, workers: usize, task: F, mut sink: S)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
    S: FnMut(usize, R),
{
    run_indexed_observed(tasks, workers, task, |i, r, _wall| sink(i, r), &NoProgress);
}

/// [`run_indexed`] with campaign-level observability: `progress`
/// receives a claim/finish callback pair per task from the worker that
/// ran it, and `sink` additionally receives each task's wall-clock
/// evaluation time in nanoseconds.
///
/// The result stream and its index-addressing are identical to
/// [`run_indexed`] — wall times and progress callbacks are measurement
/// side channels, scheduling-dependent by nature, and must not feed
/// anything that claims determinism.
pub fn run_indexed_observed<R, F, S>(
    tasks: usize,
    workers: usize,
    task: F,
    mut sink: S,
    progress: &dyn ProgressSink,
) where
    R: Send,
    F: Fn(usize) -> R + Sync,
    S: FnMut(usize, R, u64),
{
    let workers = workers.clamp(1, tasks.max(1));
    let cursor = AtomicUsize::new(0);
    let cancelled = AtomicBool::new(false);
    thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<(usize, R, u64)>();
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                let tx = tx.clone();
                let cursor = &cursor;
                let cancelled = &cancelled;
                let task = &task;
                scope.spawn(move || {
                    let guard = CancelOnPanic(cancelled);
                    loop {
                        if cancelled.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= tasks {
                            break;
                        }
                        progress.on_start(i, worker);
                        let begun = Instant::now();
                        let result = task(i);
                        let wall_ns = u64::try_from(begun.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        progress.on_finish(i, worker, wall_ns);
                        // A closed channel means the receiver is gone
                        // (caller unwinding); stop claiming work.
                        if tx.send((i, result, wall_ns)).is_err() {
                            break;
                        }
                    }
                    drop(guard);
                })
            })
            .collect();
        drop(tx);
        // Streams until every worker has dropped its sender.
        while let Ok((i, r, wall_ns)) = rx.recv() {
            sink(i, r, wall_ns);
        }
        // Join explicitly so a worker's panic payload (not the scope's
        // generic "a scoped thread panicked") reaches the caller.
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
}

/// Like [`run_indexed`], but collects results into a `Vec` ordered by
/// task index.
pub fn collect_indexed<R, F>(tasks: usize, workers: usize, task: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(tasks, || None);
    run_indexed(tasks, workers, task, |i, r| slots[i] = Some(r));
    slots
        .into_iter()
        .map(|s| s.expect("every task index reported exactly once"))
        .collect()
}

/// Worker count to use when a campaign does not pin one.
///
/// The `QIC_WORKERS` environment variable, when set to a positive
/// integer, overrides the choice (clamped to 64) — CI and the bench
/// gate pin worker counts this way without code changes. Otherwise:
/// the machine's available parallelism, capped at 8 (simulator tasks
/// are CPU-bound; more threads only add scheduling noise).
pub fn default_workers() -> usize {
    if let Some(w) = std::env::var("QIC_WORKERS")
        .ok()
        .as_deref()
        .and_then(parse_workers)
    {
        return w;
    }
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8)
}

/// Parses a `QIC_WORKERS` value: a positive integer, clamped to 64.
/// Anything else (empty, zero, garbage) yields `None` and falls back to
/// the automatic choice.
fn parse_workers(v: &str) -> Option<usize> {
    let n: usize = v.trim().parse().ok()?;
    (n > 0).then(|| n.min(64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_index_once() {
        for workers in [1, 2, 4, 7] {
            let got = collect_indexed(23, workers, |i| i * i);
            let want: Vec<usize> = (0..23).map(|i| i * i).collect();
            assert_eq!(got, want, "workers={workers}");
        }
    }

    #[test]
    fn zero_tasks_is_fine() {
        let got: Vec<u32> = collect_indexed(0, 4, |_| unreachable!());
        assert!(got.is_empty());
    }

    #[test]
    fn worker_count_is_clamped() {
        // More workers than tasks must not deadlock or skip work.
        let got = collect_indexed(3, 64, |i| i);
        assert_eq!(got, vec![0, 1, 2]);
        assert!(default_workers() >= 1);
    }

    #[test]
    fn streams_tagged_results() {
        let mut seen = [false; 50];
        run_indexed(
            50,
            4,
            |i| i,
            |i, r| {
                assert_eq!(i, r);
                assert!(!seen[i], "index {i} delivered twice");
                seen[i] = true;
            },
        );
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn parse_workers_accepts_positive_clamped_integers() {
        assert_eq!(parse_workers("4"), Some(4));
        assert_eq!(parse_workers(" 12 \n"), Some(12));
        assert_eq!(parse_workers("1000"), Some(64), "clamped to 64");
        assert_eq!(parse_workers("0"), None, "zero falls back");
        assert_eq!(parse_workers(""), None);
        assert_eq!(parse_workers("all"), None);
        assert_eq!(parse_workers("-2"), None);
    }

    #[test]
    fn observed_run_reports_progress_and_wall_times() {
        use crate::progress::JsonlProgress;
        let sink = JsonlProgress::new(Vec::new(), 6);
        let mut walls = [0u64; 6];
        run_indexed_observed(
            6,
            2,
            |i| i * 10,
            |i, r, wall_ns| {
                assert_eq!(r, i * 10);
                walls[i] = wall_ns;
            },
            &sink,
        );
        assert_eq!(sink.done(), 6);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 12, "one start + one done per task");
        for i in 0..6 {
            assert!(
                text.contains(&format!("\"event\":\"start\",\"task\":{i},")),
                "missing start line for task {i}:\n{text}"
            );
        }
        let final_line = text.lines().last().unwrap();
        assert!(final_line.contains("\"done\":6,\"total\":6,\"in_flight\":0"));
    }

    #[test]
    #[should_panic(expected = "task 3 exploded")]
    fn worker_panic_propagates() {
        let _ = collect_indexed(8, 2, |i| {
            if i == 3 {
                panic!("task 3 exploded");
            }
            i
        });
    }

    #[test]
    fn panic_cancels_outstanding_tasks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let evaluated = AtomicUsize::new(0);
        let tasks = 10_000;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_indexed(
                tasks,
                4,
                |i| {
                    if i == 0 {
                        panic!("first task fails");
                    }
                    evaluated.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_micros(20));
                },
                |_, _| {},
            );
        }));
        assert!(result.is_err(), "the panic must propagate");
        // Without cancellation the surviving workers would evaluate every
        // remaining task before the panic surfaced.
        assert!(
            evaluated.load(Ordering::Relaxed) < tasks - 1,
            "workers kept draining after the panic"
        );
    }
}
