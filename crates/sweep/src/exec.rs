//! The multi-threaded task executors behind [`Campaign::run`] and
//! [`Campaign::run_on`].
//!
//! Two pools live here:
//!
//! * the **transient pool** ([`run_indexed`] / [`run_indexed_observed`])
//!   that [`Campaign::run`] spins up per call — scoped threads, so the
//!   task closure may borrow freely;
//! * the **shared [`Executor`]** — a persistent pool serving many
//!   concurrent submissions with fair round-robin scheduling, bounded
//!   admission, cooperative cancellation ([`CancelToken`]) and panic
//!   propagation, for long-lived services that must not pay a
//!   thread-spawn per campaign (see `qic-serve`).
//!
//! Work distribution is the same in both: a shared cursor per
//! submission — each worker repeatedly claims the next unclaimed task
//! index and evaluates it, so stragglers never idle the pool (work
//! stealing without queues — cheap, fair, and contention-free for
//! simulator-sized tasks). Finished results stream back to the caller
//! over a channel tagged with their task index, so aggregation order
//! never depends on thread scheduling.
//!
//! # Worker-count precedence
//!
//! Both pools resolve a worker count of `0` through
//! [`default_workers`]: an explicit count always wins, then the
//! `QIC_WORKERS` environment variable (parsed by [`parse_workers`]),
//! then the machine's available parallelism capped at 8.
//!
//! [`Campaign::run`]: crate::campaign::Campaign::run
//! [`Campaign::run_on`]: crate::campaign::Campaign::run_on

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::thread::JoinHandle;
use std::time::Instant;

use crate::progress::{NoProgress, ProgressSink};

/// Flags the shared cancel latch when its worker unwinds, so the other
/// workers stop claiming tasks instead of draining the whole campaign
/// before the panic can propagate.
struct CancelOnPanic<'a>(&'a AtomicBool);

impl Drop for CancelOnPanic<'_> {
    fn drop(&mut self) {
        if thread::panicking() {
            self.0.store(true, Ordering::Relaxed);
        }
    }
}

/// Evaluates `tasks` task indices on `workers` threads, streaming each
/// `(index, result)` into `sink` as it completes.
///
/// The task function runs once per index in `0..tasks`; which thread
/// runs which index is scheduling-dependent, but `sink` receives every
/// index exactly once, so an index-addressed collection is
/// deterministic. A panicking task cancels the pool — the other
/// workers finish only their in-flight task, claim nothing further —
/// and then propagates to the caller.
pub fn run_indexed<R, F, S>(tasks: usize, workers: usize, task: F, mut sink: S)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
    S: FnMut(usize, R),
{
    run_indexed_observed(tasks, workers, task, |i, r, _wall| sink(i, r), &NoProgress);
}

/// [`run_indexed`] with campaign-level observability: `progress`
/// receives a claim/finish callback pair per task from the worker that
/// ran it, and `sink` additionally receives each task's wall-clock
/// evaluation time in nanoseconds.
///
/// The result stream and its index-addressing are identical to
/// [`run_indexed`] — wall times and progress callbacks are measurement
/// side channels, scheduling-dependent by nature, and must not feed
/// anything that claims determinism.
pub fn run_indexed_observed<R, F, S>(
    tasks: usize,
    workers: usize,
    task: F,
    mut sink: S,
    progress: &dyn ProgressSink,
) where
    R: Send,
    F: Fn(usize) -> R + Sync,
    S: FnMut(usize, R, u64),
{
    let workers = workers.clamp(1, tasks.max(1));
    let cursor = AtomicUsize::new(0);
    let cancelled = AtomicBool::new(false);
    thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<(usize, R, u64)>();
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                let tx = tx.clone();
                let cursor = &cursor;
                let cancelled = &cancelled;
                let task = &task;
                scope.spawn(move || {
                    let guard = CancelOnPanic(cancelled);
                    loop {
                        if cancelled.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= tasks {
                            break;
                        }
                        progress.on_start(i, worker);
                        let begun = Instant::now();
                        let result = task(i);
                        let wall_ns = u64::try_from(begun.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        progress.on_finish(i, worker, wall_ns);
                        // A closed channel means the receiver is gone
                        // (caller unwinding); stop claiming work.
                        if tx.send((i, result, wall_ns)).is_err() {
                            break;
                        }
                    }
                    drop(guard);
                })
            })
            .collect();
        drop(tx);
        // Streams until every worker has dropped its sender.
        while let Ok((i, r, wall_ns)) = rx.recv() {
            sink(i, r, wall_ns);
        }
        // Join explicitly so a worker's panic payload (not the scope's
        // generic "a scoped thread panicked") reaches the caller.
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
}

/// Like [`run_indexed`], but collects results into a `Vec` ordered by
/// task index.
pub fn collect_indexed<R, F>(tasks: usize, workers: usize, task: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(tasks, || None);
    run_indexed(tasks, workers, task, |i, r| slots[i] = Some(r));
    slots
        .into_iter()
        .map(|s| s.expect("every task index reported exactly once"))
        .collect()
}

/// Worker count to use when a campaign does not pin one.
///
/// The `QIC_WORKERS` environment variable, when set to a positive
/// integer, overrides the choice (clamped to 64) — CI and the bench
/// gate pin worker counts this way without code changes. Otherwise:
/// the machine's available parallelism, capped at 8 (simulator tasks
/// are CPU-bound; more threads only add scheduling noise).
pub fn default_workers() -> usize {
    if let Some(w) = std::env::var("QIC_WORKERS")
        .ok()
        .as_deref()
        .and_then(parse_workers)
    {
        return w;
    }
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8)
}

/// Parses a `QIC_WORKERS` value: a positive integer, clamped to 64.
/// Anything else (empty, zero, garbage) yields `None` and falls back to
/// the automatic choice.
///
/// Public so service layers (`qic-serve`) resolve the same precedence —
/// explicit config > `QIC_WORKERS` > automatic — from the same parser.
pub fn parse_workers(v: &str) -> Option<usize> {
    let n: usize = v.trim().parse().ok()?;
    (n > 0).then(|| n.min(64))
}

/// A cooperative cancellation latch shared between the submitter of an
/// [`Executor`] run and the workers evaluating it.
///
/// Cancelling stops further task *claims*; tasks already in flight
/// finish normally. A cancelled run returns incomplete (see
/// [`Executor::run_indexed_observed`]), and the token stays tripped —
/// tokens are one-shot, one per run.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Trips the latch: no further tasks of the associated run are
    /// claimed.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// What a submission streams back to the thread that registered it.
enum Verdict<R> {
    /// Task `index` finished in `wall_ns` nanoseconds.
    Done(usize, R, u64),
    /// A task panicked; the payload re-raises on the submitter.
    Panicked(Box<dyn Any + Send>),
    /// Every claimed task has finished and no more will be claimed.
    Closed,
}

/// One registered submission as the worker ring sees it: claim task
/// indices until drained, run each claimed index. Object-safe so the
/// ring can hold submissions of any result type.
trait TaskSource: Send + Sync {
    /// Claims the next unclaimed task index; `None` once the source is
    /// exhausted or cancelled (monotone — `None` is permanent, and the
    /// ring drops the source on seeing it).
    fn claim(&self) -> Option<usize>;

    /// Runs claimed task `index` on pool worker `worker`, delivering
    /// the result to the submitter internally.
    fn run(&self, index: usize, worker: usize);

    /// The ring dropped the source; once in-flight tasks finish, the
    /// submitter is released.
    fn detached(&self);
}

/// The state behind one [`Executor`] submission: the shared claim
/// cursor, the accounting that closes the result stream exactly once,
/// and the caller's sink channel.
struct Submission<R, F> {
    tasks: usize,
    cursor: AtomicUsize,
    claimed: AtomicUsize,
    finished: AtomicUsize,
    detached: AtomicBool,
    closed: AtomicBool,
    cancel: CancelToken,
    progress: Arc<dyn ProgressSink + Send + Sync>,
    eval: F,
    tx: mpsc::Sender<Verdict<R>>,
}

impl<R, F> Submission<R, F>
where
    R: Send + 'static,
    F: Fn(usize) -> R + Send + Sync + 'static,
{
    /// Sends the one `Closed` sentinel once the ring has let go of the
    /// source and every claimed task has finished.
    fn maybe_close(&self) {
        if self.detached.load(Ordering::SeqCst)
            && self.finished.load(Ordering::SeqCst) == self.claimed.load(Ordering::SeqCst)
            && !self.closed.swap(true, Ordering::SeqCst)
        {
            let _ = self.tx.send(Verdict::Closed);
        }
    }
}

impl<R, F> TaskSource for Submission<R, F>
where
    R: Send + 'static,
    F: Fn(usize) -> R + Send + Sync + 'static,
{
    fn claim(&self) -> Option<usize> {
        if self.cancel.is_cancelled() {
            return None;
        }
        let i = self.cursor.fetch_add(1, Ordering::SeqCst);
        if i >= self.tasks {
            return None;
        }
        self.claimed.fetch_add(1, Ordering::SeqCst);
        Some(i)
    }

    fn run(&self, index: usize, worker: usize) {
        self.progress.on_start(index, worker);
        let begun = Instant::now();
        match catch_unwind(AssertUnwindSafe(|| (self.eval)(index))) {
            Ok(result) => {
                let wall_ns = u64::try_from(begun.elapsed().as_nanos()).unwrap_or(u64::MAX);
                self.progress.on_finish(index, worker, wall_ns);
                let _ = self.tx.send(Verdict::Done(index, result, wall_ns));
            }
            Err(payload) => {
                // Stop claiming the rest of this submission, carry the
                // payload home; other submissions are unaffected.
                self.cancel.cancel();
                let _ = self.tx.send(Verdict::Panicked(payload));
            }
        }
        self.finished.fetch_add(1, Ordering::SeqCst);
        self.maybe_close();
    }

    fn detached(&self) {
        self.detached.store(true, Ordering::SeqCst);
        self.maybe_close();
    }
}

/// The ring of live submissions, guarded by [`Shared::ring`].
struct Ring {
    /// Live submissions, claimed from round-robin for fairness.
    sources: Vec<Arc<dyn TaskSource>>,
    /// Next ring slot to claim from (reduced modulo the ring length at
    /// use, so removals need no fix-up).
    next: usize,
    /// Admission bound: registrations block while the ring is full.
    admit: usize,
    /// Workers exit once this is set and the ring has drained.
    shutdown: bool,
}

/// State shared between the [`Executor`] handle and its workers.
struct Shared {
    ring: Mutex<Ring>,
    /// Workers wait here for work; submitters notify on registration.
    work: Condvar,
    /// Submitters wait here for an admission slot; workers notify when
    /// a drained source leaves the ring.
    space: Condvar,
}

/// A persistent, shared worker pool serving many concurrent campaign
/// submissions.
///
/// Where [`Campaign::run`] spins a transient scoped pool up per call,
/// an `Executor` keeps `workers` threads alive and multiplexes every
/// concurrent submission over them with **fair round-robin claiming**:
/// each idle worker takes the next task from the next submission in the
/// ring, so two concurrent campaigns make interleaved progress instead
/// of queueing behind each other. Submissions beyond the admission
/// bound block until a slot frees.
///
/// # Worker-count precedence
///
/// `Executor::new(0)` resolves the pool size through
/// [`default_workers`]: an explicit non-zero count always wins, then a
/// positive-integer `QIC_WORKERS` environment variable (via
/// [`parse_workers`], clamped to 64), then the machine's available
/// parallelism capped at 8.
///
/// # Determinism
///
/// The executor only schedules; results are index-addressed exactly
/// like the transient pool's, so anything built on it (notably
/// [`Campaign::run_on`]) inherits the byte-identical determinism
/// contract regardless of pool size or concurrent load.
///
/// Dropping the executor drains in-flight submissions, then joins the
/// workers.
///
/// [`Campaign::run`]: crate::campaign::Campaign::run
/// [`Campaign::run_on`]: crate::campaign::Campaign::run_on
pub struct Executor {
    shared: Arc<Shared>,
    workers: usize,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl Executor {
    /// A pool of `workers` threads (`0` resolves via
    /// [`default_workers`]: `QIC_WORKERS`, then auto) with unbounded
    /// admission.
    pub fn new(workers: usize) -> Executor {
        Executor::with_admission(workers, usize::MAX)
    }

    /// A pool with at most `admit` concurrently registered submissions;
    /// further submissions block (in their calling thread) until a slot
    /// frees. Service layers that need *non-blocking* backpressure
    /// bound their own job queue in front (see `qic-serve`'s
    /// `ServeError::QueueFull`) and keep the executor bound as a
    /// backstop.
    pub fn with_admission(workers: usize, admit: usize) -> Executor {
        let workers = if workers == 0 {
            default_workers()
        } else {
            workers
        };
        let shared = Arc::new(Shared {
            ring: Mutex::new(Ring {
                sources: Vec::new(),
                next: 0,
                admit: admit.max(1),
                shutdown: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|worker| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("qic-exec-{worker}"))
                    .spawn(move || worker_loop(&shared, worker))
                    .expect("spawn executor worker")
            })
            .collect();
        Executor {
            shared,
            workers,
            handles,
        }
    }

    /// The pool's worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Evaluates `tasks` task indices on the shared pool, streaming
    /// each `(index, result)` into `sink` as it completes — the
    /// shared-pool analogue of [`run_indexed`]. Panics inside `task`
    /// propagate to this caller.
    pub fn run_indexed<R, F, S>(&self, tasks: usize, task: F, mut sink: S)
    where
        R: Send + 'static,
        F: Fn(usize) -> R + Send + Sync + 'static,
        S: FnMut(usize, R),
    {
        let complete = self.run_indexed_observed(
            tasks,
            task,
            |i, r, _wall| sink(i, r),
            Arc::new(NoProgress),
            &CancelToken::new(),
        );
        debug_assert!(complete, "an uncancelled run always completes");
    }

    /// [`Executor::run_indexed`] with observability and cancellation:
    /// `progress` hears every claim/finish (with pool-worker
    /// attribution), `sink` additionally receives wall-clock
    /// nanoseconds per task, and tripping `cancel` stops further claims.
    ///
    /// Returns `true` when every task ran, `false` when the run was
    /// cancelled (some indices then never reach `sink`). The submitting
    /// thread blocks until one or the other. A panicking task cancels
    /// the rest of **this** submission and re-raises here; concurrent
    /// submissions are unaffected.
    pub fn run_indexed_observed<R, F, S>(
        &self,
        tasks: usize,
        task: F,
        mut sink: S,
        progress: Arc<dyn ProgressSink + Send + Sync>,
        cancel: &CancelToken,
    ) -> bool
    where
        R: Send + 'static,
        F: Fn(usize) -> R + Send + Sync + 'static,
        S: FnMut(usize, R, u64),
    {
        if tasks == 0 {
            return true;
        }
        let (tx, rx) = mpsc::channel();
        let submission: Arc<Submission<R, F>> = Arc::new(Submission {
            tasks,
            cursor: AtomicUsize::new(0),
            claimed: AtomicUsize::new(0),
            finished: AtomicUsize::new(0),
            detached: AtomicBool::new(false),
            closed: AtomicBool::new(false),
            cancel: cancel.clone(),
            progress,
            eval: task,
            tx,
        });
        {
            let mut ring = self.shared.ring.lock().expect("executor ring poisoned");
            while ring.sources.len() >= ring.admit {
                ring = self
                    .shared
                    .space
                    .wait(ring)
                    .expect("executor ring poisoned");
            }
            ring.sources.push(submission);
            self.shared.work.notify_all();
        }
        let mut delivered = 0usize;
        let mut payload: Option<Box<dyn Any + Send>> = None;
        // `Closed` always arrives: the ring drops the source once its
        // claims dry up, and the last in-flight task closes the stream.
        while let Ok(verdict) = rx.recv() {
            match verdict {
                Verdict::Done(i, r, wall_ns) => {
                    delivered += 1;
                    sink(i, r, wall_ns);
                }
                Verdict::Panicked(p) => payload = Some(p),
                Verdict::Closed => break,
            }
        }
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
        delivered == tasks
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        {
            let mut ring = self.shared.ring.lock().expect("executor ring poisoned");
            ring.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            if let Err(payload) = handle.join() {
                resume_unwind(payload);
            }
        }
    }
}

/// One pool worker: round-robin over the ring, claim, run, repeat;
/// drop drained sources; sleep when the ring is idle.
fn worker_loop(shared: &Shared, worker: usize) {
    let mut ring = shared.ring.lock().expect("executor ring poisoned");
    loop {
        let mut claimed = None;
        while !ring.sources.is_empty() {
            let slot = ring.next % ring.sources.len();
            match ring.sources[slot].claim() {
                Some(index) => {
                    ring.next = slot + 1;
                    claimed = Some((Arc::clone(&ring.sources[slot]), index));
                    break;
                }
                None => {
                    // Exhausted or cancelled: out of the ring, release
                    // its submitter and anyone waiting for admission.
                    let source = ring.sources.remove(slot);
                    source.detached();
                    shared.space.notify_all();
                }
            }
        }
        match claimed {
            Some((source, index)) => {
                drop(ring);
                source.run(index, worker);
                ring = shared.ring.lock().expect("executor ring poisoned");
            }
            None => {
                if ring.shutdown {
                    return;
                }
                ring = shared.work.wait(ring).expect("executor ring poisoned");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_index_once() {
        for workers in [1, 2, 4, 7] {
            let got = collect_indexed(23, workers, |i| i * i);
            let want: Vec<usize> = (0..23).map(|i| i * i).collect();
            assert_eq!(got, want, "workers={workers}");
        }
    }

    #[test]
    fn zero_tasks_is_fine() {
        let got: Vec<u32> = collect_indexed(0, 4, |_| unreachable!());
        assert!(got.is_empty());
    }

    #[test]
    fn worker_count_is_clamped() {
        // More workers than tasks must not deadlock or skip work.
        let got = collect_indexed(3, 64, |i| i);
        assert_eq!(got, vec![0, 1, 2]);
        assert!(default_workers() >= 1);
    }

    #[test]
    fn streams_tagged_results() {
        let mut seen = [false; 50];
        run_indexed(
            50,
            4,
            |i| i,
            |i, r| {
                assert_eq!(i, r);
                assert!(!seen[i], "index {i} delivered twice");
                seen[i] = true;
            },
        );
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn parse_workers_accepts_positive_clamped_integers() {
        assert_eq!(parse_workers("4"), Some(4));
        assert_eq!(parse_workers(" 12 \n"), Some(12));
        assert_eq!(parse_workers("1000"), Some(64), "clamped to 64");
        assert_eq!(parse_workers("0"), None, "zero falls back");
        assert_eq!(parse_workers(""), None);
        assert_eq!(parse_workers("all"), None);
        assert_eq!(parse_workers("-2"), None);
    }

    #[test]
    fn observed_run_reports_progress_and_wall_times() {
        use crate::progress::JsonlProgress;
        let sink = JsonlProgress::new(Vec::new(), 6);
        let mut walls = [0u64; 6];
        run_indexed_observed(
            6,
            2,
            |i| i * 10,
            |i, r, wall_ns| {
                assert_eq!(r, i * 10);
                walls[i] = wall_ns;
            },
            &sink,
        );
        assert_eq!(sink.done(), 6);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 12, "one start + one done per task");
        for i in 0..6 {
            assert!(
                text.contains(&format!("\"event\":\"start\",\"task\":{i},")),
                "missing start line for task {i}:\n{text}"
            );
        }
        let final_line = text.lines().last().unwrap();
        assert!(final_line.contains("\"done\":6,\"total\":6,\"in_flight\":0"));
    }

    #[test]
    #[should_panic(expected = "task 3 exploded")]
    fn worker_panic_propagates() {
        let _ = collect_indexed(8, 2, |i| {
            if i == 3 {
                panic!("task 3 exploded");
            }
            i
        });
    }

    #[test]
    fn panic_cancels_outstanding_tasks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let evaluated = AtomicUsize::new(0);
        let tasks = 10_000;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_indexed(
                tasks,
                4,
                |i| {
                    if i == 0 {
                        panic!("first task fails");
                    }
                    evaluated.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_micros(20));
                },
                |_, _| {},
            );
        }));
        assert!(result.is_err(), "the panic must propagate");
        // Without cancellation the surviving workers would evaluate every
        // remaining task before the panic surfaced.
        assert!(
            evaluated.load(Ordering::Relaxed) < tasks - 1,
            "workers kept draining after the panic"
        );
    }
}
