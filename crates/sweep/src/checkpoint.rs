//! Checkpoint / resume for long campaigns: a versioned on-disk manifest
//! of completed points, committed atomically as the campaign streams,
//! so a killed run resumes exactly where it stopped — and produces the
//! byte-identical report a fresh run would have.
//!
//! # The manifest
//!
//! A manifest is one line of strict JSON:
//!
//! ```text
//! {"record":"campaign_checkpoint","version":1,"campaign":...,
//!  "spec_hash":...,"seed":...,"replicates":...,"total_points":...,
//!  "completed":"<hex bitmap>","points":[...]}
//! ```
//!
//! * `spec_hash` fingerprints the campaign (name, seed, replicates,
//!   axes), so resuming against an edited spec fails loudly instead of
//!   stitching incompatible halves together.
//! * `completed` is a little-endian-bit hex bitmap over point indices
//!   (bit `i % 8` of byte `i / 8`), cross-checked against the point
//!   records on load.
//! * `points` holds the lossless per-point records of
//!   [`crate::report::CampaignReport::to_record_json`], in index order.
//!
//! # Atomic commit
//!
//! Every commit writes `<path>.tmp`, syncs it, then renames over the
//! manifest. A crash mid-write leaves either the previous manifest or a
//! stray `.tmp` — never a torn manifest — so resume always sees a
//! consistent prefix of the campaign.
//!
//! # Determinism
//!
//! Per-point seeds are pure functions of the campaign seed and the
//! point index ([`crate::derive_seed`]), and resumed evaluation uses
//! the same streaming fold as [`Campaign::run_streaming`], so a
//! resumed report equals a fresh streaming run byte for byte (JSON
//! record and CSV alike).

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::campaign::{Campaign, RunCtx};
use crate::json::{check_fields, get, obj, Json, JsonError};
use crate::report::{axis_to_json, point_from_json, point_to_json, CampaignReport, PointReport};
use crate::space::SweepPoint;
use qic_des::metrics::Metrics;

/// Schema version of the checkpoint manifest. Bumped on any
/// incompatible change; loading surfaces a mismatch instead of
/// guessing.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Where and how often a resumable campaign checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    path: PathBuf,
    every: usize,
}

impl CheckpointConfig {
    /// Checkpoints to `path`, committing every 16 newly completed
    /// points (and always once at the end of a run).
    pub fn new(path: impl Into<PathBuf>) -> CheckpointConfig {
        CheckpointConfig {
            path: path.into(),
            every: 16,
        }
    }

    /// Commits the manifest every `every` newly completed points.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn every(mut self, every: usize) -> CheckpointConfig {
        assert!(every >= 1, "checkpoint interval must be at least 1");
        self.every = every;
        self
    }

    /// The manifest path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The commit interval, in newly completed points.
    pub fn interval(&self) -> usize {
        self.every
    }
}

/// Why a checkpointed run could not load, validate or commit its
/// manifest.
///
/// Stores rendered I/O messages rather than `std::io::Error` (which is
/// neither `Clone` nor `PartialEq`) so callers can derive both.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// The filesystem refused an operation on the manifest.
    Io {
        /// The path involved.
        path: String,
        /// Which operation failed (`"read"`, `"create"`, `"write"`,
        /// `"sync"`, `"rename"`, `"create dir"`).
        op: &'static str,
        /// The rendered `std::io::Error`.
        message: String,
    },
    /// The manifest is not a valid checkpoint document.
    Corrupt {
        /// The path involved.
        path: String,
        /// What the strict JSON codec rejected.
        source: JsonError,
    },
    /// The manifest is well-formed but does not belong to this
    /// campaign (wrong spec hash, totals, seed, …) or is internally
    /// inconsistent (bitmap disagrees with the point records).
    Mismatch {
        /// The path involved.
        path: String,
        /// What disagreed.
        problem: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, op, message } => {
                write!(f, "checkpoint {op} failed for {path}: {message}")
            }
            CheckpointError::Corrupt { path, source } => {
                write!(f, "corrupt checkpoint manifest {path}: {source}")
            }
            CheckpointError::Mismatch { path, problem } => {
                write!(f, "checkpoint manifest {path} does not match: {problem}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Corrupt { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Outcome of a budgeted resumable run: either the finished campaign or
/// how far the manifest now reaches.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignProgress {
    /// Every point completed; the manifest holds the full campaign and
    /// this is its report.
    Complete(Box<CampaignReport>),
    /// The point budget ran out first; the manifest was committed and a
    /// later run will pick up from here.
    Partial {
        /// Points completed so far (across all runs).
        done: usize,
        /// Points in the campaign.
        total: usize,
    },
}

impl Campaign {
    /// Runs the campaign with streaming aggregation, committing a
    /// checkpoint manifest as points complete; if `ckpt.path()` already
    /// holds a manifest of this campaign, the completed points are
    /// loaded from it and only the missing ones are evaluated.
    ///
    /// The returned report is byte-identical (lossless record JSON and
    /// CSV) to [`Campaign::run_streaming`] on a fresh campaign — kill
    /// and resume as many times as you like.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] if the manifest cannot be read, written, or
    /// does not belong to this campaign. Evaluation work committed
    /// before the error is preserved in the manifest.
    pub fn run_resumable<F>(
        &self,
        ckpt: &CheckpointConfig,
        eval: F,
    ) -> Result<CampaignReport, CheckpointError>
    where
        F: Fn(&SweepPoint<'_>, RunCtx) -> Metrics + Sync,
    {
        match self.run_resumable_budgeted(ckpt, None, eval)? {
            CampaignProgress::Complete(report) => Ok(*report),
            CampaignProgress::Partial { .. } => {
                unreachable!("an unbudgeted resumable run always completes")
            }
        }
    }

    /// [`Campaign::run_resumable`] with a point budget: evaluates at
    /// most `budget` not-yet-completed points this invocation, then
    /// commits and reports progress. `None` means no budget — run to
    /// completion. This is the building block for cooperative
    /// scheduling (and for the crash-injection tests, which use a
    /// budget to stop a campaign dead at a checkpoint boundary).
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] as for [`Campaign::run_resumable`].
    pub fn run_resumable_budgeted<F>(
        &self,
        ckpt: &CheckpointConfig,
        budget: Option<usize>,
        eval: F,
    ) -> Result<CampaignProgress, CheckpointError>
    where
        F: Fn(&SweepPoint<'_>, RunCtx) -> Metrics + Sync,
    {
        let total = self.space().len();
        let manifest = Manifest::new(self, ckpt.path());

        // Load whatever a previous run committed.
        let mut slots: Vec<Option<PointReport>> = manifest.load(total)?;
        let mut wall_ns: Vec<u64> = vec![0; total];

        let missing: Vec<usize> = (0..total).filter(|&i| slots[i].is_none()).collect();
        let todo: Vec<usize> = match budget {
            Some(limit) => missing.iter().copied().take(limit).collect(),
            None => missing,
        };

        if !todo.is_empty() {
            // The sink runs on this thread, so committing from it is
            // ordinary sequential file I/O; an error aborts the run
            // after the in-flight points drain.
            let mut commit_error: Option<CheckpointError> = None;
            let mut fresh = 0usize;
            self.run_point_set(&todo, &eval, |point, wall| {
                if commit_error.is_some() {
                    return;
                }
                let index = point.index;
                wall_ns[index] = wall;
                slots[index] = Some(point);
                fresh += 1;
                if fresh % ckpt.interval() == 0 {
                    if let Err(e) = manifest.commit(&slots) {
                        commit_error = Some(e);
                    }
                }
            });
            if let Some(e) = commit_error {
                return Err(e);
            }
            manifest.commit(&slots)?;
        }

        let done = slots.iter().filter(|s| s.is_some()).count();
        if done < total {
            return Ok(CampaignProgress::Partial { done, total });
        }
        let points: Vec<PointReport> = slots
            .into_iter()
            .map(|s| s.expect("all points complete"))
            .collect();
        Ok(CampaignProgress::Complete(Box::new(
            self.report_of(points, wall_ns),
        )))
    }
}

/// The manifest codec bound to one campaign and one path.
struct Manifest<'a> {
    campaign: &'a Campaign,
    path: &'a Path,
}

impl<'a> Manifest<'a> {
    fn new(campaign: &'a Campaign, path: &'a Path) -> Manifest<'a> {
        Manifest { campaign, path }
    }

    fn path_string(&self) -> String {
        self.path.display().to_string()
    }

    fn io(&self, op: &'static str, e: &std::io::Error) -> CheckpointError {
        CheckpointError::Io {
            path: self.path_string(),
            op,
            message: e.to_string(),
        }
    }

    /// Loads the manifest into index-addressed slots; all-`None` when
    /// no manifest exists yet (a fresh campaign).
    fn load(&self, total: usize) -> Result<Vec<Option<PointReport>>, CheckpointError> {
        let mut slots: Vec<Option<PointReport>> = Vec::new();
        slots.resize_with(total, || None);
        if !self.path.exists() {
            return Ok(slots);
        }
        let text = fs::read_to_string(self.path).map_err(|e| self.io("read", &e))?;
        let corrupt = |source: JsonError| CheckpointError::Corrupt {
            path: self.path_string(),
            source,
        };
        let mismatch = |problem: String| CheckpointError::Mismatch {
            path: self.path_string(),
            problem,
        };

        let value = Json::parse(&text).map_err(corrupt)?;
        let parsed: Result<_, JsonError> = (|| {
            let fields = value.obj_of("checkpoint manifest")?;
            check_fields(
                fields,
                &[
                    "record",
                    "version",
                    "campaign",
                    "spec_hash",
                    "seed",
                    "replicates",
                    "total_points",
                    "completed",
                    "points",
                ],
                "checkpoint manifest",
            )?;
            let tag = get(fields, "record", "checkpoint manifest")?.str_of("record")?;
            if tag != "campaign_checkpoint" {
                return Err(Json::schema_err(format!(
                    "checkpoint manifest: unexpected record tag {tag:?}"
                )));
            }
            let version = get(fields, "version", "checkpoint manifest")?.u32_of("version")?;
            if version != CHECKPOINT_VERSION {
                return Err(Json::schema_err(format!(
                    "checkpoint manifest: version {version}, this build reads \
                     version {CHECKPOINT_VERSION}"
                )));
            }
            let name = get(fields, "campaign", "checkpoint manifest")?
                .str_of("campaign")?
                .to_string();
            let spec_hash = get(fields, "spec_hash", "checkpoint manifest")?.u64_of("spec_hash")?;
            let seed = get(fields, "seed", "checkpoint manifest")?.u64_of("seed")?;
            let replicates =
                get(fields, "replicates", "checkpoint manifest")?.u32_of("replicates")?;
            let total_points =
                get(fields, "total_points", "checkpoint manifest")?.usize_of("total_points")?;
            let completed = get(fields, "completed", "checkpoint manifest")?
                .str_of("completed")?
                .to_string();
            let points: Vec<PointReport> = get(fields, "points", "checkpoint manifest")?
                .arr_of("points")?
                .iter()
                .map(point_from_json)
                .collect::<Result<_, _>>()?;
            Ok((
                name,
                spec_hash,
                seed,
                replicates,
                total_points,
                completed,
                points,
            ))
        })();
        let (name, spec_hash, seed, replicates, total_points, completed, points) =
            parsed.map_err(corrupt)?;

        // Does this manifest belong to this campaign?
        if name != self.campaign.name() {
            return Err(mismatch(format!(
                "manifest is for campaign {name:?}, expected {:?}",
                self.campaign.name()
            )));
        }
        if seed != self.campaign.campaign_seed() {
            return Err(mismatch(format!(
                "manifest seed {seed}, expected {}",
                self.campaign.campaign_seed()
            )));
        }
        if replicates != self.campaign.replicate_count() {
            return Err(mismatch(format!(
                "manifest replicates {replicates}, expected {}",
                self.campaign.replicate_count()
            )));
        }
        if total_points != total {
            return Err(mismatch(format!(
                "manifest covers {total_points} points, campaign has {total}"
            )));
        }
        let expected_hash = self.spec_hash();
        if spec_hash != expected_hash {
            return Err(mismatch(format!(
                "manifest spec hash {spec_hash:#018x}, campaign hashes to \
                 {expected_hash:#018x} — the parameter space changed"
            )));
        }

        // Is the manifest internally consistent?
        let bitmap = decode_bitmap(&completed, total).map_err(mismatch)?;
        let mut from_records = vec![false; total];
        for point in points {
            let index = point.index;
            if index >= total {
                return Err(mismatch(format!(
                    "point record index {index} out of range for {total} points"
                )));
            }
            if from_records[index] {
                return Err(mismatch(format!(
                    "duplicate point record for index {index}"
                )));
            }
            from_records[index] = true;
            slots[index] = Some(point);
        }
        if bitmap != from_records {
            return Err(mismatch(
                "completed bitmap disagrees with the point records".into(),
            ));
        }
        Ok(slots)
    }

    /// Atomically commits the manifest: write `<path>.tmp`, sync,
    /// rename over the manifest.
    fn commit(&self, slots: &[Option<PointReport>]) -> Result<(), CheckpointError> {
        let text = self.encode(slots);
        let tmp = PathBuf::from(format!("{}.tmp", self.path.display()));
        let mut file = fs::File::create(&tmp).map_err(|e| self.io("create", &e))?;
        file.write_all(text.as_bytes())
            .map_err(|e| self.io("write", &e))?;
        file.write_all(b"\n").map_err(|e| self.io("write", &e))?;
        file.sync_all().map_err(|e| self.io("sync", &e))?;
        drop(file);
        fs::rename(&tmp, self.path).map_err(|e| self.io("rename", &e))
    }

    fn encode(&self, slots: &[Option<PointReport>]) -> String {
        let total = slots.len();
        let mut bitmap = vec![false; total];
        let mut points = Vec::new();
        for (index, slot) in slots.iter().enumerate() {
            if let Some(point) = slot {
                bitmap[index] = true;
                points.push(point_to_json(point));
            }
        }
        obj(vec![
            ("record", Json::Str("campaign_checkpoint".into())),
            ("version", Json::Int(i128::from(CHECKPOINT_VERSION))),
            ("campaign", Json::Str(self.campaign.name().to_string())),
            ("spec_hash", Json::Int(i128::from(self.spec_hash()))),
            ("seed", Json::Int(i128::from(self.campaign.campaign_seed()))),
            (
                "replicates",
                Json::Int(i128::from(self.campaign.replicate_count())),
            ),
            ("total_points", Json::Int(total as i128)),
            ("completed", Json::Str(encode_bitmap(&bitmap))),
            ("points", Json::Arr(points)),
        ])
        .emit()
    }

    /// Fingerprints the campaign spec (name, seed, replicates, axes) by
    /// hashing its canonical JSON emission with [`crate::digest_str`] —
    /// the same primitive behind `qic_core::scenario::SpecDigest`.
    /// Not cryptographic — it guards against *accidental* spec drift
    /// between the run that wrote a manifest and the run resuming it.
    fn spec_hash(&self) -> u64 {
        let spec = obj(vec![
            ("campaign", Json::Str(self.campaign.name().to_string())),
            ("seed", Json::Int(i128::from(self.campaign.campaign_seed()))),
            (
                "replicates",
                Json::Int(i128::from(self.campaign.replicate_count())),
            ),
            (
                "axes",
                Json::Arr(
                    self.campaign
                        .space()
                        .axes()
                        .iter()
                        .map(axis_to_json)
                        .collect(),
                ),
            ),
        ])
        .emit();
        crate::digest_str(&spec)
    }
}

/// Encodes a completion bitmap as lowercase hex: bit `i % 8` of byte
/// `i / 8` is point `i`, bytes in order, two hex digits per byte.
fn encode_bitmap(bits: &[bool]) -> String {
    let mut bytes = vec![0u8; bits.len().div_ceil(8)];
    for (i, &set) in bits.iter().enumerate() {
        if set {
            bytes[i / 8] |= 1 << (i % 8);
        }
    }
    let mut out = String::with_capacity(bytes.len() * 2);
    for byte in bytes {
        let _ = fmt::Write::write_fmt(&mut out, format_args!("{byte:02x}"));
    }
    out
}

/// Decodes [`encode_bitmap`]'s output back into `total` bits, rejecting
/// wrong lengths, non-hex digits, and set bits past `total`.
fn decode_bitmap(text: &str, total: usize) -> Result<Vec<bool>, String> {
    let expected_len = total.div_ceil(8) * 2;
    if text.len() != expected_len {
        return Err(format!(
            "completed bitmap has {} hex digits, expected {expected_len} for {total} points",
            text.len()
        ));
    }
    let mut bits = vec![false; total];
    for (b, pair) in text.as_bytes().chunks(2).enumerate() {
        let hex = std::str::from_utf8(pair).expect("chunks of ASCII hex");
        let byte = u8::from_str_radix(hex, 16)
            .map_err(|_| format!("completed bitmap has non-hex digits {hex:?}"))?;
        for bit in 0..8 {
            let index = b * 8 + bit;
            let set = byte & (1 << bit) != 0;
            if index < total {
                bits[index] = set;
            } else if set {
                return Err(format!(
                    "completed bitmap sets bit {index}, past the last point {}",
                    total - 1
                ));
            }
        }
    }
    Ok(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_round_trips_every_pattern_of_a_small_space() {
        for total in 0..12usize {
            for pattern in 0..(1u32 << total) {
                let bits: Vec<bool> = (0..total).map(|i| pattern & (1 << i) != 0).collect();
                let hex = encode_bitmap(&bits);
                assert_eq!(hex.len(), total.div_ceil(8) * 2);
                assert_eq!(decode_bitmap(&hex, total), Ok(bits));
            }
        }
    }

    #[test]
    fn bitmap_rejects_bad_lengths_digits_and_stray_bits() {
        assert!(decode_bitmap("0", 3).is_err(), "odd/short length");
        assert!(decode_bitmap("0000", 3).is_err(), "too long");
        assert!(decode_bitmap("zz", 3).is_err(), "not hex");
        // Bit 3 set in a 3-point campaign: byte 0b0000_1000 = "08".
        assert!(decode_bitmap("08", 3).is_err(), "bit past the last point");
        assert_eq!(decode_bitmap("07", 3), Ok(vec![true; 3]));
    }

    #[test]
    fn bitmap_uses_little_endian_bit_order() {
        // Point 0 only → bit 0 of byte 0 → "01".
        assert_eq!(encode_bitmap(&[true, false, false]), "01");
        // Points 0 and 9 → "01" then bit 1 of byte 1 → "0102".
        let mut bits = vec![false; 10];
        bits[0] = true;
        bits[9] = true;
        assert_eq!(encode_bitmap(&bits), "0102");
    }
}
