//! Campaign sharding: split a parameter space into contiguous point
//! ranges, run each range anywhere, and merge the shard reports back
//! into the serial campaign's report — byte for byte.
//!
//! A shard is a *contiguous* slice of the campaign's row-major point
//! order. Contiguity is what makes merging trivial and exact: every
//! point completes entirely within one shard (its replicates are never
//! split), so the merge is pure concatenation in index order with no
//! re-aggregation — no floating-point fold whose order could differ
//! from the serial run. Per-point seeds derive from absolute point
//! indices ([`crate::derive_seed`]), so shard `i/K` evaluates its
//! points with exactly the seeds the serial campaign would have used.

use std::fmt;

use crate::report::{CampaignReport, PointReport};

/// One contiguous slice `index/count` of a campaign's point order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shard {
    index: usize,
    count: usize,
}

impl Shard {
    /// Shard `index` of `count` total shards.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or `index >= count`.
    pub fn new(index: usize, count: usize) -> Shard {
        assert!(count >= 1, "shard count must be at least 1");
        assert!(
            index < count,
            "shard index {index} out of range for {count} shards"
        );
        Shard { index, count }
    }

    /// Parses the `i/K` notation used on command lines (zero-based:
    /// `0/4` is the first of four shards). Returns `None` unless both
    /// numbers parse, `K >= 1` and `i < K`.
    pub fn parse(text: &str) -> Option<Shard> {
        let (i, k) = text.split_once('/')?;
        let index: usize = i.trim().parse().ok()?;
        let count: usize = k.trim().parse().ok()?;
        if count >= 1 && index < count {
            Some(Shard { index, count })
        } else {
            None
        }
    }

    /// This shard's zero-based index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Total number of shards in the split.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The contiguous range of point indices this shard owns in a
    /// campaign of `total` points.
    ///
    /// Points split as evenly as possible: the first `total % count`
    /// shards hold one extra point. The ranges of all `count` shards
    /// partition `0..total` exactly — no gaps, no overlap — which the
    /// merge validates again on the way back in.
    pub fn point_range(&self, total: usize) -> std::ops::Range<usize> {
        let base = total / self.count;
        let extra = total % self.count;
        // Shards before this one: `min(index, extra)` of them carry
        // `base + 1` points, the rest carry `base`.
        let start = self.index * base + self.index.min(extra);
        let len = base + usize::from(self.index < extra);
        start..start + len
    }
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Why a set of shard reports could not be merged into one campaign.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeError {
    /// No reports were given — there is nothing to merge.
    Empty,
    /// Two reports disagree on a campaign-level field, so they are not
    /// shards of the same campaign.
    Mismatch {
        /// Which field disagreed (`"name"`, `"seed"`, `"replicates"`,
        /// `"axes"`).
        field: &'static str,
    },
    /// The same point index appears in more than one report.
    Overlap {
        /// The duplicated point index.
        index: usize,
    },
    /// A point index of the campaign's space appears in no report —
    /// the shard set is incomplete.
    Gap {
        /// The missing point index.
        index: usize,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Empty => write!(f, "cannot merge an empty set of shard reports"),
            MergeError::Mismatch { field } => {
                write!(f, "shard reports disagree on campaign {field}")
            }
            MergeError::Overlap { index } => {
                write!(f, "point {index} appears in more than one shard report")
            }
            MergeError::Gap { index } => {
                write!(f, "point {index} is covered by no shard report")
            }
        }
    }
}

impl std::error::Error for MergeError {}

impl CampaignReport {
    /// Merges shard reports back into the full campaign report.
    ///
    /// Every part must agree on name, seed, replicate count and axes,
    /// and their point indices must exactly partition `0..N` where `N`
    /// is the campaign's point count (the product of the axis lengths).
    /// Points are placed by index, so the merged report — and its JSON
    /// and CSV emissions — is byte-identical to the serial run's, for
    /// any shard count and any order of `parts`. Per-point wall times
    /// travel with their points; they remain measurement noise,
    /// excluded from report equality and serialization.
    pub fn merge(parts: Vec<CampaignReport>) -> Result<CampaignReport, MergeError> {
        let mut parts = parts.into_iter();
        let first = parts.next().ok_or(MergeError::Empty)?;
        let total: usize = first.axes.iter().map(|a| a.values().len()).product();

        let mut slots: Vec<Option<(PointReport, u64)>> = Vec::new();
        slots.resize_with(total, || None);
        let mut place = |report: CampaignReport| -> Result<(), MergeError> {
            for (point, wall) in report.points.into_iter().zip(report.wall_ns) {
                let index = point.index;
                if index >= total {
                    // A point outside the space means the axes the
                    // parts agreed on do not describe this report.
                    return Err(MergeError::Mismatch { field: "axes" });
                }
                if slots[index].is_some() {
                    return Err(MergeError::Overlap { index });
                }
                slots[index] = Some((point, wall));
            }
            Ok(())
        };

        let (name, seed, replicates, axes) = (
            first.name.clone(),
            first.seed,
            first.replicates,
            first.axes.clone(),
        );
        place(first)?;
        for part in parts {
            if part.name != name {
                return Err(MergeError::Mismatch { field: "name" });
            }
            if part.seed != seed {
                return Err(MergeError::Mismatch { field: "seed" });
            }
            if part.replicates != replicates {
                return Err(MergeError::Mismatch {
                    field: "replicates",
                });
            }
            if part.axes != axes {
                return Err(MergeError::Mismatch { field: "axes" });
            }
            place(part)?;
        }

        let mut points = Vec::with_capacity(total);
        let mut wall_ns = Vec::with_capacity(total);
        for (index, slot) in slots.into_iter().enumerate() {
            let (point, wall) = slot.ok_or(MergeError::Gap { index })?;
            points.push(point);
            wall_ns.push(wall);
        }
        Ok(CampaignReport {
            name,
            seed,
            replicates,
            axes,
            points,
            wall_ns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_valid_and_rejects_invalid() {
        assert_eq!(Shard::parse("0/1"), Some(Shard::new(0, 1)));
        assert_eq!(Shard::parse("2/4"), Some(Shard::new(2, 4)));
        assert_eq!(Shard::parse("3/4").unwrap().to_string(), "3/4");
        assert_eq!(Shard::parse("4/4"), None, "index must be < count");
        assert_eq!(Shard::parse("0/0"), None, "count must be >= 1");
        assert_eq!(Shard::parse("1"), None);
        assert_eq!(Shard::parse("a/b"), None);
        assert_eq!(Shard::parse("-1/2"), None);
    }

    #[test]
    fn point_ranges_partition_the_space() {
        for total in 0..40usize {
            for count in 1..=9usize {
                let mut covered = 0;
                for index in 0..count {
                    let range = Shard::new(index, count).point_range(total);
                    assert_eq!(range.start, covered, "shard {index}/{count} of {total}");
                    covered = range.end;
                    // Even split: sizes differ by at most one.
                    let size = range.len();
                    assert!(size >= total / count && size <= total / count + 1);
                }
                assert_eq!(covered, total, "{count} shards must cover {total} points");
            }
        }
    }

    #[test]
    fn earlier_shards_take_the_remainder() {
        // 10 points over 4 shards: 3, 3, 2, 2.
        let sizes: Vec<usize> = (0..4)
            .map(|i| Shard::new(i, 4).point_range(10).len())
            .collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }
}
