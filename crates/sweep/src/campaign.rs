//! Campaign definition and execution.

use std::ops::Range;
use std::sync::Arc;

use crate::derive_seed;
use crate::exec::{default_workers, run_indexed_observed, CancelToken, Executor};
use crate::progress::{NoProgress, ProgressSink};
use crate::report::{CampaignReport, PointReport};
use crate::shard::Shard;
use crate::space::{AxisValue, ParamSpace, SweepPoint};
use qic_des::metrics::Metrics;
use qic_des::stats::Tally;

/// Per-evaluation context handed to the campaign's evaluation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunCtx {
    /// The seed for this `(point, replicate)` evaluation, derived by
    /// [`derive_seed`] — identical whatever thread or order ran it.
    pub seed: u64,
    /// Replicate number, `0..replicates`.
    pub replicate: u32,
}

/// A declarative sweep: a parameter space, replication, seeding and a
/// worker budget.
///
/// The evaluation function is supplied at [`Campaign::run`] time, so
/// one campaign definition can drive simulators, analytic models, or
/// anything else that maps a point to [`Metrics`].
///
/// # Example
///
/// ```
/// use qic_sweep::{Axis, Campaign, Metrics, ParamSpace};
///
/// let space = ParamSpace::new()
///     .axis(Axis::ints("n", [1, 2, 3]))
///     .axis(Axis::ints("k", [10, 20]));
/// let report = Campaign::new("toy", space)
///     .workers(4)
///     .run(|point, _ctx| {
///         let v = (point.i64("n") * point.i64("k")) as f64;
///         Metrics::new().with("product", v)
///     });
/// assert_eq!(report.points.len(), 6);
/// assert_eq!(report.mean_at(5, "product"), Some(60.0));
/// ```
#[derive(Debug, Clone)]
pub struct Campaign {
    name: String,
    space: ParamSpace,
    replicates: u32,
    seed: u64,
    workers: usize,
}

impl Campaign {
    /// A campaign over `space` with one replicate, seed 0, and the
    /// default worker budget.
    pub fn new(name: impl Into<String>, space: ParamSpace) -> Campaign {
        Campaign {
            name: name.into(),
            space,
            replicates: 1,
            seed: 0,
            workers: 0,
        }
    }

    /// Sets the replicates evaluated per point (default 1).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn replicates(mut self, n: u32) -> Campaign {
        assert!(n > 0, "campaigns need at least one replicate");
        self.replicates = n;
        self
    }

    /// Sets the campaign-level seed (default 0).
    pub fn seed(mut self, seed: u64) -> Campaign {
        self.seed = seed;
        self
    }

    /// Pins the worker-thread count; `0` (the default) uses
    /// [`default_workers`].
    pub fn workers(mut self, workers: usize) -> Campaign {
        self.workers = workers;
        self
    }

    /// The campaign name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameter space.
    pub fn space(&self) -> &ParamSpace {
        &self.space
    }

    /// Replicates evaluated per point.
    pub fn replicate_count(&self) -> u32 {
        self.replicates
    }

    /// The campaign-level seed per-point seeds derive from.
    pub fn campaign_seed(&self) -> u64 {
        self.seed
    }

    fn resolved_workers(&self) -> usize {
        if self.workers == 0 {
            default_workers()
        } else {
            self.workers
        }
    }

    /// The [`RunCtx`] for one `(point, replicate)` evaluation — the
    /// same derivation whether the campaign runs whole, sharded,
    /// streamed or resumed.
    fn ctx(&self, point_index: usize, replicate: u32) -> RunCtx {
        RunCtx {
            seed: derive_seed(self.seed, point_index as u64, u64::from(replicate)),
            replicate,
        }
    }

    /// Evaluates every `(point, replicate)` on the worker pool and
    /// aggregates the streamed results into a [`CampaignReport`].
    ///
    /// Results are aggregated as they arrive (a point's summary is
    /// finalised the moment its last replicate lands), but addressed by
    /// point index, so the report is byte-identical for any worker
    /// count. A panic inside `eval` cancels the remaining points and
    /// propagates.
    pub fn run<F>(&self, eval: F) -> CampaignReport
    where
        F: Fn(&SweepPoint<'_>, RunCtx) -> Metrics + Sync,
    {
        self.run_with_progress(eval, &NoProgress)
    }

    /// [`Campaign::run`] with a [`ProgressSink`] observing the executor:
    /// the sink hears every task claim and completion as they happen
    /// (points done, in-flight, per-worker attribution).
    ///
    /// Progress output is wall-clock and scheduling-dependent; the
    /// returned report is still byte-identical for any worker count
    /// (per-point wall times are captured in
    /// [`CampaignReport::wall_ns`], which is excluded from report
    /// equality and serialization).
    pub fn run_with_progress<F>(&self, eval: F, progress: &dyn ProgressSink) -> CampaignReport
    where
        F: Fn(&SweepPoint<'_>, RunCtx) -> Metrics + Sync,
    {
        let (points, wall_ns) = self.run_range_buffered(0..self.space.len(), &eval, progress);
        self.report_of(points, wall_ns)
    }

    /// Evaluates the campaign on a shared [`Executor`] instead of the
    /// per-call transient pool — the multi-tenant path behind
    /// `qic-serve`, where many campaigns share one machine fairly.
    ///
    /// The report is **byte-identical** to [`Campaign::run`]'s (same
    /// buffered per-point fold, same derived seeds, index-addressed),
    /// whatever the pool size or concurrent load. Differences from
    /// `run`:
    ///
    /// * scheduling is per **point** (one task per point, replicates
    ///   evaluated in-task), the granularity at which the executor
    ///   round-robins between concurrent submissions;
    /// * the campaign's own [`Campaign::workers`] setting is ignored —
    ///   the pool was sized at [`Executor::new`] (explicit count >
    ///   `QIC_WORKERS` > default);
    /// * `eval` must be `Send + 'static` (the pool's threads outlive
    ///   this call's borrows).
    ///
    /// A panic inside `eval` cancels the remaining points of **this**
    /// campaign and propagates here; concurrent submissions are
    /// unaffected.
    pub fn run_on<F>(&self, exec: &Executor, eval: F) -> CampaignReport
    where
        F: Fn(&SweepPoint<'_>, RunCtx) -> Metrics + Send + Sync + 'static,
    {
        self.run_on_observed(exec, eval, Arc::new(NoProgress), &CancelToken::new())
            .expect("an uncancelled run completes")
    }

    /// [`Campaign::run_on`] with observability and cancellation:
    /// `progress` hears every point claim/finish (task indices are
    /// **point** indices here, with pool-worker attribution), and
    /// tripping `cancel` stops further point claims — in-flight points
    /// finish, then the run returns `None`. `Some(report)` is
    /// byte-identical to [`Campaign::run`]'s.
    pub fn run_on_observed<F>(
        &self,
        exec: &Executor,
        eval: F,
        progress: Arc<dyn ProgressSink + Send + Sync>,
        cancel: &CancelToken,
    ) -> Option<CampaignReport>
    where
        F: Fn(&SweepPoint<'_>, RunCtx) -> Metrics + Send + Sync + 'static,
    {
        let n_points = self.space.len();
        let campaign = Arc::new(self.clone());
        let task = {
            let campaign = Arc::clone(&campaign);
            move |index: usize| -> PointReport {
                let point = campaign.space.point(index);
                // The same replicate-buffering fold as the transient
                // path (`run_range_buffered`), so the report bytes —
                // including per-metric `samples` arrays — match.
                let replicates: Vec<Metrics> = (0..campaign.replicates)
                    .map(|replicate| eval(&point, campaign.ctx(index, replicate)))
                    .collect();
                PointReport::from_replicates(
                    index,
                    point_params(&campaign.space, index),
                    replicates,
                )
            }
        };
        let mut slots: Vec<Option<(PointReport, u64)>> = Vec::new();
        slots.resize_with(n_points, || None);
        let complete = exec.run_indexed_observed(
            n_points,
            task,
            |index, point, wall_ns| slots[index] = Some((point, wall_ns)),
            progress,
            cancel,
        );
        if !complete {
            return None;
        }
        let (points, wall_ns) = slots
            .into_iter()
            .map(|s| s.expect("every point completed"))
            .unzip();
        Some(self.report_of(points, wall_ns))
    }

    /// Evaluates one contiguous shard of the campaign — exactly the
    /// points of [`Shard::point_range`], full replicate buffering like
    /// [`Campaign::run`] — and reports only those points.
    ///
    /// Per-point seeds derive from the point's **absolute** index, so a
    /// shard's evaluations are identical to the same points of a serial
    /// run; merging every shard's report with [`CampaignReport::merge`]
    /// reproduces the serial report byte for byte (JSON and CSV). This
    /// is the cross-process fan-out primitive: run shard `i/K` on
    /// machine `i`, ship the records home, merge.
    ///
    /// [`CampaignReport::merge`]: crate::report::CampaignReport::merge
    pub fn run_shard<F>(&self, shard: Shard, eval: F) -> CampaignReport
    where
        F: Fn(&SweepPoint<'_>, RunCtx) -> Metrics + Sync,
    {
        let range = shard.point_range(self.space.len());
        let (points, wall_ns) = self.run_range_buffered(range, &eval, &NoProgress);
        self.report_of(points, wall_ns)
    }

    /// [`Campaign::run_shard`] with streaming (constant-memory)
    /// aggregation — the shard counterpart of
    /// [`Campaign::run_streaming`], with the same trade-off: summaries
    /// identical to the buffered path, raw replicate samples not
    /// retained.
    pub fn run_shard_streaming<F>(&self, shard: Shard, eval: F) -> CampaignReport
    where
        F: Fn(&SweepPoint<'_>, RunCtx) -> Metrics + Sync,
    {
        let range = shard.point_range(self.space.len());
        let indices: Vec<usize> = range.collect();
        let mut points: Vec<PointReport> = Vec::with_capacity(indices.len());
        let mut wall_ns: Vec<u64> = Vec::with_capacity(indices.len());
        self.run_point_set(&indices, &eval, |point, wall| {
            points.push(point);
            wall_ns.push(wall);
        });
        // Completion order is scheduling-dependent; the report is
        // index-addressed.
        let mut paired: Vec<(PointReport, u64)> = points.into_iter().zip(wall_ns).collect();
        paired.sort_by_key(|(p, _)| p.index);
        let (points, wall_ns) = paired.into_iter().unzip();
        self.report_of(points, wall_ns)
    }

    /// Evaluates the whole campaign with **streaming aggregation**: one
    /// task per point, replicates folded into per-metric Welford
    /// tallies ([`qic_des::stats::Tally`]) as they are produced, so a
    /// point's replicates never co-reside in memory.
    ///
    /// The resulting summaries (and therefore the CSV emitter's bytes)
    /// are bit-for-bit identical to [`Campaign::run`]'s — the fold
    /// visits the same samples in the same order. What streaming gives
    /// up is the raw replicate list: [`PointReport::replicates`] is
    /// empty, so [`CampaignReport::to_json`]'s per-metric `samples`
    /// arrays are empty too. Compare streaming runs against streaming
    /// runs for JSON byte-identity; CSV is identical across both modes.
    pub fn run_streaming<F>(&self, eval: F) -> CampaignReport
    where
        F: Fn(&SweepPoint<'_>, RunCtx) -> Metrics + Sync,
    {
        let mut slots: Vec<Option<(PointReport, u64)>> = Vec::new();
        slots.resize_with(self.space.len(), || None);
        self.run_streaming_with(eval, |point, wall| {
            let i = point.index;
            slots[i] = Some((point, wall));
        });
        let (points, wall_ns) = slots
            .into_iter()
            .map(|s| s.expect("every point completed"))
            .unzip();
        self.report_of(points, wall_ns)
    }

    /// Out-of-core streaming: like [`Campaign::run_streaming`], but
    /// each completed [`PointReport`] is handed to `sink` (with its
    /// wall-clock nanoseconds) **in completion order** instead of being
    /// accumulated — the campaign's memory footprint stays constant in
    /// the number of points. The sink runs on the caller's thread;
    /// append each record to an on-disk spill (see
    /// [`CampaignReport::to_record_json`] for the format) and
    /// reassemble by point index.
    ///
    /// Completion order is scheduling-dependent; the records are not.
    ///
    /// [`CampaignReport::to_record_json`]: crate::report::CampaignReport::to_record_json
    pub fn run_streaming_with<F, S>(&self, eval: F, sink: S)
    where
        F: Fn(&SweepPoint<'_>, RunCtx) -> Metrics + Sync,
        S: FnMut(PointReport, u64),
    {
        let indices: Vec<usize> = (0..self.space.len()).collect();
        self.run_point_set(&indices, &eval, sink);
    }

    /// Buffered (replicate-retaining) evaluation of a contiguous point
    /// range: the engine behind [`Campaign::run`] and
    /// [`Campaign::run_shard`]. Returns the completed points in index
    /// order plus their wall times.
    fn run_range_buffered<F>(
        &self,
        range: Range<usize>,
        eval: &F,
        progress: &dyn ProgressSink,
    ) -> (Vec<PointReport>, Vec<u64>)
    where
        F: Fn(&SweepPoint<'_>, RunCtx) -> Metrics + Sync,
    {
        let base = range.start;
        let n_points = range.len();
        let reps = self.replicates as usize;
        let tasks = n_points * reps;

        // Replicate slots per point, filled as results stream in; a
        // point's report is built once its replicate set completes.
        let mut pending: Vec<Vec<Option<Metrics>>> = vec![vec![None; reps]; n_points];
        let mut remaining: Vec<usize> = vec![reps; n_points];
        let mut reports: Vec<Option<PointReport>> = Vec::new();
        reports.resize_with(n_points, || None);
        // Per-point wall time: replicate wall times summed. Measurement
        // noise only — excluded from report equality and serialization.
        let mut wall_ns: Vec<u64> = vec![0; n_points];

        run_indexed_observed(
            tasks,
            self.resolved_workers(),
            |task| {
                let point = self.space.point(base + task / reps);
                let replicate = (task % reps) as u32;
                eval(&point, self.ctx(point.index(), replicate))
            },
            |task, metrics, task_wall_ns| {
                let (p, r) = (task / reps, task % reps);
                wall_ns[p] = wall_ns[p].saturating_add(task_wall_ns);
                pending[p][r] = Some(metrics);
                remaining[p] -= 1;
                if remaining[p] == 0 {
                    let replicates = pending[p]
                        .iter_mut()
                        .map(|m| m.take().expect("all replicates landed"))
                        .collect();
                    reports[p] = Some(PointReport::from_replicates(
                        base + p,
                        point_params(&self.space, base + p),
                        replicates,
                    ));
                }
            },
            progress,
        );

        (
            reports
                .into_iter()
                .map(|r| r.expect("every point completed"))
                .collect(),
            wall_ns,
        )
    }

    /// Streaming evaluation of an arbitrary point-index set (one task
    /// per point, replicates folded sequentially into tallies): the
    /// engine behind [`Campaign::run_streaming`] and checkpoint resume,
    /// which evaluates exactly the not-yet-completed indices.
    pub(crate) fn run_point_set<F, S>(&self, indices: &[usize], eval: &F, mut sink: S)
    where
        F: Fn(&SweepPoint<'_>, RunCtx) -> Metrics + Sync,
        S: FnMut(PointReport, u64),
    {
        let reps = self.replicates;
        run_indexed_observed(
            indices.len(),
            self.resolved_workers(),
            |task| {
                let point_index = indices[task];
                let point = self.space.point(point_index);
                // First-appearance metric order, samples in replicate
                // order: the same fold `PointReport::from_replicates`
                // performs, so the summaries are bitwise identical —
                // but each replicate's metrics are dropped as soon as
                // they are folded.
                let mut names: Vec<String> = Vec::new();
                let mut tallies: Vec<Tally> = Vec::new();
                for replicate in 0..reps {
                    let metrics = eval(&point, self.ctx(point_index, replicate));
                    for (name, v) in metrics.iter() {
                        match names.iter().position(|n| n == name) {
                            Some(i) => tallies[i].record(v),
                            None => {
                                names.push(name.to_string());
                                let mut t = Tally::new();
                                t.record(v);
                                tallies.push(t);
                            }
                        }
                    }
                }
                PointReport::from_tallies(
                    point_index,
                    point_params(&self.space, point_index),
                    names.into_iter().zip(tallies).collect(),
                )
            },
            |_task, point, wall_ns| sink(point, wall_ns),
            &NoProgress {},
        );
    }

    /// Wraps completed points into the campaign's report envelope.
    pub(crate) fn report_of(&self, points: Vec<PointReport>, wall_ns: Vec<u64>) -> CampaignReport {
        CampaignReport {
            name: self.name.clone(),
            seed: self.seed,
            replicates: self.replicates,
            axes: self.space.axes().to_vec(),
            points,
            wall_ns,
        }
    }
}

fn point_params(space: &ParamSpace, index: usize) -> Vec<(String, AxisValue)> {
    space
        .point(index)
        .params()
        .into_iter()
        .map(|(n, v)| (n.to_string(), v.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Axis;

    fn toy_space() -> ParamSpace {
        ParamSpace::new()
            .axis(Axis::ints("a", [1, 2, 3]))
            .axis(Axis::ints("b", [0, 10]))
    }

    /// A synthetic evaluation that depends on point values, the derived
    /// seed and the replicate — enough structure to catch any
    /// cross-wiring of task indices.
    fn eval(point: &SweepPoint<'_>, ctx: RunCtx) -> Metrics {
        Metrics::new()
            .with("v", (point.i64("a") + point.i64("b")) as f64)
            .with("seed_lo", (ctx.seed % 1000) as f64)
            .with("rep", f64::from(ctx.replicate))
    }

    #[test]
    fn points_land_at_their_index() {
        let report = Campaign::new("t", toy_space()).workers(3).run(eval);
        assert_eq!(report.points.len(), 6);
        for (i, p) in report.points.iter().enumerate() {
            assert_eq!(p.index, i);
        }
        // Point 3 is a=2, b=10.
        assert_eq!(report.mean_at(3, "v"), Some(12.0));
        assert_eq!(report.points[3].param("a"), &AxisValue::Int(2));
    }

    #[test]
    fn replicates_aggregate() {
        let report = Campaign::new("t", toy_space())
            .replicates(3)
            .workers(2)
            .run(eval);
        let p = &report.points[0];
        assert_eq!(p.replicates.len(), 3);
        // Replicate numbers 0,1,2 in order.
        let reps: Vec<f64> = p.replicates.iter().map(|m| m.get("rep").unwrap()).collect();
        assert_eq!(reps, vec![0.0, 1.0, 2.0]);
        assert_eq!(p.mean("rep"), Some(1.0));
        let s = p.summaries.iter().find(|s| s.name == "rep").unwrap();
        assert!(s.ci95.is_some());
        assert_eq!(s.n, 3);
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        let runs: Vec<CampaignReport> = [1, 2, 4, 8]
            .iter()
            .map(|&w| {
                Campaign::new("det", toy_space())
                    .replicates(2)
                    .seed(42)
                    .workers(w)
                    .run(eval)
            })
            .collect();
        for other in &runs[1..] {
            assert_eq!(&runs[0], other);
            assert_eq!(runs[0].to_json(), other.to_json());
            assert_eq!(runs[0].to_csv(), other.to_csv());
        }
    }

    #[test]
    fn progress_run_matches_plain_run_and_captures_wall_times() {
        use crate::progress::JsonlProgress;
        let plain = Campaign::new("p", toy_space())
            .replicates(2)
            .seed(9)
            .workers(2)
            .run(eval);
        let sink = JsonlProgress::new(Vec::new(), 12);
        let observed = Campaign::new("p", toy_space())
            .replicates(2)
            .seed(9)
            .workers(2)
            .run_with_progress(eval, &sink);
        assert_eq!(plain, observed, "observation must not perturb results");
        assert_eq!(plain.to_json(), observed.to_json());
        assert_eq!(observed.wall_ns.len(), 6, "one wall time per point");
        assert_eq!(sink.done(), 12, "6 points x 2 replicates");
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 24, "a start and done line per task");
    }

    #[test]
    fn seeds_differ_by_point_and_replicate() {
        let report = Campaign::new("t", toy_space())
            .replicates(2)
            .seed(7)
            .workers(1)
            .run(eval);
        let mut lows: Vec<f64> = report
            .points
            .iter()
            .flat_map(|p| p.replicates.iter().map(|m| m.get("seed_lo").unwrap()))
            .collect();
        let n = lows.len();
        lows.sort_by(f64::total_cmp);
        lows.dedup();
        // 12 derived seeds; their low digits should essentially all
        // differ (splitmix64 scrambles well).
        assert!(lows.len() >= n - 1, "derived seeds collide: {lows:?}");
    }

    #[test]
    fn empty_space_runs_zero_points() {
        let space = ParamSpace::new().axis(Axis::ints("a", []));
        let report = Campaign::new("empty", space).run(|_, _| unreachable!());
        assert!(report.points.is_empty());
        assert!(report.to_csv().starts_with("index,a"));
    }

    #[test]
    #[should_panic(expected = "at least one replicate")]
    fn zero_replicates_rejected() {
        let _ = Campaign::new("t", toy_space()).replicates(0);
    }

    fn toy_campaign() -> Campaign {
        Campaign::new("t", toy_space())
            .replicates(3)
            .seed(2006)
            .workers(3)
    }

    #[test]
    fn merged_shards_reproduce_the_serial_report_byte_for_byte() {
        let serial = toy_campaign().workers(1).run(eval);
        for count in 1..=6usize {
            let parts: Vec<CampaignReport> = (0..count)
                .map(|i| toy_campaign().run_shard(Shard::new(i, count), eval))
                .collect();
            let merged = CampaignReport::merge(parts).unwrap();
            assert_eq!(merged, serial, "{count} shards");
            assert_eq!(merged.to_json(), serial.to_json(), "{count} shards");
            assert_eq!(merged.to_csv(), serial.to_csv(), "{count} shards");
            assert_eq!(
                merged.to_record_json(),
                serial.to_record_json(),
                "{count} shards"
            );
        }
    }

    #[test]
    fn shard_merge_order_does_not_matter() {
        let serial = toy_campaign().run(eval);
        let mut parts: Vec<CampaignReport> = (0..3)
            .map(|i| toy_campaign().run_shard(Shard::new(i, 3), eval))
            .collect();
        parts.reverse();
        assert_eq!(CampaignReport::merge(parts).unwrap(), serial);
    }

    #[test]
    fn shard_merge_rejects_gaps_overlaps_and_foreign_parts() {
        use crate::shard::MergeError;
        let shard = |i: usize, k: usize| toy_campaign().run_shard(Shard::new(i, k), eval);
        // Missing the second half.
        let err = CampaignReport::merge(vec![shard(0, 2)]).unwrap_err();
        assert!(matches!(err, MergeError::Gap { index: 3 }), "{err}");
        // The same half twice.
        let err = CampaignReport::merge(vec![shard(0, 2), shard(0, 2)]).unwrap_err();
        assert!(matches!(err, MergeError::Overlap { index: 0 }), "{err}");
        // A shard of a different campaign seed.
        let foreign = toy_campaign().seed(7).run_shard(Shard::new(1, 2), eval);
        let err = CampaignReport::merge(vec![shard(0, 2), foreign]).unwrap_err();
        assert!(
            matches!(err, MergeError::Mismatch { field: "seed" }),
            "{err}"
        );
        assert!(CampaignReport::merge(vec![]).is_err());
    }

    #[test]
    fn streaming_matches_buffered_summaries_and_csv() {
        let buffered = toy_campaign().run(eval);
        let streamed = toy_campaign().run_streaming(eval);
        // Summaries are bitwise identical (same fold, same order)...
        for (b, s) in buffered.points.iter().zip(&streamed.points) {
            assert_eq!(b.index, s.index);
            assert_eq!(b.params, s.params);
            assert_eq!(b.summaries, s.summaries);
            // ...but streaming keeps no raw replicates.
            assert_eq!(b.replicates.len(), 3);
            assert!(s.replicates.is_empty());
        }
        // The CSV emitter reads only summaries — identical bytes.
        assert_eq!(buffered.to_csv(), streamed.to_csv());
    }

    #[test]
    fn streaming_is_deterministic_across_worker_counts() {
        let one = toy_campaign().workers(1).run_streaming(eval);
        for w in [2, 4, 8] {
            let many = toy_campaign().workers(w).run_streaming(eval);
            assert_eq!(one, many, "{w} workers");
            assert_eq!(one.to_record_json(), many.to_record_json(), "{w} workers");
        }
    }

    #[test]
    fn merged_streaming_shards_match_the_streaming_run() {
        let whole = toy_campaign().run_streaming(eval);
        let parts: Vec<CampaignReport> = (0..4)
            .map(|i| toy_campaign().run_shard_streaming(Shard::new(i, 4), eval))
            .collect();
        let merged = CampaignReport::merge(parts).unwrap();
        assert_eq!(merged, whole);
        assert_eq!(merged.to_record_json(), whole.to_record_json());
        assert_eq!(merged.to_csv(), whole.to_csv());
    }

    #[test]
    fn streaming_sink_sees_every_point_exactly_once() {
        let mut seen = vec![0usize; 6];
        toy_campaign().run_streaming_with(eval, |point, _wall| {
            seen[point.index] += 1;
        });
        assert_eq!(seen, vec![1; 6]);
    }
}
