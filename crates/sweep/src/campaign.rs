//! Campaign definition and execution.

use crate::derive_seed;
use crate::exec::{default_workers, run_indexed_observed};
use crate::progress::{NoProgress, ProgressSink};
use crate::report::{CampaignReport, PointReport};
use crate::space::{AxisValue, ParamSpace, SweepPoint};
use qic_des::metrics::Metrics;

/// Per-evaluation context handed to the campaign's evaluation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunCtx {
    /// The seed for this `(point, replicate)` evaluation, derived by
    /// [`derive_seed`] — identical whatever thread or order ran it.
    pub seed: u64,
    /// Replicate number, `0..replicates`.
    pub replicate: u32,
}

/// A declarative sweep: a parameter space, replication, seeding and a
/// worker budget.
///
/// The evaluation function is supplied at [`Campaign::run`] time, so
/// one campaign definition can drive simulators, analytic models, or
/// anything else that maps a point to [`Metrics`].
///
/// # Example
///
/// ```
/// use qic_sweep::{Axis, Campaign, Metrics, ParamSpace};
///
/// let space = ParamSpace::new()
///     .axis(Axis::ints("n", [1, 2, 3]))
///     .axis(Axis::ints("k", [10, 20]));
/// let report = Campaign::new("toy", space)
///     .workers(4)
///     .run(|point, _ctx| {
///         let v = (point.i64("n") * point.i64("k")) as f64;
///         Metrics::new().with("product", v)
///     });
/// assert_eq!(report.points.len(), 6);
/// assert_eq!(report.mean_at(5, "product"), Some(60.0));
/// ```
#[derive(Debug, Clone)]
pub struct Campaign {
    name: String,
    space: ParamSpace,
    replicates: u32,
    seed: u64,
    workers: usize,
}

impl Campaign {
    /// A campaign over `space` with one replicate, seed 0, and the
    /// default worker budget.
    pub fn new(name: impl Into<String>, space: ParamSpace) -> Campaign {
        Campaign {
            name: name.into(),
            space,
            replicates: 1,
            seed: 0,
            workers: 0,
        }
    }

    /// Sets the replicates evaluated per point (default 1).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn replicates(mut self, n: u32) -> Campaign {
        assert!(n > 0, "campaigns need at least one replicate");
        self.replicates = n;
        self
    }

    /// Sets the campaign-level seed (default 0).
    pub fn seed(mut self, seed: u64) -> Campaign {
        self.seed = seed;
        self
    }

    /// Pins the worker-thread count; `0` (the default) uses
    /// [`default_workers`].
    pub fn workers(mut self, workers: usize) -> Campaign {
        self.workers = workers;
        self
    }

    /// The campaign name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameter space.
    pub fn space(&self) -> &ParamSpace {
        &self.space
    }

    /// Evaluates every `(point, replicate)` on the worker pool and
    /// aggregates the streamed results into a [`CampaignReport`].
    ///
    /// Results are aggregated as they arrive (a point's summary is
    /// finalised the moment its last replicate lands), but addressed by
    /// point index, so the report is byte-identical for any worker
    /// count. A panic inside `eval` cancels the remaining points and
    /// propagates.
    pub fn run<F>(&self, eval: F) -> CampaignReport
    where
        F: Fn(&SweepPoint<'_>, RunCtx) -> Metrics + Sync,
    {
        self.run_with_progress(eval, &NoProgress)
    }

    /// [`Campaign::run`] with a [`ProgressSink`] observing the executor:
    /// the sink hears every task claim and completion as they happen
    /// (points done, in-flight, per-worker attribution).
    ///
    /// Progress output is wall-clock and scheduling-dependent; the
    /// returned report is still byte-identical for any worker count
    /// (per-point wall times are captured in
    /// [`CampaignReport::wall_ns`], which is excluded from report
    /// equality and serialization).
    pub fn run_with_progress<F>(&self, eval: F, progress: &dyn ProgressSink) -> CampaignReport
    where
        F: Fn(&SweepPoint<'_>, RunCtx) -> Metrics + Sync,
    {
        let n_points = self.space.len();
        let reps = self.replicates as usize;
        let tasks = n_points * reps;
        let workers = if self.workers == 0 {
            default_workers()
        } else {
            self.workers
        };

        // Replicate slots per point, filled as results stream in; a
        // point's report is built once its replicate set completes.
        let mut pending: Vec<Vec<Option<Metrics>>> = vec![vec![None; reps]; n_points];
        let mut remaining: Vec<usize> = vec![reps; n_points];
        let mut reports: Vec<Option<PointReport>> = Vec::new();
        reports.resize_with(n_points, || None);
        // Per-point wall time: replicate wall times summed. Measurement
        // noise only — excluded from report equality and serialization.
        let mut wall_ns: Vec<u64> = vec![0; n_points];

        run_indexed_observed(
            tasks,
            workers,
            |task| {
                let point = self.space.point(task / reps);
                let replicate = (task % reps) as u32;
                let ctx = RunCtx {
                    seed: derive_seed(self.seed, point.index() as u64, u64::from(replicate)),
                    replicate,
                };
                eval(&point, ctx)
            },
            |task, metrics, task_wall_ns| {
                let (p, r) = (task / reps, task % reps);
                wall_ns[p] = wall_ns[p].saturating_add(task_wall_ns);
                pending[p][r] = Some(metrics);
                remaining[p] -= 1;
                if remaining[p] == 0 {
                    let replicates = pending[p]
                        .iter_mut()
                        .map(|m| m.take().expect("all replicates landed"))
                        .collect();
                    reports[p] = Some(PointReport::from_replicates(
                        p,
                        point_params(&self.space, p),
                        replicates,
                    ));
                }
            },
            progress,
        );

        CampaignReport {
            name: self.name.clone(),
            seed: self.seed,
            replicates: self.replicates,
            axes: self.space.axes().to_vec(),
            points: reports
                .into_iter()
                .map(|r| r.expect("every point completed"))
                .collect(),
            wall_ns,
        }
    }
}

fn point_params(space: &ParamSpace, index: usize) -> Vec<(String, AxisValue)> {
    space
        .point(index)
        .params()
        .into_iter()
        .map(|(n, v)| (n.to_string(), v.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Axis;

    fn toy_space() -> ParamSpace {
        ParamSpace::new()
            .axis(Axis::ints("a", [1, 2, 3]))
            .axis(Axis::ints("b", [0, 10]))
    }

    /// A synthetic evaluation that depends on point values, the derived
    /// seed and the replicate — enough structure to catch any
    /// cross-wiring of task indices.
    fn eval(point: &SweepPoint<'_>, ctx: RunCtx) -> Metrics {
        Metrics::new()
            .with("v", (point.i64("a") + point.i64("b")) as f64)
            .with("seed_lo", (ctx.seed % 1000) as f64)
            .with("rep", f64::from(ctx.replicate))
    }

    #[test]
    fn points_land_at_their_index() {
        let report = Campaign::new("t", toy_space()).workers(3).run(eval);
        assert_eq!(report.points.len(), 6);
        for (i, p) in report.points.iter().enumerate() {
            assert_eq!(p.index, i);
        }
        // Point 3 is a=2, b=10.
        assert_eq!(report.mean_at(3, "v"), Some(12.0));
        assert_eq!(report.points[3].param("a"), &AxisValue::Int(2));
    }

    #[test]
    fn replicates_aggregate() {
        let report = Campaign::new("t", toy_space())
            .replicates(3)
            .workers(2)
            .run(eval);
        let p = &report.points[0];
        assert_eq!(p.replicates.len(), 3);
        // Replicate numbers 0,1,2 in order.
        let reps: Vec<f64> = p.replicates.iter().map(|m| m.get("rep").unwrap()).collect();
        assert_eq!(reps, vec![0.0, 1.0, 2.0]);
        assert_eq!(p.mean("rep"), Some(1.0));
        let s = p.summaries.iter().find(|s| s.name == "rep").unwrap();
        assert!(s.ci95.is_some());
        assert_eq!(s.n, 3);
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        let runs: Vec<CampaignReport> = [1, 2, 4, 8]
            .iter()
            .map(|&w| {
                Campaign::new("det", toy_space())
                    .replicates(2)
                    .seed(42)
                    .workers(w)
                    .run(eval)
            })
            .collect();
        for other in &runs[1..] {
            assert_eq!(&runs[0], other);
            assert_eq!(runs[0].to_json(), other.to_json());
            assert_eq!(runs[0].to_csv(), other.to_csv());
        }
    }

    #[test]
    fn progress_run_matches_plain_run_and_captures_wall_times() {
        use crate::progress::JsonlProgress;
        let plain = Campaign::new("p", toy_space())
            .replicates(2)
            .seed(9)
            .workers(2)
            .run(eval);
        let sink = JsonlProgress::new(Vec::new(), 12);
        let observed = Campaign::new("p", toy_space())
            .replicates(2)
            .seed(9)
            .workers(2)
            .run_with_progress(eval, &sink);
        assert_eq!(plain, observed, "observation must not perturb results");
        assert_eq!(plain.to_json(), observed.to_json());
        assert_eq!(observed.wall_ns.len(), 6, "one wall time per point");
        assert_eq!(sink.done(), 12, "6 points x 2 replicates");
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 24, "a start and done line per task");
    }

    #[test]
    fn seeds_differ_by_point_and_replicate() {
        let report = Campaign::new("t", toy_space())
            .replicates(2)
            .seed(7)
            .workers(1)
            .run(eval);
        let mut lows: Vec<f64> = report
            .points
            .iter()
            .flat_map(|p| p.replicates.iter().map(|m| m.get("seed_lo").unwrap()))
            .collect();
        let n = lows.len();
        lows.sort_by(f64::total_cmp);
        lows.dedup();
        // 12 derived seeds; their low digits should essentially all
        // differ (splitmix64 scrambles well).
        assert!(lows.len() >= n - 1, "derived seeds collide: {lows:?}");
    }

    #[test]
    fn empty_space_runs_zero_points() {
        let space = ParamSpace::new().axis(Axis::ints("a", []));
        let report = Campaign::new("empty", space).run(|_, _| unreachable!());
        assert!(report.points.is_empty());
        assert!(report.to_csv().starts_with("index,a"));
    }

    #[test]
    #[should_panic(expected = "at least one replicate")]
    fn zero_replicates_rejected() {
        let _ = Campaign::new("t", toy_space()).replicates(0);
    }
}
