//! Declarative parameter spaces: named axes and their Cartesian product.
//!
//! A [`ParamSpace`] is an ordered list of [`Axis`] values; its points are
//! the Cartesian product, enumerated in **row-major order** (the last
//! axis varies fastest). Point enumeration is a pure function of the
//! space, so a campaign's point indices are stable across runs, thread
//! counts, and execution orders.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One coordinate value along an axis.
///
/// Axes are heterogeneous: resource counts are integers, error rates are
/// floats, and layouts or strategies are labels that the campaign
/// definition maps back onto domain types (usually via
/// [`SweepPoint::coord`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AxisValue {
    /// An integer coordinate (grid sizes, depths, seeds, ratios).
    Int(i64),
    /// A floating-point coordinate (error rates, cost factors).
    F64(f64),
    /// A categorical coordinate (layout names, strategy legends).
    Text(String),
}

impl AxisValue {
    /// The value as an `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            AxisValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen; text is `None`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AxisValue::Int(v) => Some(*v as f64),
            AxisValue::F64(v) => Some(*v),
            AxisValue::Text(_) => None,
        }
    }

    /// The value as a string slice, if it is text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            AxisValue::Text(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for AxisValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Delegate so width/alignment flags pass through.
        match self {
            AxisValue::Int(v) => fmt::Display::fmt(v, f),
            AxisValue::F64(v) => fmt::Display::fmt(v, f),
            AxisValue::Text(s) => f.pad(s),
        }
    }
}

/// A named sweep dimension with an explicit, ordered value list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Axis {
    name: String,
    values: Vec<AxisValue>,
}

impl Axis {
    /// An axis over explicit values.
    pub fn list(name: impl Into<String>, values: Vec<AxisValue>) -> Axis {
        Axis {
            name: name.into(),
            values,
        }
    }

    /// An integer axis over explicit values.
    pub fn ints(name: impl Into<String>, values: impl IntoIterator<Item = i64>) -> Axis {
        Axis::list(name, values.into_iter().map(AxisValue::Int).collect())
    }

    /// A float axis over explicit values.
    pub fn f64s(name: impl Into<String>, values: impl IntoIterator<Item = f64>) -> Axis {
        Axis::list(name, values.into_iter().map(AxisValue::F64).collect())
    }

    /// A categorical axis over labels.
    pub fn labels<S: Into<String>>(
        name: impl Into<String>,
        values: impl IntoIterator<Item = S>,
    ) -> Axis {
        Axis::list(
            name,
            values
                .into_iter()
                .map(|s| AxisValue::Text(s.into()))
                .collect(),
        )
    }

    /// A linearly spaced float axis: `start + i·step` for `i < count`.
    pub fn linear(name: impl Into<String>, start: f64, step: f64, count: usize) -> Axis {
        Axis::f64s(
            name,
            (0..count)
                .map(move |i| start + i as f64 * step)
                .collect::<Vec<_>>(),
        )
    }

    /// A log-spaced float axis: `10^(start_exp + i/per_decade)` covering
    /// `[10^start_exp, 10^stop_exp]` inclusive, `per_decade` points per
    /// decade.
    ///
    /// # Panics
    ///
    /// Panics if `stop_exp <= start_exp` or `per_decade` is zero.
    pub fn log_spaced(
        name: impl Into<String>,
        start_exp: i32,
        stop_exp: i32,
        per_decade: u32,
    ) -> Axis {
        assert!(stop_exp > start_exp, "log axis needs stop_exp > start_exp");
        assert!(
            per_decade > 0,
            "log axis needs at least one point per decade"
        );
        let decades = (stop_exp - start_exp) as u32;
        let count = decades * per_decade;
        let values = (0..=count)
            .map(|i| {
                let exp = f64::from(start_exp) + f64::from(i) / f64::from(per_decade);
                10f64.powf(exp)
            })
            .collect::<Vec<_>>();
        Axis::f64s(name, values)
    }

    /// The axis name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The axis values, in sweep order.
    pub fn values(&self) -> &[AxisValue] {
        &self.values
    }

    /// Number of values along this axis.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the axis has no values (its space has zero points).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// The Cartesian product of a list of axes.
///
/// An empty space (no axes) has exactly one point: the empty coordinate
/// tuple. A space containing an empty axis has zero points.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ParamSpace {
    axes: Vec<Axis>,
}

impl ParamSpace {
    /// An empty space (one point, no coordinates).
    pub fn new() -> ParamSpace {
        ParamSpace::default()
    }

    /// Appends an axis (builder style).
    ///
    /// # Panics
    ///
    /// Panics if an axis with the same name is already present.
    pub fn axis(mut self, axis: Axis) -> ParamSpace {
        assert!(
            self.axes.iter().all(|a| a.name != axis.name),
            "duplicate axis name {:?}",
            axis.name
        );
        self.axes.push(axis);
        self
    }

    /// The axes, in declaration order.
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// Total number of points (product of axis lengths).
    pub fn len(&self) -> usize {
        self.axes.iter().map(Axis::len).product()
    }

    /// Whether the space has zero points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The point at `index` in row-major order (last axis fastest).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn point(&self, index: usize) -> SweepPoint<'_> {
        assert!(index < self.len(), "point {index} out of {}", self.len());
        let mut coords = vec![0usize; self.axes.len()];
        let mut rest = index;
        for (i, axis) in self.axes.iter().enumerate().rev() {
            coords[i] = rest % axis.len();
            rest /= axis.len();
        }
        SweepPoint {
            space: self,
            index,
            coords,
        }
    }

    /// Iterates over every point in index order.
    pub fn points(&self) -> impl Iterator<Item = SweepPoint<'_>> {
        (0..self.len()).map(|i| self.point(i))
    }
}

/// One point of a [`ParamSpace`]: an index plus per-axis coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint<'a> {
    space: &'a ParamSpace,
    index: usize,
    coords: Vec<usize>,
}

impl SweepPoint<'_> {
    /// The point's linear index in row-major order.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The coordinate (value index) along axis number `axis`.
    ///
    /// Useful for mapping a categorical axis back onto a domain constant
    /// table (e.g. `Layout::ALL[point.coord(1)]`).
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range.
    pub fn coord(&self, axis: usize) -> usize {
        self.coords[axis]
    }

    /// The value along the named axis.
    ///
    /// # Panics
    ///
    /// Panics if no axis has that name (a campaign-definition bug).
    pub fn value(&self, name: &str) -> &AxisValue {
        let (i, axis) = self
            .space
            .axes
            .iter()
            .enumerate()
            .find(|(_, a)| a.name == name)
            .unwrap_or_else(|| panic!("no axis named {name:?}"));
        &axis.values[self.coords[i]]
    }

    /// The named axis value as `i64`.
    ///
    /// # Panics
    ///
    /// Panics if the axis is missing or not an integer axis.
    pub fn i64(&self, name: &str) -> i64 {
        self.value(name)
            .as_i64()
            .unwrap_or_else(|| panic!("axis {name:?} is not an integer axis"))
    }

    /// The named axis value as `u32`.
    ///
    /// # Panics
    ///
    /// Panics if the axis is missing, not integer, or out of `u32` range.
    pub fn u32(&self, name: &str) -> u32 {
        u32::try_from(self.i64(name))
            .unwrap_or_else(|_| panic!("axis {name:?} value out of u32 range"))
    }

    /// The named axis value as `f64` (integers widen).
    ///
    /// # Panics
    ///
    /// Panics if the axis is missing or categorical.
    pub fn f64(&self, name: &str) -> f64 {
        self.value(name)
            .as_f64()
            .unwrap_or_else(|| panic!("axis {name:?} is not numeric"))
    }

    /// The named axis value as text.
    ///
    /// # Panics
    ///
    /// Panics if the axis is missing or not categorical.
    pub fn text(&self, name: &str) -> &str {
        self.value(name)
            .as_text()
            .unwrap_or_else(|| panic!("axis {name:?} is not categorical"))
    }

    /// `name=value` pairs for every axis, in axis order.
    pub fn params(&self) -> Vec<(&str, &AxisValue)> {
        self.space
            .axes
            .iter()
            .zip(&self.coords)
            .map(|(a, &c)| (a.name.as_str(), &a.values[c]))
            .collect()
    }
}

impl fmt::Display for SweepPoint<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.index)?;
        for (name, value) in self.params() {
            write!(f, " {name}={value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ParamSpace {
        ParamSpace::new()
            .axis(Axis::ints("a", [1, 2]))
            .axis(Axis::labels("b", ["x", "y", "z"]))
    }

    #[test]
    fn row_major_enumeration() {
        let s = space();
        assert_eq!(s.len(), 6);
        let p = s.point(0);
        assert_eq!((p.coord(0), p.coord(1)), (0, 0));
        // Last axis varies fastest.
        let p = s.point(1);
        assert_eq!((p.coord(0), p.coord(1)), (0, 1));
        let p = s.point(3);
        assert_eq!((p.coord(0), p.coord(1)), (1, 0));
        let p = s.point(5);
        assert_eq!((p.coord(0), p.coord(1)), (1, 2));
        assert_eq!(s.points().count(), 6);
    }

    #[test]
    fn point_accessors() {
        let s = space();
        let p = s.point(4); // a=2, b="y"
        assert_eq!(p.index(), 4);
        assert_eq!(p.i64("a"), 2);
        assert_eq!(p.u32("a"), 2);
        assert_eq!(p.f64("a"), 2.0);
        assert_eq!(p.text("b"), "y");
        assert_eq!(p.to_string(), "#4 a=2 b=y");
        assert_eq!(p.params().len(), 2);
    }

    #[test]
    #[should_panic(expected = "no axis named")]
    fn unknown_axis_panics() {
        let s = space();
        let _ = s.point(0).value("nope");
    }

    #[test]
    #[should_panic(expected = "duplicate axis name")]
    fn duplicate_axis_rejected() {
        let _ = ParamSpace::new()
            .axis(Axis::ints("a", [1]))
            .axis(Axis::f64s("a", [1.0]));
    }

    #[test]
    fn empty_space_has_one_point() {
        let s = ParamSpace::new();
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert_eq!(s.point(0).params().len(), 0);
    }

    #[test]
    fn empty_axis_empties_the_space() {
        let s = ParamSpace::new().axis(Axis::ints("a", []));
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert!(s.axes()[0].is_empty());
    }

    #[test]
    fn linear_axis() {
        let a = Axis::linear("x", 1.0, 0.5, 4);
        let vals: Vec<f64> = a.values().iter().map(|v| v.as_f64().unwrap()).collect();
        assert_eq!(vals, vec![1.0, 1.5, 2.0, 2.5]);
    }

    #[test]
    fn log_axis_matches_powf_grid() {
        // Must reproduce the `10^(a + i/k)` grid used by the Figure 12
        // sweep bit-for-bit.
        let a = Axis::log_spaced("p", -9, -4, 4);
        assert_eq!(a.len(), 21);
        for (i, v) in a.values().iter().enumerate() {
            let expect = 10f64.powf(-9.0 + i as f64 / 4.0);
            assert_eq!(v.as_f64().unwrap().to_bits(), expect.to_bits());
        }
        assert_eq!(a.values()[0].as_f64().unwrap(), 1e-9);
    }

    #[test]
    fn axis_value_conversions() {
        assert_eq!(AxisValue::Int(3).as_f64(), Some(3.0));
        assert_eq!(AxisValue::F64(0.5).as_f64(), Some(0.5));
        assert_eq!(AxisValue::F64(0.5).as_i64(), None);
        assert_eq!(AxisValue::Text("q".into()).as_f64(), None);
        assert_eq!(AxisValue::Text("q".into()).as_text(), Some("q"));
        assert_eq!(AxisValue::Int(3).as_text(), None);
        assert_eq!(AxisValue::F64(0.25).to_string(), "0.25");
    }
}
