//! Campaign results: per-point records, replicate aggregation, and
//! deterministic CSV / JSON emitters.
//!
//! The vendored `serde` stand-in provides trait names but no wire
//! format (see `vendor/README.md`), so the emitters here format
//! directly: floats use Rust's shortest-roundtrip `Display`, non-finite
//! values become `null` (JSON) or empty cells (CSV), and every
//! collection is emitted in point-index order. Two runs of the same
//! campaign therefore produce byte-identical output regardless of
//! worker count.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use qic_des::stats::Tally;

use crate::json::{check_fields, get, obj, Json, JsonError};
use crate::space::{Axis, AxisValue};
use qic_des::metrics::Metrics;

/// Schema version of the lossless record codec
/// ([`CampaignReport::to_record_json`] and the point records inside
/// checkpoint manifests). Bumped on any incompatible change; decoding
/// surfaces a mismatch instead of guessing.
pub const RECORD_VERSION: u32 = 1;

/// Replicate aggregate of one metric at one point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSummary {
    /// Metric name.
    pub name: String,
    /// Mean over replicates.
    pub mean: f64,
    /// 95% confidence half-width (normal approximation); `None` with
    /// fewer than two replicates.
    pub ci95: Option<f64>,
    /// Smallest replicate value.
    pub min: f64,
    /// Largest replicate value.
    pub max: f64,
    /// Replicates aggregated.
    pub n: u64,
}

/// Results at one sweep point: raw replicates plus their aggregation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointReport {
    /// The point's row-major index in the campaign's space.
    pub index: usize,
    /// `(axis name, value)` pairs, in axis order.
    pub params: Vec<(String, AxisValue)>,
    /// Raw metrics, one entry per replicate.
    pub replicates: Vec<Metrics>,
    /// Replicate aggregates, in first-replicate metric order.
    pub summaries: Vec<MetricSummary>,
}

impl PointReport {
    /// Aggregates a point's replicates.
    ///
    /// Metric order is the union over all replicates in first-appearance
    /// order (a metric may be conditional — e.g. latency percentiles
    /// exist only when communications completed); replicates missing a
    /// metric simply contribute no sample to it.
    pub fn from_replicates(
        index: usize,
        params: Vec<(String, AxisValue)>,
        replicates: Vec<Metrics>,
    ) -> PointReport {
        let mut names: Vec<&str> = Vec::new();
        for rep in &replicates {
            for name in rep.names() {
                if !names.contains(&name) {
                    names.push(name);
                }
            }
        }
        let mut summaries = Vec::new();
        for name in names {
            let mut tally = Tally::new();
            for rep in &replicates {
                if let Some(v) = rep.get(name) {
                    tally.record(v);
                }
            }
            summaries.push(MetricSummary {
                name: name.to_string(),
                mean: tally.mean().unwrap_or(f64::NAN),
                ci95: tally.ci95_half_width(),
                min: tally.min().unwrap_or(f64::NAN),
                max: tally.max().unwrap_or(f64::NAN),
                n: tally.count(),
            });
        }
        PointReport {
            index,
            params,
            replicates,
            summaries,
        }
    }

    /// Builds a point report from streamed per-metric tallies instead
    /// of buffered replicates (the constant-memory aggregation path —
    /// see [`Campaign::run_streaming`]).
    ///
    /// `tallies` must be in first-appearance metric order with samples
    /// recorded in replicate order; the summaries are then bit-for-bit
    /// identical to [`PointReport::from_replicates`] over the same
    /// evaluations. [`PointReport::replicates`] stays empty — raw
    /// samples are exactly what streaming aggregation does not retain.
    ///
    /// [`Campaign::run_streaming`]: crate::campaign::Campaign::run_streaming
    pub fn from_tallies(
        index: usize,
        params: Vec<(String, AxisValue)>,
        tallies: Vec<(String, Tally)>,
    ) -> PointReport {
        let summaries = tallies
            .into_iter()
            .map(|(name, tally)| MetricSummary {
                name,
                mean: tally.mean().unwrap_or(f64::NAN),
                ci95: tally.ci95_half_width(),
                min: tally.min().unwrap_or(f64::NAN),
                max: tally.max().unwrap_or(f64::NAN),
                n: tally.count(),
            })
            .collect();
        PointReport {
            index,
            params,
            replicates: Vec::new(),
            summaries,
        }
    }

    /// The replicate mean of a metric, if it was reported.
    pub fn mean(&self, metric: &str) -> Option<f64> {
        self.summaries
            .iter()
            .find(|s| s.name == metric)
            .map(|s| s.mean)
    }

    /// Per-replicate values of a metric, in replicate order (replicates
    /// that did not report it are skipped). The raw data lives once, in
    /// [`PointReport::replicates`]; this is a view over it.
    pub fn samples(&self, metric: &str) -> Vec<f64> {
        self.replicates
            .iter()
            .filter_map(|r| r.get(metric))
            .collect()
    }

    /// The named parameter value of this point.
    ///
    /// # Panics
    ///
    /// Panics if the campaign has no such axis.
    pub fn param(&self, name: &str) -> &AxisValue {
        self.params
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("no axis named {name:?}"))
    }
}

/// The full, deterministic result of a campaign run.
///
/// Contains everything needed to regenerate a figure or table: the
/// campaign identity, the swept axes, and one [`PointReport`] per point
/// in row-major index order. Worker count is deliberately *not*
/// recorded — the report of a campaign is identical however it was
/// scheduled.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Campaign name (figure/table identifier).
    pub name: String,
    /// Campaign-level seed the per-point seeds derive from.
    pub seed: u64,
    /// Replicates evaluated per point.
    pub replicates: u32,
    /// The swept axes.
    pub axes: Vec<Axis>,
    /// Per-point results, ordered by point index.
    pub points: Vec<PointReport>,
    /// Wall-clock nanoseconds spent evaluating each point (replicate
    /// times summed), indexed like [`CampaignReport::points`].
    /// Measurement noise: excluded from report equality and from the
    /// [`to_json`](CampaignReport::to_json) /
    /// [`to_csv`](CampaignReport::to_csv) emitters, so the determinism
    /// contract is untouched.
    pub wall_ns: Vec<u64>,
}

/// Wall times are scheduling noise; equality covers only the
/// deterministic payload, so reports from different worker counts (or
/// machines) compare equal when their results agree.
impl PartialEq for CampaignReport {
    fn eq(&self, other: &CampaignReport) -> bool {
        self.name == other.name
            && self.seed == other.seed
            && self.replicates == other.replicates
            && self.axes == other.axes
            && self.points == other.points
    }
}

impl CampaignReport {
    /// Total wall-clock nanoseconds spent evaluating points (excludes
    /// scheduling overhead; overlapping worker time sums, so this can
    /// exceed the campaign's elapsed time).
    pub fn total_wall_ns(&self) -> u64 {
        self.wall_ns.iter().fold(0, |acc, w| acc.saturating_add(*w))
    }

    /// The replicate mean of `metric` at point `index`.
    ///
    /// # Panics
    ///
    /// Panics if the point index is out of range.
    pub fn mean_at(&self, index: usize, metric: &str) -> Option<f64> {
        self.points[index].mean(metric)
    }

    /// Serialises the report as deterministic JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"campaign\": {},", json_str(&self.name));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"replicates\": {},", self.replicates);
        out.push_str("  \"axes\": [\n");
        for (i, axis) in self.axes.iter().enumerate() {
            let values = axis
                .values()
                .iter()
                .map(json_value)
                .collect::<Vec<_>>()
                .join(", ");
            let _ = write!(
                out,
                "    {{\"name\": {}, \"values\": [{}]}}",
                json_str(axis.name()),
                values
            );
            out.push_str(if i + 1 < self.axes.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n  \"points\": [\n");
        for (i, point) in self.points.iter().enumerate() {
            out.push_str("    {");
            let _ = write!(out, "\"index\": {}, \"params\": {{", point.index);
            for (j, (name, value)) in point.params.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}: {}", json_str(name), json_value(value));
            }
            out.push_str("}, \"metrics\": {");
            for (j, s) in point.summaries.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let samples = point
                    .samples(&s.name)
                    .iter()
                    .map(|v| json_f64(*v))
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = write!(
                    out,
                    "{}: {{\"mean\": {}, \"ci95\": {}, \"min\": {}, \"max\": {}, \"n\": {}, \"samples\": [{}]}}",
                    json_str(&s.name),
                    json_f64(s.mean),
                    s.ci95.map_or("null".to_string(), json_f64),
                    json_f64(s.min),
                    json_f64(s.max),
                    s.n,
                    samples
                );
            }
            out.push_str("}}");
            out.push_str(if i + 1 < self.points.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Serialises the report as CSV: one row per point, columns for
    /// every axis followed by `mean/ci95/min/max` per metric.
    ///
    /// Metric columns are the union across all points in
    /// first-appearance order, so conditional metrics (e.g. latency
    /// percentiles of a point that completed no communication) leave
    /// empty cells instead of shifting the row. `ci95` is empty with
    /// fewer than two replicates; non-finite values are empty cells.
    pub fn to_csv(&self) -> String {
        let mut columns: Vec<&str> = Vec::new();
        for point in &self.points {
            for s in &point.summaries {
                if !columns.contains(&s.name.as_str()) {
                    columns.push(&s.name);
                }
            }
        }
        let mut out = String::new();
        out.push_str("index");
        for axis in &self.axes {
            let _ = write!(out, ",{}", csv_str(axis.name()));
        }
        for name in &columns {
            for stat in ["mean", "ci95", "min", "max"] {
                // Quote the whole cell, not just the metric-name part.
                let _ = write!(out, ",{}", csv_str(&format!("{name}.{stat}")));
            }
        }
        out.push_str(",replicates\n");
        for point in &self.points {
            let _ = write!(out, "{}", point.index);
            for (_, value) in &point.params {
                out.push(',');
                match value {
                    AxisValue::Int(v) => {
                        let _ = write!(out, "{v}");
                    }
                    AxisValue::F64(v) => out.push_str(&csv_f64(*v)),
                    AxisValue::Text(s) => out.push_str(&csv_str(s)),
                }
            }
            for name in &columns {
                match point.summaries.iter().find(|s| &s.name == name) {
                    Some(s) => {
                        let _ = write!(
                            out,
                            ",{},{},{},{}",
                            csv_f64(s.mean),
                            s.ci95.map(csv_f64).unwrap_or_default(),
                            csv_f64(s.min),
                            csv_f64(s.max)
                        );
                    }
                    None => out.push_str(",,,,"),
                }
            }
            // The campaign-level replicate count, not the buffered
            // replicate list: every point runs exactly this many, and
            // streaming-mode reports (which keep no raw replicates)
            // must emit the same bytes as buffered ones.
            let _ = writeln!(out, ",{}", self.replicates);
        }
        out
    }

    /// Serialises the report as a **lossless** single-line JSON record:
    /// everything [`PartialEq`] compares — name, seed, replicates,
    /// axes, and every point with raw replicates and summaries, floats
    /// bit-exact (including `-0.0`, `NaN` and infinities) — and nothing
    /// it does not: [`CampaignReport::wall_ns`] is deliberately
    /// excluded, so records from different processes or machines merge
    /// and compare cleanly.
    ///
    /// This is the shard hand-off and checkpoint format;
    /// [`CampaignReport::to_json`] stays the human-facing emitter.
    pub fn to_record_json(&self) -> String {
        obj(vec![
            ("record", Json::Str("campaign_report".into())),
            ("version", Json::Int(i128::from(RECORD_VERSION))),
            ("campaign", Json::Str(self.name.clone())),
            ("seed", Json::Int(i128::from(self.seed))),
            ("replicates", Json::Int(i128::from(self.replicates))),
            (
                "axes",
                Json::Arr(self.axes.iter().map(axis_to_json).collect()),
            ),
            (
                "points",
                Json::Arr(self.points.iter().map(point_to_json).collect()),
            ),
        ])
        .emit()
    }

    /// Parses a record produced by [`CampaignReport::to_record_json`].
    ///
    /// Strict: unknown or duplicate fields, a wrong `record` tag and a
    /// [`RECORD_VERSION`] mismatch are all rejected with a structured
    /// error. Wall times are not part of the record;
    /// [`CampaignReport::wall_ns`] comes back zeroed (and is excluded
    /// from equality and the emitters, so round-tripped reports compare
    /// and emit identically).
    ///
    /// # Errors
    ///
    /// [`JsonError`] on syntax, schema or version problems.
    pub fn from_record_json(text: &str) -> Result<CampaignReport, JsonError> {
        let value = Json::parse(text)?;
        let fields = value.obj_of("campaign record")?;
        check_fields(
            fields,
            &[
                "record",
                "version",
                "campaign",
                "seed",
                "replicates",
                "axes",
                "points",
            ],
            "campaign record",
        )?;
        let tag = get(fields, "record", "campaign record")?.str_of("record")?;
        if tag != "campaign_report" {
            return Err(Json::schema_err(format!(
                "campaign record: unexpected record tag {tag:?}"
            )));
        }
        let version = get(fields, "version", "campaign record")?.u32_of("version")?;
        if version != RECORD_VERSION {
            return Err(Json::schema_err(format!(
                "campaign record: version {version}, this build reads version {RECORD_VERSION}"
            )));
        }
        let points: Vec<PointReport> = get(fields, "points", "campaign record")?
            .arr_of("points")?
            .iter()
            .map(point_from_json)
            .collect::<Result<_, _>>()?;
        let wall_ns = vec![0; points.len()];
        Ok(CampaignReport {
            name: get(fields, "campaign", "campaign record")?
                .str_of("campaign")?
                .to_string(),
            seed: get(fields, "seed", "campaign record")?.u64_of("seed")?,
            replicates: get(fields, "replicates", "campaign record")?.u32_of("replicates")?,
            axes: get(fields, "axes", "campaign record")?
                .arr_of("axes")?
                .iter()
                .map(axis_from_json)
                .collect::<Result<_, _>>()?,
            points,
            wall_ns,
        })
    }
}

// --- Lossless record codec helpers -----------------------------------------
//
// Shared by the campaign record above and the checkpoint manifest
// (`crate::checkpoint`). Every f64 must survive the round trip
// bit-for-bit: finite values ride the shortest-roundtrip float literal
// (which `qic_sweep::json` guarantees, `-0.0` included); non-finite
// values — which JSON numbers cannot carry — become tagged strings.

/// Encodes an `f64` losslessly (non-finite values as strings).
pub(crate) fn f64_to_json(v: f64) -> Json {
    if v.is_finite() {
        Json::Float(v)
    } else if v.is_nan() {
        Json::Str("NaN".into())
    } else if v > 0.0 {
        Json::Str("Inf".into())
    } else {
        Json::Str("-Inf".into())
    }
}

/// Decodes an `f64` written by [`f64_to_json`].
pub(crate) fn f64_from_json(value: &Json, ctx: &str) -> Result<f64, JsonError> {
    match value {
        Json::Float(v) => Ok(*v),
        Json::Int(v) => Ok(*v as f64),
        Json::Str(s) => match s.as_str() {
            "NaN" => Ok(f64::NAN),
            "Inf" => Ok(f64::INFINITY),
            "-Inf" => Ok(f64::NEG_INFINITY),
            other => Err(Json::schema_err(format!(
                "{ctx}: expected a number or NaN/Inf/-Inf, got {other:?}"
            ))),
        },
        other => Err(Json::schema_err(format!(
            "{ctx}: expected a number, got {other:?}"
        ))),
    }
}

fn axis_value_to_json(v: &AxisValue) -> Json {
    match v {
        AxisValue::Int(i) => Json::Int(i128::from(*i)),
        // A non-finite float coordinate cannot ride a bare string (it
        // would decode as Text); tag it as a one-field object.
        AxisValue::F64(f) if !f.is_finite() => obj(vec![("f64", f64_to_json(*f))]),
        AxisValue::F64(f) => Json::Float(*f),
        AxisValue::Text(s) => Json::Str(s.clone()),
    }
}

fn axis_value_from_json(value: &Json, ctx: &str) -> Result<AxisValue, JsonError> {
    match value {
        Json::Int(v) => i64::try_from(*v)
            .map(AxisValue::Int)
            .map_err(|_| Json::schema_err(format!("{ctx}: {v} out of i64 range"))),
        Json::Float(v) => Ok(AxisValue::F64(*v)),
        Json::Str(s) => Ok(AxisValue::Text(s.clone())),
        Json::Obj(fields) => {
            check_fields(fields, &["f64"], ctx)?;
            Ok(AxisValue::F64(f64_from_json(
                get(fields, "f64", ctx)?,
                ctx,
            )?))
        }
        other => Err(Json::schema_err(format!(
            "{ctx}: expected an axis value, got {other:?}"
        ))),
    }
}

pub(crate) fn axis_to_json(axis: &Axis) -> Json {
    obj(vec![
        ("name", Json::Str(axis.name().into())),
        (
            "values",
            Json::Arr(axis.values().iter().map(axis_value_to_json).collect()),
        ),
    ])
}

pub(crate) fn axis_from_json(value: &Json) -> Result<Axis, JsonError> {
    let fields = value.obj_of("axis")?;
    check_fields(fields, &["name", "values"], "axis")?;
    let name = get(fields, "name", "axis")?.str_of("axis name")?;
    let values = get(fields, "values", "axis")?
        .arr_of("axis values")?
        .iter()
        .map(|v| axis_value_from_json(v, "axis value"))
        .collect::<Result<_, _>>()?;
    Ok(Axis::list(name, values))
}

fn metrics_to_json(m: &Metrics) -> Json {
    Json::Obj(
        m.names()
            .map(|name| {
                let v = m.get(name).expect("named metric present");
                (name.to_string(), f64_to_json(v))
            })
            .collect(),
    )
}

fn metrics_from_json(value: &Json) -> Result<Metrics, JsonError> {
    let fields = value.obj_of("replicate metrics")?;
    let mut m = Metrics::new();
    for (i, (name, v)) in fields.iter().enumerate() {
        if fields[..i].iter().any(|(k, _)| k == name) {
            return Err(Json::schema_err(format!(
                "replicate metrics: duplicate metric {name:?}"
            )));
        }
        m = m.with(name.clone(), f64_from_json(v, "metric value")?);
    }
    Ok(m)
}

fn summary_to_json(s: &MetricSummary) -> Json {
    obj(vec![
        ("name", Json::Str(s.name.clone())),
        ("mean", f64_to_json(s.mean)),
        ("ci95", s.ci95.map_or(Json::Null, f64_to_json)),
        ("min", f64_to_json(s.min)),
        ("max", f64_to_json(s.max)),
        ("n", Json::Int(i128::from(s.n))),
    ])
}

fn summary_from_json(value: &Json) -> Result<MetricSummary, JsonError> {
    let f = value.obj_of("metric summary")?;
    check_fields(f, &["name", "mean", "ci95", "min", "max", "n"], "summary")?;
    let ci95 = match get(f, "ci95", "summary")? {
        Json::Null => None,
        v => Some(f64_from_json(v, "summary ci95")?),
    };
    Ok(MetricSummary {
        name: get(f, "name", "summary")?
            .str_of("summary name")?
            .to_string(),
        mean: f64_from_json(get(f, "mean", "summary")?, "summary mean")?,
        ci95,
        min: f64_from_json(get(f, "min", "summary")?, "summary min")?,
        max: f64_from_json(get(f, "max", "summary")?, "summary max")?,
        n: get(f, "n", "summary")?.u64_of("summary n")?,
    })
}

/// Encodes one point as a lossless record (shared with the checkpoint
/// manifest).
pub(crate) fn point_to_json(p: &PointReport) -> Json {
    obj(vec![
        ("index", Json::Int(p.index as i128)),
        (
            "params",
            Json::Arr(
                p.params
                    .iter()
                    .map(|(name, value)| {
                        Json::Arr(vec![Json::Str(name.clone()), axis_value_to_json(value)])
                    })
                    .collect(),
            ),
        ),
        (
            "replicates",
            Json::Arr(p.replicates.iter().map(metrics_to_json).collect()),
        ),
        (
            "summaries",
            Json::Arr(p.summaries.iter().map(summary_to_json).collect()),
        ),
    ])
}

/// Decodes one point record written by [`point_to_json`].
pub(crate) fn point_from_json(value: &Json) -> Result<PointReport, JsonError> {
    let fields = value.obj_of("point record")?;
    check_fields(
        fields,
        &["index", "params", "replicates", "summaries"],
        "point record",
    )?;
    let params = get(fields, "params", "point record")?
        .arr_of("point params")?
        .iter()
        .map(|pair| {
            let items = pair.arr_of("point param")?;
            if items.len() != 2 {
                return Err(Json::schema_err(
                    "point param: expected a [name, value] pair",
                ));
            }
            Ok((
                items[0].str_of("param name")?.to_string(),
                axis_value_from_json(&items[1], "param value")?,
            ))
        })
        .collect::<Result<_, _>>()?;
    Ok(PointReport {
        index: get(fields, "index", "point record")?.usize_of("point index")?,
        params,
        replicates: get(fields, "replicates", "point record")?
            .arr_of("point replicates")?
            .iter()
            .map(metrics_from_json)
            .collect::<Result<_, _>>()?,
        summaries: get(fields, "summaries", "point record")?
            .arr_of("point summaries")?
            .iter()
            .map(summary_from_json)
            .collect::<Result<_, _>>()?,
    })
}

/// JSON string literal with minimal escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number; non-finite floats become `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_value(v: &AxisValue) -> String {
    match v {
        AxisValue::Int(i) => format!("{i}"),
        AxisValue::F64(f) => json_f64(*f),
        AxisValue::Text(s) => json_str(s),
    }
}

/// CSV cell; quoted only when it contains a delimiter, quote or newline.
fn csv_str(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// CSV number; non-finite floats become empty cells.
fn csv_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        String::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> CampaignReport {
        let axes = vec![Axis::ints("t", [2, 4])];
        let points = vec![
            PointReport::from_replicates(
                0,
                vec![("t".into(), AxisValue::Int(2))],
                vec![
                    Metrics::new().with("lat", 10.0),
                    Metrics::new().with("lat", 14.0),
                ],
            ),
            PointReport::from_replicates(
                1,
                vec![("t".into(), AxisValue::Int(4))],
                vec![
                    Metrics::new().with("lat", 6.0),
                    Metrics::new().with("lat", 8.0),
                ],
            ),
        ];
        CampaignReport {
            name: "demo".into(),
            seed: 7,
            replicates: 2,
            axes,
            points,
            wall_ns: vec![1_000, 2_000],
        }
    }

    #[test]
    fn aggregation_mean_min_max_ci() {
        let r = report();
        let s = &r.points[0].summaries[0];
        assert_eq!(s.mean, 12.0);
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 14.0);
        assert_eq!(s.n, 2);
        assert_eq!(r.points[0].samples("lat"), vec![10.0, 14.0]);
        assert!(s.ci95.unwrap() > 0.0);
        assert_eq!(r.mean_at(1, "lat"), Some(7.0));
        assert_eq!(r.mean_at(1, "nope"), None);
        assert_eq!(r.points[1].param("t"), &AxisValue::Int(4));
    }

    #[test]
    fn single_replicate_has_no_ci() {
        let p = PointReport::from_replicates(0, vec![], vec![Metrics::new().with("x", 1.0)]);
        assert_eq!(p.summaries[0].ci95, None);
        assert_eq!(p.mean("x"), Some(1.0));
    }

    #[test]
    fn replicate_metric_union_keeps_conditional_metrics() {
        // A metric absent from replicate 0 but present later (e.g.
        // latency percentiles of a seed whose run completed no comms)
        // must still be summarised.
        let p = PointReport::from_replicates(
            0,
            vec![],
            vec![
                Metrics::new().with("makespan", 5.0),
                Metrics::new().with("makespan", 7.0).with("lat_p95", 40.0),
            ],
        );
        let lat = p.summaries.iter().find(|s| s.name == "lat_p95").unwrap();
        assert_eq!(lat.n, 1);
        assert_eq!(lat.mean, 40.0);
        assert_eq!(p.mean("makespan"), Some(6.0));
    }

    #[test]
    fn csv_columns_are_the_union_across_points() {
        // Point 0 lacks a metric point 1 reports: its row must keep
        // empty cells under that metric's columns, not shift.
        let points = vec![
            PointReport::from_replicates(
                0,
                vec![("t".into(), AxisValue::Int(2))],
                vec![Metrics::new().with("a", 1.0)],
            ),
            PointReport::from_replicates(
                1,
                vec![("t".into(), AxisValue::Int(4))],
                vec![Metrics::new().with("a", 2.0).with("b", 3.0)],
            ),
        ];
        let r = CampaignReport {
            name: "u".into(),
            seed: 0,
            replicates: 1,
            axes: vec![Axis::ints("t", [2, 4])],
            points,
            wall_ns: vec![0, 0],
        };
        let csv = r.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert_eq!(
            header,
            "index,t,a.mean,a.ci95,a.min,a.max,b.mean,b.ci95,b.min,b.max,replicates"
        );
        let cols = header.split(',').count();
        let row0 = lines.next().unwrap();
        assert_eq!(row0.split(',').count(), cols, "row 0 must not shift");
        assert_eq!(row0, "0,2,1,,1,1,,,,,1");
        let row1 = lines.next().unwrap();
        assert_eq!(row1.split(',').count(), cols);
        assert!(row1.ends_with(",3,,3,3,1"));
    }

    #[test]
    fn wall_times_are_outside_the_equality_and_emitters() {
        let a = report();
        let mut b = report();
        b.wall_ns = vec![999_999, 888_888];
        assert_eq!(a, b, "wall time must not affect report equality");
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_csv(), b.to_csv());
        assert_eq!(a.total_wall_ns(), 3_000);
        assert!(!a.to_json().contains("wall"), "wall time leaked into JSON");
    }

    #[test]
    fn json_shape() {
        let j = report().to_json();
        assert!(j.starts_with("{\n"));
        assert!(j.contains("\"campaign\": \"demo\""));
        assert!(j.contains("\"seed\": 7"));
        assert!(j.contains("{\"name\": \"t\", \"values\": [2, 4]}"));
        assert!(j.contains("\"params\": {\"t\": 2}"));
        assert!(j.contains("\"mean\": 12"));
        assert!(j.contains("\"samples\": [10, 14]"));
        assert!(j.ends_with("}\n"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced braces:\n{j}"
        );
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn json_escapes_and_nulls() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(2.5), "2.5");
    }

    #[test]
    fn csv_shape() {
        let c = report().to_csv();
        let mut lines = c.lines();
        assert_eq!(
            lines.next().unwrap(),
            "index,t,lat.mean,lat.ci95,lat.min,lat.max,replicates"
        );
        let row = lines.next().unwrap();
        assert!(row.starts_with("0,2,12,"));
        assert!(row.ends_with(",10,14,2"));
        assert_eq!(c.lines().count(), 3);
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_str("plain"), "plain");
        assert_eq!(csv_str("a,b"), "\"a,b\"");
        assert_eq!(csv_str("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_f64(f64::NAN), "");
    }

    #[test]
    fn record_codec_round_trips_and_excludes_wall_times() {
        let mut a = report();
        a.wall_ns = vec![123, 456];
        let text = a.to_record_json();
        assert!(!text.contains("wall"), "wall time leaked into the record");
        let back = CampaignReport::from_record_json(&text).unwrap();
        assert_eq!(back, a, "equality excludes wall times");
        assert_eq!(back.wall_ns, vec![0, 0], "records carry no wall times");
        assert_eq!(back.to_json(), a.to_json());
        assert_eq!(back.to_csv(), a.to_csv());
        assert_eq!(back.to_record_json(), text, "record codec is a fixpoint");
    }

    #[test]
    fn record_codec_is_bit_exact_for_hostile_floats() {
        let p = PointReport::from_replicates(
            0,
            vec![("x".into(), AxisValue::F64(0.1 + 0.2))],
            vec![Metrics::new()
                .with("neg_zero", -0.0)
                .with("nan", f64::NAN)
                .with("inf", f64::INFINITY)
                .with("ninf", f64::NEG_INFINITY)
                .with("tiny", 5e-324)],
        );
        let r = CampaignReport {
            name: "bits".into(),
            seed: 1,
            replicates: 1,
            axes: vec![Axis::f64s("x", [0.1 + 0.2])],
            points: vec![p],
            wall_ns: vec![0],
        };
        let back = CampaignReport::from_record_json(&r.to_record_json()).unwrap();
        let m = &back.points[0].replicates[0];
        assert_eq!(m.get("neg_zero").unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(m.get("nan").unwrap().is_nan());
        assert_eq!(m.get("inf"), Some(f64::INFINITY));
        assert_eq!(m.get("ninf"), Some(f64::NEG_INFINITY));
        assert_eq!(m.get("tiny").unwrap().to_bits(), 5e-324f64.to_bits());
        assert_eq!(
            back.axes[0].values()[0].as_f64().unwrap().to_bits(),
            (0.1 + 0.2f64).to_bits()
        );
        // NaN makes summaries non-equal under ==; compare re-emission.
        assert_eq!(back.to_record_json(), r.to_record_json());
    }

    #[test]
    fn record_codec_rejects_unknown_fields_and_versions() {
        let text = report().to_record_json();
        let unknown = text.replacen("\"seed\"", "\"sneed\"", 1);
        let err = CampaignReport::from_record_json(&unknown).unwrap_err();
        assert!(err.problem.contains("unknown field"), "{err}");
        let wrong_version = text.replacen("\"version\": 1", "\"version\": 99", 1);
        let err = CampaignReport::from_record_json(&wrong_version).unwrap_err();
        assert!(err.problem.contains("version 99"), "{err}");
        let wrong_tag = text.replacen("campaign_report", "campaign_riport", 1);
        assert!(CampaignReport::from_record_json(&wrong_tag).is_err());
        assert!(CampaignReport::from_record_json("{\"record\":").is_err());
    }

    #[test]
    fn from_tallies_matches_from_replicates_bitwise() {
        let replicates = vec![
            Metrics::new().with("lat", 10.0).with("bw", 0.5),
            Metrics::new().with("lat", 14.5),
            Metrics::new().with("lat", 11.25).with("bw", 0.75),
        ];
        let buffered = PointReport::from_replicates(3, vec![], replicates.clone());
        // The streaming fold: first-appearance names, replicate order.
        let mut names: Vec<String> = Vec::new();
        let mut tallies: Vec<Tally> = Vec::new();
        for rep in &replicates {
            for name in rep.names() {
                let v = rep.get(name).unwrap();
                match names.iter().position(|n| n == name) {
                    Some(i) => tallies[i].record(v),
                    None => {
                        names.push(name.to_string());
                        let mut t = Tally::new();
                        t.record(v);
                        tallies.push(t);
                    }
                }
            }
        }
        let streamed =
            PointReport::from_tallies(3, vec![], names.into_iter().zip(tallies).collect());
        assert!(streamed.replicates.is_empty());
        assert_eq!(streamed.summaries, buffered.summaries);
        for (s, b) in streamed.summaries.iter().zip(&buffered.summaries) {
            assert_eq!(s.mean.to_bits(), b.mean.to_bits(), "{}", s.name);
            assert_eq!(s.ci95.map(f64::to_bits), b.ci95.map(f64::to_bits));
        }
    }

    #[test]
    fn csv_quotes_whole_header_cell_for_odd_metric_names() {
        let r = CampaignReport {
            name: "q".into(),
            seed: 0,
            replicates: 1,
            axes: vec![],
            points: vec![PointReport::from_replicates(
                0,
                vec![],
                vec![Metrics::new().with("lat,us", 1.0)],
            )],
            wall_ns: vec![0],
        };
        let header = r.to_csv().lines().next().unwrap().to_string();
        // The delimiter lives inside one fully quoted cell.
        assert!(header.contains("\"lat,us.mean\""));
        assert!(!header.contains("\"lat,us\".mean"));
    }
}
