//! Campaign-level observability: progress sinks for the executor.
//!
//! A [`ProgressSink`] receives a callback when a worker claims a task
//! and when it finishes one, from whichever thread ran it. The default
//! [`NoProgress`] does nothing; [`JsonlProgress`] streams
//! machine-readable JSON Lines (points done, in-flight, ETA, per-worker
//! attribution) suitable for a dashboard or log tail.
//!
//! Unlike everything else a campaign emits, progress output reports
//! **wall-clock** measurements — it exists to watch a run, not to
//! characterise it. It is therefore not covered by the campaign
//! determinism contract: two runs of the same campaign produce
//! identical reports and different progress streams.

use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Observer of executor progress. Callbacks arrive from worker threads
/// (hence `Sync`); both have empty default bodies.
pub trait ProgressSink: Sync {
    /// Worker `worker` claimed task index `task` and is about to run it.
    fn on_start(&self, task: usize, worker: usize) {
        let _ = (task, worker);
    }

    /// Worker `worker` finished task `task` after `wall_ns` nanoseconds
    /// of wall-clock time.
    fn on_finish(&self, task: usize, worker: usize, wall_ns: u64) {
        let _ = (task, worker, wall_ns);
    }
}

/// The inert sink: campaign runs without observation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoProgress;

impl ProgressSink for NoProgress {}

/// Streams progress as JSON Lines into any writer.
///
/// Two line shapes, one object per line:
///
/// ```text
/// {"event":"start","task":3,"worker":1}
/// {"event":"done","task":3,"worker":1,"wall_ms":12.5,"done":4,"total":96,"in_flight":3,"eta_ms":310.0}
/// ```
///
/// `eta_ms` is the naive remaining-work estimate
/// `elapsed / done × (total − done)`. Write errors are ignored —
/// observability must never fail the campaign it watches.
#[derive(Debug)]
pub struct JsonlProgress<W: Write + Send> {
    out: Mutex<W>,
    total: usize,
    started: Instant,
    done: AtomicUsize,
    in_flight: AtomicUsize,
}

impl<W: Write + Send> JsonlProgress<W> {
    /// A sink over `out` for a campaign of `total` tasks.
    pub fn new(out: W, total: usize) -> JsonlProgress<W> {
        JsonlProgress {
            out: Mutex::new(out),
            total,
            started: Instant::now(),
            done: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
        }
    }

    /// Tasks finished so far.
    pub fn done(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }

    /// Recovers the writer (e.g. to flush or inspect a buffer).
    pub fn into_inner(self) -> W {
        self.out.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<W: Write + Send> ProgressSink for JsonlProgress<W> {
    fn on_start(&self, task: usize, worker: usize) {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        if let Ok(mut out) = self.out.lock() {
            let _ = writeln!(
                out,
                "{{\"event\":\"start\",\"task\":{task},\"worker\":{worker}}}"
            );
        }
    }

    fn on_finish(&self, task: usize, worker: usize, wall_ns: u64) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let in_flight = self.in_flight.fetch_sub(1, Ordering::Relaxed) - 1;
        let elapsed_ms = self.started.elapsed().as_secs_f64() * 1e3;
        let eta_ms = elapsed_ms / done as f64 * self.total.saturating_sub(done) as f64;
        if let Ok(mut out) = self.out.lock() {
            let _ = writeln!(
                out,
                "{{\"event\":\"done\",\"task\":{task},\"worker\":{worker},\"wall_ms\":{:.3},\"done\":{done},\"total\":{},\"in_flight\":{in_flight},\"eta_ms\":{:.1}}}",
                wall_ns as f64 / 1e6,
                self.total,
                eta_ms
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_sink_counts_and_emits_lines() {
        let sink = JsonlProgress::new(Vec::new(), 2);
        sink.on_start(0, 0);
        sink.on_finish(0, 0, 1_500_000);
        sink.on_start(1, 1);
        sink.on_finish(1, 1, 2_000_000);
        assert_eq!(sink.done(), 2);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "{\"event\":\"start\",\"task\":0,\"worker\":0}");
        assert!(
            lines[1].starts_with("{\"event\":\"done\",\"task\":0,\"worker\":0,\"wall_ms\":1.500,")
        );
        assert!(lines[1].contains("\"done\":1,\"total\":2,\"in_flight\":0,"));
        assert!(lines[3].contains("\"done\":2,\"total\":2"));
        assert!(lines[3].contains("\"eta_ms\":0.0"));
    }

    #[test]
    fn no_progress_is_inert() {
        let sink = NoProgress;
        sink.on_start(0, 0);
        sink.on_finish(0, 0, 1);
    }
}
