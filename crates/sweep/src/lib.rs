//! # qic-sweep — parallel campaign engine for parameter sweeps
//!
//! Every figure and table of *Isailovic et al., ISCA 2006* is a sweep
//! over the same simulator: resource ratios (Fig. 16), purification
//! placements × distance (Figs. 10–11), placements × error rate
//! (Fig. 12), layouts × mesh size (Fig. 13). This crate turns those
//! hand-rolled loops into declarative **campaigns**:
//!
//! 1. a [`ParamSpace`] of named [`Axis`] values (explicit lists, linear
//!    grids, log-spaced grids) whose Cartesian product enumerates in a
//!    fixed row-major order;
//! 2. a [`Campaign`] binding the space to replication, seeding and a
//!    worker budget;
//! 3. a multi-threaded executor (shared-cursor work stealing over
//!    `std::thread`) that streams `(point, replicate)` results into a
//!    [`CampaignReport`];
//! 4. replicate aggregation (mean / 95% CI via `qic_des::stats`) with
//!    deterministic CSV and JSON emitters.
//!
//! # Determinism and the seed-derivation scheme
//!
//! A campaign's output must not depend on how it was scheduled. Two
//! mechanisms guarantee that:
//!
//! * **Index-addressed aggregation.** Every `(point, replicate)` task
//!   carries its row-major index; results are placed by index, so the
//!   report — including its JSON/CSV bytes — is identical for 1 worker
//!   or 64.
//! * **Derived seeds.** The seed for point `i`, replicate `r` of a
//!   campaign with seed `s` is a pure function of `(s, i, r)`:
//!
//!   ```text
//!   seed(s, i, r) = mix(mix(s ⊕ φ·(i+1)) ⊕ φ·(r+2))
//!   ```
//!
//!   where `φ = 0x9E3779B97F4A7C15` (the 64-bit golden ratio), `·` is
//!   wrapping multiplication, and `mix` is the SplitMix64 finaliser.
//!   The `+1` / `+2` offsets keep the zero point, zero replicate and
//!   zero campaign-seed cases from collapsing onto each other. The
//!   scheme means a point's stochastic inputs are identical whether the
//!   campaign ran serially, sharded over threads, or resumed point by
//!   point — see [`derive_seed`].
//!
//! # Example
//!
//! ```
//! use qic_sweep::prelude::*;
//!
//! // A 2-axis campaign, 2 replicates per point, 4 worker threads.
//! let space = ParamSpace::new()
//!     .axis(Axis::ints("depth", [1, 2, 3]))
//!     .axis(Axis::log_spaced("error", -6, -4, 1));
//! let report = Campaign::new("demo", space)
//!     .replicates(2)
//!     .seed(2006)
//!     .workers(4)
//!     .run(|point, ctx| {
//!         // A real campaign would build and run a simulator here,
//!         // seeding it with `ctx.seed`.
//!         let score = point.f64("depth") / point.f64("error");
//!         Metrics::new()
//!             .with("score", score)
//!             .with("noise", (ctx.seed % 7) as f64)
//!     });
//! assert_eq!(report.points.len(), 9);
//! let csv = report.to_csv();
//! assert!(csv.starts_with("index,depth,error,score.mean"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod campaign;
pub mod checkpoint;
pub mod exec;
pub mod json;
pub mod progress;
pub mod report;
pub mod shard;
pub mod space;

pub use campaign::{Campaign, RunCtx};
pub use checkpoint::{CampaignProgress, CheckpointConfig, CheckpointError, CHECKPOINT_VERSION};
pub use exec::{default_workers, parse_workers, CancelToken, Executor};
pub use progress::{JsonlProgress, NoProgress, ProgressSink};
// The metric record type lives in `qic-des` (so simulator crates can
// produce it without depending on the orchestration layer); campaigns
// consume and aggregate it.
pub use qic_des::metrics::Metrics;
pub use report::{CampaignReport, MetricSummary, PointReport, RECORD_VERSION};
pub use shard::{MergeError, Shard};
pub use space::{Axis, AxisValue, ParamSpace, SweepPoint};

/// Convenient glob-import surface: `use qic_sweep::prelude::*;`.
pub mod prelude {
    pub use crate::campaign::{Campaign, RunCtx};
    pub use crate::checkpoint::{CampaignProgress, CheckpointConfig, CheckpointError};
    pub use crate::derive_seed;
    pub use crate::digest_str;
    pub use crate::exec::{CancelToken, Executor};
    pub use crate::progress::{JsonlProgress, NoProgress, ProgressSink};
    pub use crate::report::{CampaignReport, MetricSummary, PointReport};
    pub use crate::shard::{MergeError, Shard};
    pub use crate::space::{Axis, AxisValue, ParamSpace, SweepPoint};
    pub use qic_des::metrics::Metrics;
}

/// The 64-bit golden ratio, SplitMix64's increment constant.
pub(crate) const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 finaliser: a bijective avalanche mix on 64 bits.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the RNG seed for `(point_index, replicate)` of a campaign.
///
/// This is the scheme documented in the crate docs: a pure function of
/// its three arguments, so a point's seed never depends on execution
/// order, worker count, or which other points ran. Campaign evaluation
/// functions receive the result as [`RunCtx::seed`]; it is public so
/// external tooling can re-derive the seed of any point (e.g. to replay
/// one point of a large campaign in isolation).
pub fn derive_seed(campaign_seed: u64, point_index: u64, replicate: u64) -> u64 {
    let a = splitmix64(campaign_seed ^ GOLDEN.wrapping_mul(point_index.wrapping_add(1)));
    splitmix64(a ^ GOLDEN.wrapping_mul(replicate.wrapping_add(2)))
}

/// Fingerprints a canonical document: a SplitMix64 fold over its bytes,
/// seeded with the golden-ratio constant.
///
/// This is the primitive behind the checkpoint manifest's spec hash and
/// `qic_core::scenario::SpecDigest` (the content-addressed result-cache
/// key) — both hash the **canonical JSON emission** of an identity, so
/// the digest is stable across JSON re-encoding round-trips and changes
/// exactly when the identity changes. Not cryptographic: it guards
/// against accidental drift, not adversaries.
pub fn digest_str(text: &str) -> u64 {
    let mut h = GOLDEN;
    for byte in text.bytes() {
        h = splitmix64(h ^ u64::from(byte));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_pure() {
        assert_eq!(derive_seed(7, 3, 1), derive_seed(7, 3, 1));
    }

    #[test]
    fn derive_seed_separates_all_arguments() {
        let base = derive_seed(7, 3, 1);
        assert_ne!(base, derive_seed(8, 3, 1));
        assert_ne!(base, derive_seed(7, 4, 1));
        assert_ne!(base, derive_seed(7, 3, 2));
        // The degenerate all-zero case still yields a scrambled seed.
        assert_ne!(derive_seed(0, 0, 0), 0);
        // (point 0, rep 1) and (point 1, rep 0) must not collide the way
        // naive `s + i + r` mixing would.
        assert_ne!(derive_seed(0, 0, 1), derive_seed(0, 1, 0));
    }

    #[test]
    fn digest_str_is_stable_and_sensitive() {
        assert_eq!(digest_str(""), GOLDEN, "empty fold is the seed");
        assert_eq!(digest_str("qic"), digest_str("qic"));
        assert_ne!(digest_str("qic"), digest_str("qiC"));
        assert_ne!(digest_str("ab"), digest_str("ba"), "order matters");
        // Pinned value: this primitive keys checkpoint manifests and the
        // serve result cache on disk — drift would orphan both.
        assert_eq!(digest_str("qic"), 0x5965_4BAF_691F_DA99);
    }

    #[test]
    fn derive_seed_has_no_cheap_collisions() {
        let mut seen = std::collections::BTreeSet::new();
        for s in 0..4u64 {
            for i in 0..64u64 {
                for r in 0..4u64 {
                    seen.insert(derive_seed(s, i, r));
                }
            }
        }
        assert_eq!(seen.len(), 4 * 64 * 4, "seed collision in a tiny grid");
    }
}
