//! A minimal, deterministic JSON value model for strict codecs.
//!
//! The vendored `serde` stand-in provides trait names but no wire
//! format (see `vendor/README.md`), so the workspace's serializable
//! documents — scenario specs in `qic-core`, campaign shard records and
//! checkpoint manifests here — format and parse JSON through this
//! model. It is deliberately small:
//!
//! * integers are kept apart from floats (`i128` holds every `u64`
//!   seed and every `i64` ratio losslessly);
//! * floats emit with Rust's shortest-roundtrip `Display`, so
//!   `parse(emit(x)) == x` bit-for-bit (including `-0.0`; non-finite
//!   values emit as `null` — codecs that must round-trip them encode
//!   strings instead);
//! * objects preserve insertion order, making emission deterministic;
//! * decoding is strict: [`check_fields`] rejects unknown and duplicate
//!   fields, so a typo can never silently configure nothing.

use std::fmt;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal (no `.`/exponent). `i128` covers `u64`.
    Int(i128),
    /// A float literal.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// A JSON syntax or schema error, with the byte offset where it was
/// detected (syntax errors only; schema errors use offset 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input (0 for schema-level errors).
    pub at: usize,
    /// What went wrong.
    pub problem: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.problem)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// A schema-level error (offset 0): the document parsed but did not
    /// match the expected shape.
    pub fn schema_err(problem: impl Into<String>) -> JsonError {
        JsonError {
            at: 0,
            problem: problem.into(),
        }
    }

    /// The value as a string; schema error naming `ctx` otherwise (all
    /// the typed accessors follow this pattern so codecs read linearly).
    pub fn str_of(&self, ctx: &str) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(Json::schema_err(format!(
                "{ctx}: expected a string, got {other:?}"
            ))),
        }
    }

    /// The value as a `u64`.
    pub fn u64_of(&self, ctx: &str) -> Result<u64, JsonError> {
        match self {
            Json::Int(v) => u64::try_from(*v)
                .map_err(|_| Json::schema_err(format!("{ctx}: {v} out of u64 range"))),
            other => Err(Json::schema_err(format!(
                "{ctx}: expected an integer, got {other:?}"
            ))),
        }
    }

    /// The value as a `u32`.
    pub fn u32_of(&self, ctx: &str) -> Result<u32, JsonError> {
        match self {
            Json::Int(v) => u32::try_from(*v)
                .map_err(|_| Json::schema_err(format!("{ctx}: {v} out of u32 range"))),
            other => Err(Json::schema_err(format!(
                "{ctx}: expected an integer, got {other:?}"
            ))),
        }
    }

    /// The value as a `u16`.
    pub fn u16_of(&self, ctx: &str) -> Result<u16, JsonError> {
        match self {
            Json::Int(v) => u16::try_from(*v)
                .map_err(|_| Json::schema_err(format!("{ctx}: {v} out of u16 range"))),
            other => Err(Json::schema_err(format!(
                "{ctx}: expected an integer, got {other:?}"
            ))),
        }
    }

    /// The value as an `i64`.
    pub fn i64_of(&self, ctx: &str) -> Result<i64, JsonError> {
        match self {
            Json::Int(v) => i64::try_from(*v)
                .map_err(|_| Json::schema_err(format!("{ctx}: {v} out of i64 range"))),
            other => Err(Json::schema_err(format!(
                "{ctx}: expected an integer, got {other:?}"
            ))),
        }
    }

    /// The value as an `i32`.
    pub fn i32_of(&self, ctx: &str) -> Result<i32, JsonError> {
        match self {
            Json::Int(v) => i32::try_from(*v)
                .map_err(|_| Json::schema_err(format!("{ctx}: {v} out of i32 range"))),
            other => Err(Json::schema_err(format!(
                "{ctx}: expected an integer, got {other:?}"
            ))),
        }
    }

    /// The value as an `f64`; integer literals widen (a hand-written
    /// rate of `0` is fine).
    pub fn f64_of(&self, ctx: &str) -> Result<f64, JsonError> {
        match self {
            Json::Float(v) => Ok(*v),
            Json::Int(v) => Ok(*v as f64),
            other => Err(Json::schema_err(format!(
                "{ctx}: expected a number, got {other:?}"
            ))),
        }
    }

    /// The value as a `bool`.
    pub fn bool_of(&self, ctx: &str) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(Json::schema_err(format!(
                "{ctx}: expected a boolean, got {other:?}"
            ))),
        }
    }

    /// The value as a `usize`.
    pub fn usize_of(&self, ctx: &str) -> Result<usize, JsonError> {
        match self {
            Json::Int(v) => usize::try_from(*v)
                .map_err(|_| Json::schema_err(format!("{ctx}: {v} out of usize range"))),
            other => Err(Json::schema_err(format!(
                "{ctx}: expected an integer, got {other:?}"
            ))),
        }
    }

    /// The value as an array's item list.
    pub fn arr_of(&self, ctx: &str) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(Json::schema_err(format!(
                "{ctx}: expected an array, got {other:?}"
            ))),
        }
    }

    /// The value as an object's field list.
    pub fn obj_of(&self, ctx: &str) -> Result<&[(String, Json)], JsonError> {
        match self {
            Json::Obj(fields) => Ok(fields),
            other => Err(Json::schema_err(format!(
                "{ctx}: expected an object, got {other:?}"
            ))),
        }
    }

    /// Serialises the value (compact, deterministic).
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    // Shortest-roundtrip Display, with a float marker kept
                    // so the parser reads the value back as a float.
                    let text = format!("{v}");
                    let needs_marker = !text.contains(['.', 'e', 'E']);
                    out.push_str(&text);
                    if needs_marker {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (name, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    Json::Str(name.clone()).write(out);
                    out.push_str(": ");
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, nothing
    /// else).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the byte offset of the first syntax problem.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }
}

/// Builds an object from `(name, value)` pairs (codec convenience).
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Builds an integer array (codec convenience).
pub fn ints<I: Into<i128>>(values: impl IntoIterator<Item = I>) -> Json {
    Json::Arr(values.into_iter().map(|v| Json::Int(v.into())).collect())
}

/// Looks a required field up in an object; the object is expected to
/// have been vetted by [`check_fields`] first.
///
/// # Errors
///
/// A schema error naming `ctx` when the field is missing.
pub fn get<'a>(fields: &'a [(String, Json)], name: &str, ctx: &str) -> Result<&'a Json, JsonError> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Json::schema_err(format!("{ctx}: missing field {name:?}")))
}

/// Looks an optional field up in an object (`None` when absent — used
/// for fields later schema versions added, so older documents keep
/// parsing).
pub fn get_opt<'a>(fields: &'a [(String, Json)], name: &str) -> Option<&'a Json> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Rejects unknown or duplicate fields, so typos fail loudly instead of
/// silently configuring nothing.
///
/// # Errors
///
/// A schema error naming `ctx` and the offending field.
pub fn check_fields(
    fields: &[(String, Json)],
    allowed: &[&str],
    ctx: &str,
) -> Result<(), JsonError> {
    for (i, (name, _)) in fields.iter().enumerate() {
        if !allowed.contains(&name.as_str()) {
            return Err(Json::schema_err(format!(
                "{ctx}: unknown field {name:?} (expected one of {allowed:?})"
            )));
        }
        if fields[..i].iter().any(|(k, _)| k == name) {
            return Err(Json::schema_err(format!("{ctx}: duplicate field {name:?}")));
        }
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn err(&self, problem: impl Into<String>) -> JsonError {
        JsonError {
            at: self.at,
            problem: problem.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", c as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.at += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.at + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.at..self.at + 4])
                                .map_err(|_| self.err("non-UTF8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.at += 4;
                            // Basic-plane scalars only (enough for the
                            // labels these documents use; surrogate pairs
                            // are rejected explicitly).
                            let ch = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(ch);
                        }
                        other => {
                            return Err(self.err(format!("unknown escape \\{}", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-read the full UTF-8 character starting at c.
                    let start = self.at - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().expect("non-empty");
                    if (ch as u32) < 0x20 {
                        return Err(self.err("unescaped control character in string"));
                    }
                    out.push(ch);
                    self.at = start + ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.at += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.at += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.at += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.at += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.at]).expect("number spans are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err(format!("invalid number {text:?}")))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| self.err(format!("invalid integer {text:?}")))
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let v = obj(vec![
            ("name", Json::Str("fig16:\"Tiny\"".into())),
            ("seed", Json::Int(u64::MAX as i128)),
            ("ratio", ints([0i64, 1, 2, 4, 8])),
            ("rate", Json::Float(1e-9)),
            ("whole", Json::Float(2.0)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            ("nested", Json::Arr(vec![obj(vec![("x", Json::Int(-3))])])),
        ]);
        let text = v.emit();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn whole_floats_stay_floats() {
        let text = Json::Float(2.0).emit();
        assert_eq!(text, "2.0");
        assert_eq!(Json::parse(&text).unwrap(), Json::Float(2.0));
    }

    #[test]
    fn negative_zero_round_trips_with_its_sign() {
        let text = Json::Float(-0.0).emit();
        assert_eq!(text, "-0.0", "the float marker keeps -0 a float");
        match Json::parse(&text).unwrap() {
            Json::Float(v) => assert!(v.to_bits() == (-0.0f64).to_bits(), "sign bit lost"),
            other => panic!("parsed as {other:?}"),
        }
    }

    #[test]
    fn big_integers_are_lossless() {
        let seed = u64::MAX - 1;
        let text = Json::Int(i128::from(seed)).emit();
        assert_eq!(Json::parse(&text).unwrap().u64_of("seed").unwrap(), seed);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\\n\" : [ 1 , 2.5 ] , \"b\" : \"\\u0041\" } ").unwrap();
        let fields = v.obj_of("doc").unwrap();
        assert_eq!(fields[0].0, "a\n");
        assert_eq!(fields[0].1, Json::Arr(vec![Json::Int(1), Json::Float(2.5)]));
        assert_eq!(fields[1].1, Json::Str("A".into()));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "nul",
            "1 2",
            "\"abc",
            "{\"a\" 1}",
            "01a",
            "\"\\q\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn schema_helpers_reject_mismatches() {
        let fields = vec![("a".to_string(), Json::Int(1))];
        assert!(get(&fields, "a", "t").is_ok());
        assert!(get(&fields, "b", "t").is_err());
        assert!(check_fields(&fields, &["a"], "t").is_ok());
        assert!(check_fields(&fields, &["b"], "t").is_err());
        let dup = vec![
            ("a".to_string(), Json::Int(1)),
            ("a".to_string(), Json::Int(2)),
        ];
        assert!(check_fields(&dup, &["a"], "t").is_err());
        assert!(Json::Int(1).str_of("t").is_err());
        assert!(Json::Str("x".into()).u64_of("t").is_err());
        assert!(Json::Int(-1).u32_of("t").is_err());
        assert!(Json::Int(70000).u16_of("t").is_err());
    }
}
