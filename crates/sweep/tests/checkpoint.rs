//! Filesystem-backed checkpoint/resume tests: interrupted campaigns
//! resume to byte-identical reports, and damaged manifests surface
//! structured errors instead of wrong results.

use std::fs;
use std::path::PathBuf;

use qic_sweep::prelude::*;

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("checkpoint");
    fs::create_dir_all(&dir).expect("create tmp dir");
    dir.join(name)
}

fn space() -> ParamSpace {
    ParamSpace::new()
        .axis(Axis::ints("a", [1, 2, 3, 4, 5]))
        .axis(Axis::ints("b", [0, 100]))
}

fn campaign() -> Campaign {
    Campaign::new("ckpt", space())
        .replicates(2)
        .seed(77)
        .workers(2)
}

fn eval(point: &SweepPoint<'_>, ctx: RunCtx) -> Metrics {
    Metrics::new()
        .with("v", (point.i64("a") * 10 + point.i64("b")) as f64)
        .with("jitter", (ctx.seed % 4096) as f64 / 4096.0)
}

#[test]
fn fresh_resumable_run_matches_streaming() {
    let path = tmp("fresh.ckpt.json");
    let _ = fs::remove_file(&path);
    let ckpt = CheckpointConfig::new(&path).every(3);
    let resumable = campaign().run_resumable(&ckpt, eval).unwrap();
    let streaming = campaign().run_streaming(eval);
    assert_eq!(resumable, streaming);
    assert_eq!(resumable.to_record_json(), streaming.to_record_json());
    assert_eq!(resumable.to_csv(), streaming.to_csv());
    assert!(path.exists(), "final manifest stays on disk");
}

#[test]
fn killed_campaign_resumes_to_the_byte_identical_report() {
    let path = tmp("killed.ckpt.json");
    let _ = fs::remove_file(&path);
    let ckpt = CheckpointConfig::new(&path).every(2);

    // "Kill" the campaign dead after 4 of 10 points: a budgeted run
    // stops exactly at a checkpoint boundary, like a SIGKILL landing
    // right after a commit.
    let progress = campaign()
        .run_resumable_budgeted(&ckpt, Some(4), eval)
        .unwrap();
    assert_eq!(progress, CampaignProgress::Partial { done: 4, total: 10 });
    assert!(path.exists(), "partial manifest committed");

    // A second partial pass, then resume to completion.
    let progress = campaign()
        .run_resumable_budgeted(&ckpt, Some(3), eval)
        .unwrap();
    assert_eq!(progress, CampaignProgress::Partial { done: 7, total: 10 });
    let resumed = campaign().run_resumable(&ckpt, eval).unwrap();

    let fresh = campaign().run_streaming(eval);
    assert_eq!(resumed, fresh);
    assert_eq!(resumed.to_record_json(), fresh.to_record_json());
    assert_eq!(resumed.to_csv(), fresh.to_csv());
}

#[test]
fn a_stale_tmp_file_from_a_mid_write_crash_is_harmless() {
    let path = tmp("midwrite.ckpt.json");
    let _ = fs::remove_file(&path);
    let ckpt = CheckpointConfig::new(&path).every(2);
    campaign()
        .run_resumable_budgeted(&ckpt, Some(4), eval)
        .unwrap();

    // A crash mid-commit leaves a torn `.tmp` next to the (intact)
    // manifest; the rename never happened. Resume must ignore it.
    let tmp_path = PathBuf::from(format!("{}.tmp", path.display()));
    fs::write(&tmp_path, "{\"record\":\"campaign_ch").unwrap();

    let resumed = campaign().run_resumable(&ckpt, eval).unwrap();
    assert_eq!(resumed, campaign().run_streaming(eval));
}

#[test]
fn corrupted_manifest_is_a_structured_error_not_a_wrong_report() {
    let path = tmp("corrupt.ckpt.json");
    let ckpt = CheckpointConfig::new(&path).every(2);

    // Truncated JSON → Corrupt.
    fs::write(&path, "{\"record\":\"campaign_checkpoint\",\"vers").unwrap();
    let err = campaign().run_resumable(&ckpt, eval).unwrap_err();
    assert!(matches!(err, CheckpointError::Corrupt { .. }), "{err}");

    // Valid JSON, wrong record tag → Corrupt with a schema problem.
    fs::write(&path, "{\"record\":\"campaign_report\"}").unwrap();
    let err = campaign().run_resumable(&ckpt, eval).unwrap_err();
    assert!(matches!(err, CheckpointError::Corrupt { .. }), "{err}");
    assert!(err.to_string().contains("unexpected record tag"), "{err}");
}

#[test]
fn manifest_version_and_unknown_fields_are_rejected() {
    let path = tmp("versioned.ckpt.json");
    let _ = fs::remove_file(&path);
    let ckpt = CheckpointConfig::new(&path).every(4);
    campaign()
        .run_resumable_budgeted(&ckpt, Some(4), eval)
        .unwrap();
    let good = fs::read_to_string(&path).unwrap();

    // Version bump → structured rejection naming both versions.
    let doctored = good.replacen("\"version\": 1", "\"version\": 99", 1);
    assert_ne!(doctored, good, "version field located");
    fs::write(&path, doctored).unwrap();
    let err = campaign().run_resumable(&ckpt, eval).unwrap_err();
    assert!(matches!(err, CheckpointError::Corrupt { .. }), "{err}");
    assert!(err.to_string().contains("version 99"), "{err}");

    // A typo'd field name → rejected, not silently ignored.
    fs::write(&path, good.replacen("\"seed\"", "\"sneed\"", 1)).unwrap();
    let err = campaign().run_resumable(&ckpt, eval).unwrap_err();
    assert!(matches!(err, CheckpointError::Corrupt { .. }), "{err}");
}

#[test]
fn manifest_of_a_different_campaign_is_a_mismatch() {
    let path = tmp("drift.ckpt.json");
    let _ = fs::remove_file(&path);
    let ckpt = CheckpointConfig::new(&path).every(4);
    campaign()
        .run_resumable_budgeted(&ckpt, Some(4), eval)
        .unwrap();

    // Same name, different seed: the spec changed under the manifest.
    let err = campaign().seed(78).run_resumable(&ckpt, eval).unwrap_err();
    assert!(matches!(err, CheckpointError::Mismatch { .. }), "{err}");

    // Different axes (space) with everything else equal: spec hash.
    let other = Campaign::new("ckpt", ParamSpace::new().axis(Axis::ints("a", [1, 2])))
        .replicates(2)
        .seed(77);
    let err = other.run_resumable(&ckpt, eval).unwrap_err();
    assert!(matches!(err, CheckpointError::Mismatch { .. }), "{err}");
}

#[test]
fn doctored_bitmap_is_detected() {
    let path = tmp("bitmap.ckpt.json");
    let _ = fs::remove_file(&path);
    let ckpt = CheckpointConfig::new(&path).every(4);
    campaign()
        .run_resumable_budgeted(&ckpt, Some(4), eval)
        .unwrap();
    let good = fs::read_to_string(&path).unwrap();

    // Flip the completion bitmap to claim everything is done while the
    // point records say otherwise.
    let start = good.find("\"completed\": \"").unwrap() + "\"completed\": \"".len();
    let end = good[start..].find('"').unwrap() + start;
    let doctored = format!("{}{}{}", &good[..start], "ff03", &good[end..]);
    fs::write(&path, doctored).unwrap();
    let err = campaign().run_resumable(&ckpt, eval).unwrap_err();
    assert!(matches!(err, CheckpointError::Mismatch { .. }), "{err}");
    assert!(err.to_string().contains("bitmap"), "{err}");
}

#[test]
fn wall_times_never_leak_into_resumed_output() {
    // A resumed report has zero wall times for previously committed
    // points; equality, JSON records and CSV must not notice.
    let path = tmp("wall.ckpt.json");
    let _ = fs::remove_file(&path);
    let ckpt = CheckpointConfig::new(&path).every(1);
    campaign()
        .run_resumable_budgeted(&ckpt, Some(9), eval)
        .unwrap();
    let resumed = campaign().run_resumable(&ckpt, eval).unwrap();
    let fresh = campaign().run_streaming(eval);
    // Wall vectors genuinely differ...
    assert_eq!(resumed.wall_ns.len(), fresh.wall_ns.len());
    // ...but nothing observable does.
    assert_eq!(resumed, fresh);
    assert_eq!(resumed.to_json(), fresh.to_json());
    assert_eq!(resumed.to_csv(), fresh.to_csv());
    assert_eq!(resumed.to_record_json(), fresh.to_record_json());
}
