//! The shared [`Executor`]: byte-identity with the transient pool,
//! fairness between concurrent campaigns, bounded admission,
//! cancellation, and panic isolation.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use qic_sweep::prelude::*;
use qic_sweep::Executor;

fn toy_space() -> ParamSpace {
    ParamSpace::new()
        .axis(Axis::ints("a", [1, 2, 3, 4]))
        .axis(Axis::ints("b", [0, 10]))
}

fn toy_campaign() -> Campaign {
    Campaign::new("exec", toy_space())
        .replicates(3)
        .seed(2006)
        .workers(3)
}

fn eval(point: &SweepPoint<'_>, ctx: RunCtx) -> Metrics {
    Metrics::new()
        .with("v", (point.i64("a") * 100 + point.i64("b")) as f64)
        .with("seed_lo", (ctx.seed % 1000) as f64)
        .with("rep", f64::from(ctx.replicate))
}

#[test]
fn run_on_matches_run_byte_for_byte() {
    let transient = toy_campaign().run(eval);
    for workers in [1, 2, 4] {
        let exec = Executor::new(workers);
        let shared = toy_campaign().run_on(&exec, eval);
        assert_eq!(shared, transient, "{workers} pool workers");
        assert_eq!(shared.to_json(), transient.to_json(), "{workers} workers");
        assert_eq!(shared.to_csv(), transient.to_csv(), "{workers} workers");
        assert_eq!(
            shared.to_record_json(),
            transient.to_record_json(),
            "{workers} workers"
        );
    }
}

#[test]
fn one_executor_serves_sequential_campaigns() {
    let exec = Executor::new(2);
    let first = toy_campaign().run_on(&exec, eval);
    let second = toy_campaign().run_on(&exec, eval);
    assert_eq!(first.to_json(), second.to_json());
    // A different campaign on the same pool still matches its own
    // transient run.
    let other = toy_campaign().seed(7);
    assert_eq!(
        other.run_on(&exec, eval).to_json(),
        other.run(eval).to_json()
    );
}

#[test]
fn empty_campaign_runs_zero_points() {
    let exec = Executor::new(2);
    let space = ParamSpace::new().axis(Axis::ints("a", []));
    let report = Campaign::new("empty", space).run_on(&exec, |_, _| unreachable!());
    assert!(report.points.is_empty());
}

/// Two campaigns submitted concurrently to a 2-worker pool must make
/// interleaved progress: round-robin claiming means neither drains
/// completely while the other waits.
#[test]
fn concurrent_campaigns_interleave_fairly() {
    let exec = Arc::new(Executor::new(2));
    let log: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
    let threads: Vec<_> = [0u8, 1u8]
        .into_iter()
        .map(|tag| {
            let exec = Arc::clone(&exec);
            let log = Arc::clone(&log);
            std::thread::spawn(move || {
                let campaign = Campaign::new(format!("c{tag}"), toy_space()).seed(u64::from(tag));
                campaign.run_on(&exec, move |point, _ctx| {
                    std::thread::sleep(Duration::from_millis(4));
                    log.lock().unwrap().push(tag);
                    Metrics::new().with("v", point.i64("a") as f64)
                })
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let log = log.lock().unwrap();
    assert_eq!(log.len(), 16, "8 points per campaign");
    // Fairness: each campaign finishes a point before the other's last
    // point — a starved campaign would be all-at-the-end.
    let first_0 = log.iter().position(|&t| t == 0).unwrap();
    let first_1 = log.iter().position(|&t| t == 1).unwrap();
    let last_0 = log.iter().rposition(|&t| t == 0).unwrap();
    let last_1 = log.iter().rposition(|&t| t == 1).unwrap();
    assert!(
        first_0 < last_1 && first_1 < last_0,
        "no interleaving: {log:?}"
    );
}

/// With an admission bound of 1, the second submission is not admitted
/// until the first has claimed all its points — so in the evaluation
/// log, at most `workers` first-campaign entries (claimed-but-not-yet-
/// entered stragglers) may trail the second campaign's first entry.
#[test]
fn admission_bound_serialises_submissions() {
    let exec = Arc::new(Executor::with_admission(2, 1));
    let log: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
    let threads: Vec<_> = [0u8, 1u8]
        .into_iter()
        .map(|tag| {
            let exec = Arc::clone(&exec);
            let log = Arc::clone(&log);
            std::thread::spawn(move || {
                let campaign = Campaign::new(format!("a{tag}"), toy_space());
                campaign.run_on(&exec, move |point, _| {
                    log.lock().unwrap().push(tag);
                    std::thread::sleep(Duration::from_millis(2));
                    Metrics::new().with("v", point.i64("a") as f64)
                })
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let log = log.lock().unwrap();
    assert_eq!(log.len(), 16, "8 points per campaign");
    let first = log[0];
    let switch = log.iter().position(|&t| t != first).unwrap();
    let stragglers = log[switch..].iter().filter(|&&t| t == first).count();
    assert!(
        stragglers <= 2,
        "admission 1 still interleaved submissions: {log:?}"
    );
}

/// Cancelling from inside the evaluation (deterministically, after four
/// points) stops further claims; `run_on_observed` reports the run
/// incomplete.
#[test]
fn cancellation_stops_further_points() {
    let exec = Executor::new(2);
    let token = CancelToken::new();
    let evaluated = Arc::new(AtomicUsize::new(0));
    let campaign = Campaign::new("cancel", toy_space());
    let result = {
        let trip = token.clone();
        let evaluated = Arc::clone(&evaluated);
        campaign.run_on_observed(
            &exec,
            move |point, _| {
                if evaluated.fetch_add(1, Ordering::SeqCst) + 1 >= 4 {
                    trip.cancel();
                }
                Metrics::new().with("v", point.i64("a") as f64)
            },
            Arc::new(NoProgress),
            &token,
        )
    };
    assert!(result.is_none(), "cancelled runs yield no report");
    assert!(token.is_cancelled());
    let n = evaluated.load(Ordering::SeqCst);
    assert!((4..8).contains(&n), "claims continued after cancel: {n}");
}

#[test]
fn progress_sink_hears_point_claims() {
    let exec = Executor::new(2);
    let campaign = toy_campaign();
    let sink = Arc::new(JsonlProgress::new(Vec::new(), 8));
    let report = campaign
        .run_on_observed(&exec, eval, Arc::clone(&sink) as _, &CancelToken::new())
        .expect("completes");
    assert_eq!(report.points.len(), 8);
    assert_eq!(sink.done(), 8, "one finish per point (not per replicate)");
}

#[test]
#[should_panic(expected = "point 3 exploded")]
fn panic_in_eval_propagates_to_the_submitter() {
    let exec = Executor::new(2);
    let _ = Campaign::new("boom", toy_space()).run_on(&exec, |point, _| {
        if point.index() == 3 {
            panic!("point 3 exploded");
        }
        Metrics::new().with("v", 1.0)
    });
}

/// A panicking campaign must not poison the pool: a later submission on
/// the same executor still completes.
#[test]
fn pool_survives_a_panicked_submission() {
    let exec = Executor::new(2);
    let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Campaign::new("boom", toy_space()).run_on(&exec, |_, _| -> Metrics {
            panic!("always");
        })
    }));
    assert!(boom.is_err());
    let report = toy_campaign().run_on(&exec, eval);
    assert_eq!(report.to_json(), toy_campaign().run(eval).to_json());
}
