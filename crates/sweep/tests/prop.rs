//! Property-based tests for the campaign engine: point enumeration,
//! seed derivation, and scheduling-independence of reports.

use proptest::prelude::*;

use qic_sweep::{derive_seed, Axis, Campaign, Metrics, ParamSpace};

fn small_space(a: usize, b: usize, c: usize) -> ParamSpace {
    ParamSpace::new()
        .axis(Axis::ints("a", (0..a as i64).collect::<Vec<_>>()))
        .axis(Axis::ints("b", (0..b as i64).collect::<Vec<_>>()))
        .axis(Axis::ints("c", (0..c as i64).collect::<Vec<_>>()))
}

proptest! {
    #[test]
    fn point_index_round_trips(a in 1usize..5, b in 1usize..5, c in 1usize..5) {
        let space = small_space(a, b, c);
        prop_assert_eq!(space.len(), a * b * c);
        for (i, point) in space.points().enumerate() {
            prop_assert_eq!(point.index(), i);
            // Recompose the row-major index from the coordinates.
            let recomposed = (point.coord(0) * b + point.coord(1)) * c + point.coord(2);
            prop_assert_eq!(recomposed, i);
            prop_assert_eq!(point.i64("a") as usize, point.coord(0));
        }
    }

    #[test]
    fn derived_seeds_are_pure_and_distinct(s in 0u64..1_000_000, i in 0u64..10_000, r in 0u64..64) {
        prop_assert_eq!(derive_seed(s, i, r), derive_seed(s, i, r));
        prop_assert_ne!(derive_seed(s, i, r), derive_seed(s, i + 1, r));
        prop_assert_ne!(derive_seed(s, i, r), derive_seed(s, i, r + 1));
    }

    #[test]
    fn report_is_scheduling_independent(
        a in 1usize..4,
        b in 1usize..4,
        workers in 2usize..6,
        reps in 1u32..4,
        seed in 0u64..1000,
    ) {
        let space = ParamSpace::new()
            .axis(Axis::ints("a", (0..a as i64).collect::<Vec<_>>()))
            .axis(Axis::ints("b", (0..b as i64).collect::<Vec<_>>()))
            ;
        let eval = |point: &qic_sweep::SweepPoint<'_>, ctx: qic_sweep::RunCtx| {
            Metrics::new()
                .with("v", (point.i64("a") * 10 + point.i64("b")) as f64)
                .with("s", (ctx.seed % 4096) as f64)
        };
        let serial = Campaign::new("p", space.clone())
            .seed(seed)
            .replicates(reps)
            .workers(1)
            .run(eval);
        let parallel = Campaign::new("p", space)
            .seed(seed)
            .replicates(reps)
            .workers(workers)
            .run(eval);
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(serial.to_json(), parallel.to_json());
    }
}
