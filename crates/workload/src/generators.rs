//! The paper's benchmark kernels as [`Program`] constructors.

use crate::program::{Instruction, InstructionKind, LogicalQubit, Program};

impl Program {
    /// The **Quantum Fourier Transform** on `n` logical qubits.
    ///
    /// "Given n logical qubits, labeled 1, 2, … n, each logical qubit must
    /// interact once with each other logical qubit, in numerical order.
    /// Thus, the first few communications in QFT are 1-2, 1-3, (1-4, 2-3),
    /// (1-5, 2-4), (1-6, 2-5, 3-4), where communications in parentheses may
    /// occur simultaneously." (Section 5.2)
    ///
    /// Instructions are emitted in exactly that wavefront order — pairs
    /// `(i, j)` grouped by ascending `i + j` — which both respects each
    /// qubit's numerical order and exposes the maximal parallelism the
    /// paper describes. The gate attached to pair `(i, j)` is the
    /// controlled phase `R_{j−i+1}` of the standard QFT circuit.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn qft(n: u32) -> Program {
        assert!(n >= 2, "QFT needs at least two qubits");
        let mut instructions = Vec::with_capacity((n as usize) * (n as usize - 1) / 2);
        // 0-based: pairs (i, j), i < j, grouped by anti-diagonal i + j.
        for s in 1..=(2 * n - 3) {
            let i_min = s.saturating_sub(n - 1);
            let mut i = i_min;
            while 2 * i < s {
                let j = s - i;
                instructions.push(Instruction {
                    a: LogicalQubit(i),
                    b: LogicalQubit(j),
                    kind: InstructionKind::ControlledPhase { k: j - i + 1 },
                });
                i += 1;
            }
        }
        Program::new(n, instructions).expect("generated QFT is valid")
    }

    /// **Modular multiplication**: the bipartite pattern between register
    /// `A` (qubits `0..n`) and register `B` (qubits `n..2n`) — "all from
    /// one set communicating with all from the other set" (Section 5.2).
    ///
    /// Pairs are emitted in rotated rounds (round `r` pairs `A[i]` with
    /// `B[(i + r) mod n]`), so each round is fully parallel.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn modular_multiplication(n: u32) -> Program {
        assert!(n > 0, "registers must be non-empty");
        let mut instructions = Vec::with_capacity((n as usize) * (n as usize));
        for round in 0..n {
            for i in 0..n {
                let j = n + (i + round) % n;
                instructions.push(Instruction {
                    a: LogicalQubit(i),
                    b: LogicalQubit(j),
                    kind: InstructionKind::Interact,
                });
            }
        }
        Program::new(2 * n, instructions).expect("generated MM is valid")
    }

    /// **Modular exponentiation**: `steps` iterations of a squaring step
    /// (all-to-all within register `A`, a QFT-like pattern) followed by a
    /// multiplication step (bipartite `A`×`B`), per Section 5.2.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `steps` is zero.
    pub fn modular_exponentiation(n: u32, steps: u32) -> Program {
        assert!(n >= 2, "registers need at least two qubits");
        assert!(steps > 0, "at least one square-and-multiply step");
        let mut program = Program::new(2 * n, Vec::new()).expect("empty is valid");
        for _ in 0..steps {
            // Squaring: all-to-all inside A (same anti-diagonal order as
            // the QFT, but generic interactions).
            let mut sq = Vec::new();
            for s in 1..=(2 * n - 3) {
                let i_min = s.saturating_sub(n - 1);
                let mut i = i_min;
                while 2 * i < s {
                    sq.push(Instruction::interact(i, s - i));
                    i += 1;
                }
            }
            program = program.then(Program::new(2 * n, sq).expect("squaring is valid"));
            // Multiplication: bipartite A×B.
            let mm = Program::modular_multiplication(n);
            program = program.then(Program::new(2 * n, mm.instructions().to_vec()).expect("valid"));
        }
        program
    }

    /// The composed **Shor kernel**: modular exponentiation over registers
    /// `A`/`B` followed by a QFT over register `A` (Section 5.2 lists QFT,
    /// ME and MM as the three communication-intensive components).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `me_steps` is zero.
    pub fn shor_kernel(n: u32, me_steps: u32) -> Program {
        let me = Program::modular_exponentiation(n, me_steps);
        let qft = Program::qft(n);
        // Lift the QFT into the 2n-qubit space (it acts on register A).
        let lifted = Program::new(2 * n, qft.instructions().to_vec()).expect("A ⊂ A∪B");
        me.then(lifted)
    }

    /// A **synthetic** workload: `len` uniform-random two-qubit
    /// interactions over `n` qubits, derived deterministically from
    /// `seed` (SplitMix64, so the same spec always generates the same
    /// traffic on any platform or thread count).
    ///
    /// Unlike the structured kernels above, synthetic traffic has no
    /// exploitable locality, which makes it the stress case for layout
    /// and fabric comparisons.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn synthetic(n: u32, len: usize, seed: u64) -> Program {
        assert!(n >= 2, "synthetic traffic needs at least two qubits");
        // SplitMix64: the same generator the campaign engine uses for
        // per-point seed derivation (see qic-sweep's crate docs).
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let instructions = (0..len)
            .map(|_| {
                let a = (next() % u64::from(n)) as u32;
                let b = (next() % u64::from(n - 1)) as u32;
                let b = if b >= a { b + 1 } else { b };
                Instruction::interact(a, b)
            })
            .collect();
        Program::new(n, instructions).expect("generated synthetic traffic is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qft_pair_count() {
        for n in [2u32, 3, 8, 16] {
            let p = Program::qft(n);
            assert_eq!(p.len() as u32, n * (n - 1) / 2, "n={n}");
            assert_eq!(p.n_qubits(), n);
        }
    }

    #[test]
    fn qft_matches_papers_listed_prefix() {
        // Paper (1-based): 1-2, 1-3, (1-4, 2-3), (1-5, 2-4), (1-6, 2-5, 3-4).
        // 0-based: (0,1), (0,2), (0,3), (1,2), (0,4), (1,3), (0,5), (1,4), (2,3).
        let p = Program::qft(6);
        let pairs: Vec<(u32, u32)> = p.iter().map(|i| (i.a.index(), i.b.index())).collect();
        assert_eq!(
            &pairs[..9],
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (0, 4),
                (1, 3),
                (0, 5),
                (1, 4),
                (2, 3)
            ]
        );
    }

    #[test]
    fn qft_every_pair_exactly_once() {
        let n = 10;
        let p = Program::qft(n);
        let mut seen = std::collections::HashSet::new();
        for ins in &p {
            let key = (
                ins.a.index().min(ins.b.index()),
                ins.a.index().max(ins.b.index()),
            );
            assert!(seen.insert(key), "duplicate pair {key:?}");
        }
        assert_eq!(seen.len() as u32, n * (n - 1) / 2);
    }

    #[test]
    fn qft_respects_per_qubit_numerical_order() {
        let p = Program::qft(9);
        for q in 0..9u32 {
            let partners: Vec<u32> = p
                .iter()
                .filter(|i| i.touches(LogicalQubit(q)))
                .map(|i| {
                    if i.a.index() == q {
                        i.b.index()
                    } else {
                        i.a.index()
                    }
                })
                .collect();
            // For qubit q the partners with larger index must appear in
            // increasing order (q interacts with q+1, then q+2, …).
            let later: Vec<u32> = partners.iter().copied().filter(|&x| x > q).collect();
            let mut sorted = later.clone();
            sorted.sort_unstable();
            assert_eq!(later, sorted, "qubit {q} out of numerical order");
        }
    }

    #[test]
    fn qft_gate_kinds() {
        let p = Program::qft(4);
        // Adjacent pairs get R2, distance-2 pairs R3, etc.
        for ins in &p {
            match ins.kind {
                InstructionKind::ControlledPhase { k } => {
                    assert_eq!(k, ins.b.index() - ins.a.index() + 1);
                }
                other => panic!("QFT uses controlled phases, got {other}"),
            }
        }
    }

    #[test]
    fn mm_is_complete_bipartite() {
        let n = 5;
        let p = Program::modular_multiplication(n);
        assert_eq!(p.len() as u32, n * n);
        assert_eq!(p.n_qubits(), 2 * n);
        let mut seen = std::collections::HashSet::new();
        for ins in &p {
            assert!(ins.a.index() < n, "left operand in A");
            assert!(ins.b.index() >= n, "right operand in B");
            assert!(seen.insert((ins.a.index(), ins.b.index())));
        }
        assert_eq!(seen.len() as u32, n * n);
    }

    #[test]
    fn mm_rounds_are_parallel() {
        // Within each round of n instructions, no qubit repeats.
        let n = 6;
        let p = Program::modular_multiplication(n);
        for round in p.instructions().chunks(n as usize) {
            let mut used = std::collections::HashSet::new();
            for ins in round {
                assert!(used.insert(ins.a));
                assert!(used.insert(ins.b));
            }
        }
    }

    #[test]
    fn me_interleaves_square_and_multiply() {
        let n = 4;
        let steps = 2;
        let p = Program::modular_exponentiation(n, steps);
        let square_len = (n * (n - 1) / 2) as usize;
        let mm_len = (n * n) as usize;
        assert_eq!(p.len(), steps as usize * (square_len + mm_len));
        // First squaring block touches only register A.
        for ins in &p.instructions()[..square_len] {
            assert!(ins.a.index() < n && ins.b.index() < n);
        }
        // Then a bipartite block.
        for ins in &p.instructions()[square_len..square_len + mm_len] {
            assert!(ins.b.index() >= n);
        }
    }

    #[test]
    fn shor_kernel_composes() {
        let p = Program::shor_kernel(4, 1);
        let me = Program::modular_exponentiation(4, 1);
        let qft = Program::qft(4);
        assert_eq!(p.len(), me.len() + qft.len());
        assert_eq!(p.n_qubits(), 8);
    }

    #[test]
    #[should_panic(expected = "at least two qubits")]
    fn qft_needs_two() {
        let _ = Program::qft(1);
    }

    #[test]
    fn synthetic_is_deterministic_and_valid() {
        let a = Program::synthetic(8, 40, 2006);
        let b = Program::synthetic(8, 40, 2006);
        assert_eq!(a, b, "same seed, same traffic");
        assert_eq!(a.len(), 40);
        assert_eq!(a.n_qubits(), 8);
        for ins in &a {
            assert_ne!(ins.a, ins.b);
            assert!(ins.a.index() < 8 && ins.b.index() < 8);
        }
        let c = Program::synthetic(8, 40, 2007);
        assert_ne!(a, c, "different seeds should diverge");
    }
}
