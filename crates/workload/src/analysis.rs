//! Dependency analysis of logical programs.
//!
//! The classical scheduler "attempts to execute as many logical
//! instructions in parallel as possible while maintaining instruction
//! order dependencies" (Section 5). The only dependencies in this model
//! are per-qubit program order; the induced wavefront structure determines
//! the parallelism available to the machine.

use std::collections::HashMap;

use crate::program::{LogicalQubit, Program};

impl Program {
    /// Assigns each instruction its earliest dependency level (1-based):
    /// an instruction's level is one more than the latest level among
    /// earlier instructions touching either operand.
    pub fn dependency_levels(&self) -> Vec<u32> {
        let mut last: HashMap<LogicalQubit, u32> = HashMap::new();
        let mut levels = Vec::with_capacity(self.len());
        for ins in self {
            let level = 1 + last
                .get(&ins.a)
                .copied()
                .unwrap_or(0)
                .max(last.get(&ins.b).copied().unwrap_or(0));
            last.insert(ins.a, level);
            last.insert(ins.b, level);
            levels.push(level);
        }
        levels
    }

    /// Number of instructions at each dependency level (index 0 = level 1).
    /// The critical-path length is the vector's length; the maximum entry
    /// is the peak parallelism.
    pub fn parallelism_profile(&self) -> Vec<u32> {
        let levels = self.dependency_levels();
        let depth = levels.iter().copied().max().unwrap_or(0) as usize;
        let mut profile = vec![0u32; depth];
        for l in levels {
            profile[l as usize - 1] += 1;
        }
        profile
    }

    /// The critical-path length in dependency levels.
    pub fn critical_path(&self) -> u32 {
        self.dependency_levels().into_iter().max().unwrap_or(0)
    }

    /// Average instructions per level — the mean parallelism a machine
    /// with unlimited resources could exploit.
    pub fn mean_parallelism(&self) -> f64 {
        let depth = self.critical_path();
        if depth == 0 {
            return 0.0;
        }
        self.len() as f64 / f64::from(depth)
    }

    /// Whether `order` (a permutation of instruction indices) is a valid
    /// execution order: every pair of instructions sharing a qubit keeps
    /// its program-order relation.
    pub fn is_valid_order(&self, order: &[usize]) -> bool {
        if order.len() != self.len() {
            return false;
        }
        let mut position = vec![usize::MAX; self.len()];
        for (pos, &idx) in order.iter().enumerate() {
            if idx >= self.len() || position[idx] != usize::MAX {
                return false;
            }
            position[idx] = pos;
        }
        let ins = self.instructions();
        for i in 0..ins.len() {
            for j in (i + 1)..ins.len() {
                let share = ins[j].touches(ins[i].a) || ins[j].touches(ins[i].b);
                if share && position[i] > position[j] {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Instruction;

    #[test]
    fn qft_levels_are_anti_diagonals() {
        // Level of 0-based pair (i, j) in the QFT wavefront is i + j.
        let p = Program::qft(8);
        let levels = p.dependency_levels();
        for (ins, level) in p.iter().zip(levels) {
            assert_eq!(level, ins.a.index() + ins.b.index(), "{ins}");
        }
    }

    #[test]
    fn qft_profile_shape() {
        // QFT-n has 2n−3 levels; the middle level has the most pairs.
        let n = 16u32;
        let p = Program::qft(n);
        let profile = p.parallelism_profile();
        assert_eq!(profile.len() as u32, 2 * n - 3);
        assert_eq!(profile[0], 1);
        let peak = *profile.iter().max().unwrap();
        assert_eq!(peak, n / 2, "peak parallelism of all-to-all is n/2");
        assert_eq!(profile.iter().sum::<u32>() as usize, p.len());
        assert_eq!(p.critical_path(), 2 * n - 3);
    }

    #[test]
    fn mm_profile_is_flat() {
        // Each rotated round of MM is fully parallel: profile = [n; n].
        let n = 6u32;
        let p = Program::modular_multiplication(n);
        let profile = p.parallelism_profile();
        assert_eq!(profile, vec![n; n as usize]);
        assert!((p.mean_parallelism() - f64::from(n)).abs() < 1e-12);
    }

    #[test]
    fn serial_chain_has_no_parallelism() {
        let p = Program::new(
            3,
            vec![
                Instruction::interact(0, 1),
                Instruction::interact(1, 2),
                Instruction::interact(0, 2),
            ],
        )
        .unwrap();
        assert_eq!(p.dependency_levels(), vec![1, 2, 3]);
        assert_eq!(p.mean_parallelism(), 1.0);
    }

    #[test]
    fn independent_pairs_share_level_one() {
        let p = Program::new(
            4,
            vec![Instruction::interact(0, 1), Instruction::interact(2, 3)],
        )
        .unwrap();
        assert_eq!(p.dependency_levels(), vec![1, 1]);
    }

    #[test]
    fn order_validation() {
        let p = Program::new(
            4,
            vec![
                Instruction::interact(0, 1), // 0
                Instruction::interact(2, 3), // 1
                Instruction::interact(0, 2), // 2 (depends on both)
            ],
        )
        .unwrap();
        assert!(p.is_valid_order(&[0, 1, 2]));
        assert!(p.is_valid_order(&[1, 0, 2]), "independent prefix may swap");
        assert!(!p.is_valid_order(&[2, 0, 1]), "dependent op cannot lead");
        assert!(!p.is_valid_order(&[0, 1]), "must be a permutation");
        assert!(!p.is_valid_order(&[0, 0, 1]), "no duplicates");
    }

    #[test]
    fn empty_program() {
        let p = Program::new(4, vec![]).unwrap();
        assert_eq!(p.critical_path(), 0);
        assert_eq!(p.mean_parallelism(), 0.0);
        assert!(p.parallelism_profile().is_empty());
        assert!(p.is_valid_order(&[]));
    }
}
