//! Quantum workload generators — **Section 5.2** of Isailovic et al.
//!
//! The paper drives its communication simulator with the kernels of Shor's
//! factorisation algorithm:
//!
//! * **QFT** — the Quantum Fourier Transform: each logical qubit interacts
//!   once with every other, in numerical order ("1-2, 1-3, (1-4, 2-3),
//!   (1-5, 2-4), …"), giving an all-to-all pattern;
//! * **MM** — modular multiplication: a bipartite pattern between two
//!   register sets;
//! * **ME** — modular exponentiation: squaring steps (all-to-all within a
//!   set) alternating with multiplication steps (bipartite);
//! * the composed **Shor kernel**.
//!
//! Programs are purely logical: a sequence of two-logical-qubit
//! instructions with program-order dependencies per qubit. Mapping onto a
//! machine (layouts, routes) happens in `qic-core`.
//!
//! # Example
//!
//! ```
//! use qic_workload::prelude::*;
//!
//! let qft = Program::qft(6);
//! assert_eq!(qft.len(), 6 * 5 / 2);
//! // The dependency wavefronts follow the paper's anti-diagonals:
//! let levels = qft.dependency_levels();
//! assert_eq!(levels[0], 1);               // 1-2
//! assert_eq!(qft.parallelism_profile().len(), 2 * 6 - 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod generators;
pub mod program;

/// Convenient glob-import surface: `use qic_workload::prelude::*;`.
pub mod prelude {
    pub use crate::program::{Instruction, InstructionKind, LogicalQubit, Program, ProgramError};
}

pub use program::{Instruction, InstructionKind, LogicalQubit, Program, ProgramError};
