//! Logical programs: sequences of two-logical-qubit instructions.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a logical qubit (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LogicalQubit(pub u32);

impl LogicalQubit {
    /// The raw index.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for LogicalQubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// What gate an instruction performs. The communication simulator only
/// cares that two logical qubits must meet; the kind is carried for
/// documentation, trace output and gate-latency modelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstructionKind {
    /// Controlled phase `R_k` (angle `2π/2^k`) — the QFT's gate family.
    ControlledPhase {
        /// The `k` in `R_k`.
        k: u32,
    },
    /// A controlled-NOT.
    Cnot,
    /// A generic two-logical-qubit interaction (modular-arithmetic steps
    /// are abstracted to this).
    Interact,
}

impl fmt::Display for InstructionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstructionKind::ControlledPhase { k } => write!(f, "R{k}"),
            InstructionKind::Cnot => f.write_str("CNOT"),
            InstructionKind::Interact => f.write_str("INT"),
        }
    }
}

/// One two-logical-qubit instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Instruction {
    /// First operand.
    pub a: LogicalQubit,
    /// Second operand.
    pub b: LogicalQubit,
    /// Gate kind.
    pub kind: InstructionKind,
}

impl Instruction {
    /// A generic interaction between qubits `a` and `b`.
    pub fn interact(a: u32, b: u32) -> Self {
        Instruction {
            a: LogicalQubit(a),
            b: LogicalQubit(b),
            kind: InstructionKind::Interact,
        }
    }

    /// Whether `q` is one of the operands.
    pub fn touches(&self, q: LogicalQubit) -> bool {
        self.a == q || self.b == q
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.kind, self.a, self.b)
    }
}

/// Errors raised by [`Program::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// An instruction names a qubit outside `0..n_qubits`.
    QubitOutOfRange {
        /// Index of the offending instruction.
        index: usize,
        /// The out-of-range qubit.
        qubit: LogicalQubit,
        /// Number of qubits the program declares.
        n_qubits: u32,
    },
    /// An instruction's two operands are the same qubit.
    SelfInteraction {
        /// Index of the offending instruction.
        index: usize,
        /// The repeated operand.
        qubit: LogicalQubit,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::QubitOutOfRange {
                index,
                qubit,
                n_qubits,
            } => {
                write!(
                    f,
                    "instruction {index} uses {qubit} but the program has {n_qubits} qubits"
                )
            }
            ProgramError::SelfInteraction { index, qubit } => {
                write!(f, "instruction {index} interacts {qubit} with itself")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// A logical program: `n_qubits` logical qubits and an ordered instruction
/// list. Instructions touching a common qubit must execute in program
/// order; otherwise they may run concurrently.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    n_qubits: u32,
    instructions: Vec<Instruction>,
}

impl Program {
    /// Creates a program, validating all operands.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] if any instruction names an out-of-range
    /// qubit or interacts a qubit with itself.
    pub fn new(n_qubits: u32, instructions: Vec<Instruction>) -> Result<Self, ProgramError> {
        for (index, ins) in instructions.iter().enumerate() {
            for q in [ins.a, ins.b] {
                if q.0 >= n_qubits {
                    return Err(ProgramError::QubitOutOfRange {
                        index,
                        qubit: q,
                        n_qubits,
                    });
                }
            }
            if ins.a == ins.b {
                return Err(ProgramError::SelfInteraction {
                    index,
                    qubit: ins.a,
                });
            }
        }
        Ok(Program {
            n_qubits,
            instructions,
        })
    }

    /// Number of logical qubits.
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The instruction list in program order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Iterates over the instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instructions.iter()
    }

    /// Concatenates another program onto this one (qubit spaces must
    /// match).
    ///
    /// # Panics
    ///
    /// Panics if the two programs declare different qubit counts.
    pub fn then(mut self, next: Program) -> Program {
        assert_eq!(
            self.n_qubits, next.n_qubits,
            "cannot concatenate programs over different qubit counts"
        );
        self.instructions.extend(next.instructions);
        self
    }
}

impl<'a> IntoIterator for &'a Program {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;

    fn into_iter(self) -> Self::IntoIter {
        self.instructions.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_program() {
        let p = Program::new(
            3,
            vec![Instruction::interact(0, 1), Instruction::interact(1, 2)],
        )
        .unwrap();
        assert_eq!(p.n_qubits(), 3);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.iter().count(), 2);
        assert_eq!((&p).into_iter().count(), 2);
    }

    #[test]
    fn rejects_out_of_range() {
        let err = Program::new(2, vec![Instruction::interact(0, 5)]).unwrap_err();
        match err {
            ProgramError::QubitOutOfRange {
                index,
                qubit,
                n_qubits,
            } => {
                assert_eq!(index, 0);
                assert_eq!(qubit, LogicalQubit(5));
                assert_eq!(n_qubits, 2);
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn rejects_self_interaction() {
        let err = Program::new(2, vec![Instruction::interact(1, 1)]).unwrap_err();
        assert!(matches!(err, ProgramError::SelfInteraction { .. }));
        assert!(err.to_string().contains("itself"));
    }

    #[test]
    fn touches() {
        let i = Instruction::interact(3, 7);
        assert!(i.touches(LogicalQubit(3)));
        assert!(i.touches(LogicalQubit(7)));
        assert!(!i.touches(LogicalQubit(5)));
    }

    #[test]
    fn concatenation() {
        let a = Program::new(4, vec![Instruction::interact(0, 1)]).unwrap();
        let b = Program::new(4, vec![Instruction::interact(2, 3)]).unwrap();
        let c = a.then(b);
        assert_eq!(c.len(), 2);
    }

    #[test]
    #[should_panic(expected = "different qubit counts")]
    fn concatenation_checks_width() {
        let a = Program::new(4, vec![]).unwrap();
        let b = Program::new(5, vec![]).unwrap();
        let _ = a.then(b);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Instruction::interact(0, 1).to_string(), "INT q0 q1");
        let r = Instruction {
            a: LogicalQubit(1),
            b: LogicalQubit(2),
            kind: InstructionKind::ControlledPhase { k: 3 },
        };
        assert_eq!(r.to_string(), "R3 q1 q2");
        assert_eq!(InstructionKind::Cnot.to_string(), "CNOT");
    }
}
