//! Property-based tests for workload generation and dependency analysis.

use proptest::prelude::*;

use qic_workload::{Instruction, LogicalQubit, Program};

fn random_program() -> impl Strategy<Value = Program> {
    (2u32..12, 1usize..40).prop_flat_map(|(n, len)| {
        proptest::collection::vec((0..n, 0..n), len).prop_map(move |pairs| {
            let instructions = pairs
                .into_iter()
                .map(|(a, b)| {
                    if a == b {
                        Instruction::interact(a, (a + 1) % n)
                    } else {
                        Instruction::interact(a, b)
                    }
                })
                .collect();
            Program::new(n, instructions).expect("constructed pairs are valid")
        })
    })
}

proptest! {
    #[test]
    fn qft_has_all_pairs_once(n in 2u32..40) {
        let p = Program::qft(n);
        prop_assert_eq!(p.len() as u32, n * (n - 1) / 2);
        let mut seen = std::collections::HashSet::new();
        for ins in &p {
            prop_assert!(ins.a < ins.b);
            prop_assert!(seen.insert((ins.a, ins.b)));
        }
    }

    #[test]
    fn qft_levels_are_anti_diagonals(n in 2u32..24) {
        let p = Program::qft(n);
        for (ins, level) in p.iter().zip(p.dependency_levels()) {
            prop_assert_eq!(level, ins.a.index() + ins.b.index());
        }
    }

    #[test]
    fn program_order_is_a_valid_order(p in random_program()) {
        let identity: Vec<usize> = (0..p.len()).collect();
        prop_assert!(p.is_valid_order(&identity));
    }

    #[test]
    fn level_sorted_order_is_valid(p in random_program()) {
        // Stable-sorting instructions by dependency level must remain a
        // valid execution order.
        let levels = p.dependency_levels();
        let mut order: Vec<usize> = (0..p.len()).collect();
        order.sort_by_key(|&i| levels[i]);
        prop_assert!(p.is_valid_order(&order));
    }

    #[test]
    fn profile_accounts_every_instruction(p in random_program()) {
        let profile = p.parallelism_profile();
        prop_assert_eq!(profile.iter().sum::<u32>() as usize, p.len());
        prop_assert_eq!(profile.len() as u32, p.critical_path());
        if !p.is_empty() {
            prop_assert!(p.mean_parallelism() >= 1.0 - 1e-12);
        }
    }

    #[test]
    fn levels_respect_per_qubit_order(p in random_program()) {
        let levels = p.dependency_levels();
        let ins = p.instructions();
        for q in 0..p.n_qubits() {
            let qubit = LogicalQubit(q);
            let mut last = 0;
            for (i, instruction) in ins.iter().enumerate() {
                if instruction.touches(qubit) {
                    prop_assert!(levels[i] > last, "levels strictly increase per qubit");
                    last = levels[i];
                }
            }
        }
    }

    #[test]
    fn mm_is_complete_bipartite(n in 1u32..16) {
        let p = Program::modular_multiplication(n);
        prop_assert_eq!(p.len() as u32, n * n);
        for ins in &p {
            prop_assert!(ins.a.index() < n);
            prop_assert!((n..2 * n).contains(&ins.b.index()));
        }
    }
}
