//! Figure 13: sample layout of a mesh grid containing Logical Qubits and
//! G, T', C and P nodes.
//!
//! Renders the machine's actual floorplan: each site holds an LQ home (the
//! snake placement), a T' router with its C/P endpoint nodes, and every
//! edge carries a G node feeding the virtual wire.

use qic_bench::header;
use qic_core::layout::Placement;
use qic_net::config::NetConfig;
use qic_net::topology::{Coord, Mesh};
use qic_workload::LogicalQubit;

fn main() {
    header(
        "Figure 13",
        "Sample layout of a 5x3 mesh grid (LQ + G, T', C, P nodes)",
        "every LQ site has a T' node with C/P endpoints; G nodes sit on every edge",
    );
    let (w, h) = (5u16, 3u16);
    let mesh = Mesh::new(w, h);
    let placement = Placement::snake(w, h, u32::from(w) * u32::from(h)).expect("fits");

    // Invert the placement: site -> logical qubit id.
    let mut site_q = vec![None; mesh.nodes()];
    for q in 0..u32::from(w) * u32::from(h) {
        let home = placement.home(LogicalQubit(q));
        site_q[mesh.node_index(home)] = Some(q);
    }

    println!();
    for y in (0..h).rev() {
        // Node row.
        let mut row = String::new();
        for x in 0..w {
            let q = site_q[mesh.node_index(Coord::new(x, y))].expect("full placement");
            row.push_str(&format!("[LQ{q:02} T'CP]"));
            if x + 1 < w {
                row.push_str("--G--");
            }
        }
        println!("  {row}");
        // Vertical edges.
        if y > 0 {
            let mut bars = String::from("  ");
            for x in 0..w {
                bars.push_str("     |     ");
                if x + 1 < w {
                    bars.push_str("     ");
                }
            }
            println!("{bars}");
            let mut gs = String::from("  ");
            for x in 0..w {
                gs.push_str("     G     ");
                if x + 1 < w {
                    gs.push_str("     ");
                }
            }
            println!("{gs}");
            println!("{bars}");
        }
    }
    let cfg = NetConfig::paper_scale();
    println!(
        "\nlegend: [LQnn T'CP] = logical-qubit home with teleporter router (T'),\n\
         corrector (C) and queue purifiers (P); G = generator node on each edge.\n\
         LQ numbering follows the snake placement the Mobile-Qubit walk uses\n\
         (Figure 15). At paper scale the grid is {}x{} with t={} teleporters,\n\
         g={} generators and p={} queue purifiers per node.",
        cfg.mesh_width,
        cfg.mesh_height,
        cfg.teleporters_per_node,
        cfg.generators_per_edge,
        cfg.purifiers_per_site
    );
    println!(
        "\nedges: {} (one G node each); nodes: {}",
        mesh.edges(),
        mesh.nodes()
    );
}
