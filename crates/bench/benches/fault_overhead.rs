//! Fault-layer overhead: the zero-fault hot path must cost nothing.
//!
//! `fault_overhead_healthy_baseline` repeats the PR 4 `ops_micro`
//! baseline (`net_sim_one_comm_4x4`) inside this bench so the
//! comparison is side-by-side: `fault_overhead_zero_fault_wrapper`
//! runs the identical simulation through a `DegradedFabric` compiled
//! from a zero-fault plan and must match it; the degraded variants show
//! what actual damage costs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qic_fault::FaultPlan;
use qic_net::config::NetConfig;
use qic_net::sim::{BatchDriver, NetworkSim, OneShotDriver};
use qic_net::topology::{Coord, Mesh, Topology};

fn one_comm_driver() -> OneShotDriver {
    OneShotDriver::new(Coord::new(0, 0), Coord::new(3, 3))
}

fn bench_zero_fault_path(c: &mut Criterion) {
    // The PR 4 baseline, verbatim.
    c.bench_function("fault_overhead_healthy_baseline", |b| {
        b.iter(|| NetworkSim::new(NetConfig::small_test()).run(&mut one_comm_driver()))
    });
    // The same simulation through a pre-compiled zero-fault
    // DegradedFabric: the wrapper's only per-event cost should be the
    // (empty) masking checks.
    let cfg = NetConfig::small_test();
    let degraded = FaultPlan::healthy().compile(cfg.fabric());
    c.bench_function("fault_overhead_zero_fault_wrapper", |b| {
        b.iter(|| {
            NetworkSim::with_topology(cfg.clone(), degraded.clone()).run(&mut one_comm_driver())
        })
    });
}

fn bench_degraded_path(c: &mut Criterion) {
    // A genuinely detoured route: kill the (1,1)—(2,1) link and send
    // traffic straight through it, (0,1) → (3,1) — 3 healthy hops
    // inflate to 5 around the hole (the same pattern
    // tests/resilience.rs pins).
    let cfg = NetConfig::small_test();
    let fabric = cfg.fabric();
    let mid = fabric.link_index(
        fabric.node_index(Coord::new(1, 1)),
        qic_net::topology::Port(0),
    ) as u32;
    let detour = FaultPlan::healthy().with_dead_link(mid).compile(fabric);
    c.bench_function("fault_overhead_degraded_detour", |b| {
        b.iter(|| {
            let mut driver = OneShotDriver::new(Coord::new(0, 1), Coord::new(3, 1));
            NetworkSim::with_topology(cfg.clone(), detour.clone()).run(&mut driver)
        })
    });
    // Bernoulli damage under crossing traffic.
    let damaged = FaultPlan::healthy()
        .with_seed(42)
        .with_link_kill(0.15)
        .compile(cfg.fabric());
    c.bench_function("fault_overhead_degraded_batch", |b| {
        b.iter(|| {
            let mut driver = BatchDriver::new(vec![
                (Coord::new(0, 0), Coord::new(3, 3)),
                (Coord::new(3, 0), Coord::new(0, 3)),
            ]);
            NetworkSim::with_topology(cfg.clone(), damaged.clone()).run(&mut driver)
        })
    });
}

fn bench_compile(c: &mut Criterion) {
    // Plan compilation (schedule resolution + all-pairs BFS) at the
    // paper's 16×16 scale — the per-sweep-point setup cost.
    c.bench_function("fault_compile_16x16_mesh", |b| {
        b.iter(|| {
            black_box(
                FaultPlan::healthy()
                    .with_seed(7)
                    .with_link_kill(0.1)
                    .compile(Mesh::new(16, 16)),
            )
            .surviving_links()
        })
    });
}

criterion_group!(
    benches,
    bench_zero_fault_path,
    bench_degraded_path,
    bench_compile
);
criterion_main!(benches);
