//! Figure 16: QFT benchmark execution vs resource allocation, Home-Base
//! and Mobile-Qubit layouts — a `qic-sweep` campaign over ratio × layout
//! (points run on the campaign worker pool).
//!
//! Runs at reduced scale (QFT-64 on 8x8, level-1 code) by default;
//! set `QIC_FULL=1` for the paper's QFT-256 on 16x16 with 392 pairs per
//! communication (minutes of wall-clock time).

use qic_bench::{campaign_line, full_scale, header};
use qic_core::experiment::{figure16_from_campaign, Fig16Scale};
use qic_core::scenario::{fig16_spec, run};

fn main() {
    let scale = if full_scale() {
        Fig16Scale::Paper
    } else {
        Fig16Scale::Reduced
    };
    header(
        "Figure 16",
        "QFT execution time normalized to t=g=p=1024, vs resource allocation",
        "Home Base tolerates sacrificing purifiers for teleporters; Mobile suffers at t=g=8p",
    );
    println!("scale: {scale:?} (set QIC_FULL=1 for paper scale)\n");
    let campaign = run(&fig16_spec(scale))
        .expect("figure presets validate")
        .report;
    campaign_line(&campaign);
    let result = figure16_from_campaign(scale, &campaign);
    println!(
        "baseline makespans (t=g=p=1024): Home Base {:.1} ms, Mobile {:.1} ms\n",
        result.baseline_us[0] / 1e3,
        result.baseline_us[1] / 1e3
    );
    println!(
        "{:<10} {:>4} {:>4} {:>4} {:>12} {:>12}",
        "config", "t", "g", "p", "HomeBase", "Mobile"
    );
    for p in &result.points {
        println!(
            "{:<10} {:>4} {:>4} {:>4} {:>12.3} {:>12.3}",
            p.label, p.t, p.g, p.p, p.home_base, p.mobile
        );
    }

    // The campaign also carries tail latency per point (satellite data
    // the hand-rolled sweep never exposed).
    println!(
        "\n{:<10} {:<12} {:>14} {:>14} {:>14}",
        "config", "layout", "p50 (µs)", "p95 (µs)", "p99 (µs)"
    );
    for point in &campaign.points {
        println!(
            "{:<10} {:<12} {:>14.1} {:>14.1} {:>14.1}",
            format!("ratio={}", point.param("ratio")),
            point.param("layout").to_string(),
            point.mean("latency_p50_us").unwrap_or(f64::NAN),
            point.mean("latency_p95_us").unwrap_or(f64::NAN),
            point.mean("latency_p99_us").unwrap_or(f64::NAN),
        );
    }

    let r4 = result
        .points
        .iter()
        .find(|p| p.label == "t=g=4p")
        .expect("sweep point");
    let r8 = result
        .points
        .iter()
        .find(|p| p.label == "t=g=8p")
        .expect("sweep point");
    println!();
    println!(
        "Mobile degradation from 4p to 8p: {:+.1}%  (paper: 'performance suffers')",
        (r8.mobile / r4.mobile - 1.0) * 100.0
    );
    println!(
        "Home Base degradation from 4p to 8p: {:+.1}%  (paper: tolerates the trade better)",
        (r8.home_base / r4.home_base - 1.0) * 100.0
    );
}
