//! Figure 12: EPR pairs teleported vs uniform operation error rate; all
//! placements break down near 1e-5 — a `qic-sweep` campaign over
//! placement × log-spaced error rate.

use qic_analytic::figures;
use qic_bench::{campaign_line, header, print_series, verdict};

fn main() {
    header(
        "Figure 12",
        "Teleported EPR pairs to stay within threshold vs uniform op error rate",
        "all curves end abruptly near error 1e-5 where purification stops reaching threshold",
    );
    let campaign = figures::figure12_campaign(16, 4);
    campaign_line(&campaign);
    let series = figures::placement_series_of(&campaign, "pairs");
    for s in &series {
        print_series(&s.label, &s.points);
    }
    println!();
    for s in &series {
        let bx = s.breakdown_x().unwrap_or(f64::NAN);
        verdict(
            &format!(
                "breakdown error rate [{}]",
                &s.label[..28.min(s.label.len())]
            ),
            1e-5,
            bx,
            4.0,
        );
    }
}
