//! Section 4.6: the ~600-cell ballistic/teleport latency crossover that
//! fixes the teleporter-node spacing.

use qic_analytic::crossover;
use qic_bench::{header, print_series, verdict};
use qic_physics::optime::OpTimes;

fn main() {
    header(
        "Crossover (Section 4.6)",
        "Ballistic vs teleportation latency vs distance",
        "teleportation becomes faster than ballistic movement at ~600 cells",
    );
    let times = OpTimes::ion_trap();
    let pts = crossover::ballistic_vs_teleport((0..=1200).step_by(100), &times);
    print_series(
        "ballistic latency (µs)",
        &pts.iter()
            .map(|p| (p.cells as f64, p.ballistic.as_us_f64()))
            .collect::<Vec<_>>(),
    );
    print_series(
        "teleport latency (µs)",
        &pts.iter()
            .map(|p| (p.cells as f64, p.teleport.as_us_f64()))
            .collect::<Vec<_>>(),
    );
    let d = crossover::crossover_cells(&times).expect("crossover exists");
    println!();
    verdict("crossover distance (cells)", 600.0, d as f64, 1.1);
}
