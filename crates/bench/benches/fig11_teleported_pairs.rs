//! Figure 11: EPR pairs teleported through the channel vs distance.

use qic_analytic::figures;
use qic_analytic::plan::ChannelModel;
use qic_bench::{header, print_series, verdict};

fn main() {
    header(
        "Figure 11",
        "EPR pairs teleported per data communication vs distance",
        "only the before-teleport (virtual wire) curves drop vs Figure 10; they are lowest",
    );
    let series = figures::figure11(&ChannelModel::ion_trap(), 60);
    for s in &series {
        let thin: Vec<(f64, f64)> = s
            .points
            .iter()
            .copied()
            .filter(|p| (p.0 as u64) % 10 == 0)
            .collect();
        print_series(&s.label, &thin);
    }

    let at60 = |frag: &str| {
        series
            .iter()
            .find(|s| s.label.contains(frag))
            .and_then(|s| s.points.iter().find(|p| p.0 == 60.0))
            .map(|p| p.1)
            .unwrap_or(f64::NAN)
    };
    println!();
    verdict(
        "endpoints-only teleported at 60 hops",
        5.3e2,
        at60("only at end"),
        2.0,
    );
    verdict(
        "once-before teleported (lower)",
        2.5e2,
        at60("once before"),
        2.0,
    );
    verdict(
        "2x-before teleported (lowest)",
        1.2e2,
        at60("2x before"),
        2.0,
    );
    println!(
        "  ordering flip vs Figure 10 confirmed: virtual-wire purification trades\n\
         local pairs for fewer pairs through the (scarce) teleporters."
    );
}
