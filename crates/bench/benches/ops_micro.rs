//! Criterion micro-benchmarks for the hot paths of the simulator stack.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qic_des::queue::EventQueue;
use qic_net::config::NetConfig;
use qic_net::routing::{DimensionOrder, MinimalAdaptive, Router};
use qic_net::sim::{NetworkSim, OneShotDriver};
use qic_net::topology::{Coord, Hypercube, Mesh, TopologyKind, Torus};
use qic_physics::bell::BellDiagonal;
use qic_physics::time::Duration;
use qic_purify::protocol::{Protocol, RoundNoise};

fn bench_purification(c: &mut Criterion) {
    let state = BellDiagonal::werner_f64(0.99).unwrap();
    let noise = RoundNoise::ion_trap();
    c.bench_function("dejmps_noisy_step", |b| {
        b.iter(|| Protocol::Dejmps.noisy_step(black_box(&state), black_box(&noise)))
    });
    c.bench_function("bell_convolve", |b| {
        b.iter(|| black_box(&state).convolve(black_box(&state)))
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_1k_schedule_pop", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule_after(Duration::from_nanos((i * 7919) % 10_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            acc
        })
    });
}

fn bench_routing(c: &mut Criterion) {
    let mesh = Mesh::new(16, 16);
    c.bench_function("dimension_order_route_16x16", |b| {
        b.iter(|| mesh.route(black_box(Coord::new(0, 0)), black_box(Coord::new(15, 15))))
    });
    // The trait-based routers over each fabric at 256 nodes.
    let torus = Torus::new(16, 16);
    let cube = Hypercube::new(8);
    let no_load = |_: usize| 0u32;
    let (src, dst) = (0usize, 255usize);
    c.bench_function("dor_route_torus_16x16", |b| {
        b.iter(|| DimensionOrder.route(&torus, black_box(src), black_box(dst), &no_load))
    });
    c.bench_function("dor_route_hypercube_256", |b| {
        b.iter(|| DimensionOrder.route(&cube, black_box(src), black_box(dst), &no_load))
    });
    let load = |l: usize| (l % 5) as u32;
    c.bench_function("adaptive_route_mesh_16x16", |b| {
        b.iter(|| {
            MinimalAdaptive.route(
                &mesh,
                black_box(src),
                black_box(mesh.node_index(Coord::new(15, 15))),
                &load,
            )
        })
    });
}

fn bench_small_sim(c: &mut Criterion) {
    c.bench_function("net_sim_one_comm_4x4", |b| {
        b.iter(|| {
            let mut driver = OneShotDriver::new(Coord::new(0, 0), Coord::new(3, 3));
            NetworkSim::new(NetConfig::small_test()).run(&mut driver)
        })
    });
    c.bench_function("net_sim_one_comm_4x4_torus", |b| {
        b.iter(|| {
            let mut driver = OneShotDriver::new(Coord::new(0, 0), Coord::new(3, 3));
            NetworkSim::new(NetConfig::small_test().with_topology(TopologyKind::Torus))
                .run(&mut driver)
        })
    });
}

criterion_group!(
    benches,
    bench_purification,
    bench_event_queue,
    bench_routing,
    bench_small_sim
);
criterion_main!(benches);
