//! Ablation studies for the design decisions DESIGN.md calls out:
//!
//! 1. **Purification protocol** — DEJMPS vs BBPSSW as the *channel*
//!    protocol (§4.5: "purification mechanisms must be considered
//!    carefully").
//! 2. **Teleporter spacing** — hop lengths around the 600-cell crossover
//!    (§4.6: longer hops reduce hop count but accumulate more ballistic
//!    error per link).
//! 3. **Queue vs tree purifiers** — hardware and latency of the two
//!    endpoint implementations (§5.1).

use qic_analytic::plan::ChannelModel;
use qic_bench::header;
use qic_physics::optime::OpTimes;
use qic_purify::protocol::{Protocol, RoundNoise};
use qic_purify::queue::QueuePurifier;
use qic_purify::tree::TreePurifier;

fn main() {
    header(
        "Ablations",
        "Protocol choice, teleporter spacing, purifier implementation",
        "design-decision sensitivity studies referenced by DESIGN.md",
    );

    // 1. Channel cost under each protocol, 30 hops.
    println!("\n== protocol ablation (30-hop channel) ==");
    println!(
        "{:<10} {:>8} {:>14} {:>14} {:>14}",
        "protocol", "rounds", "endpoint", "teleported", "total"
    );
    for protocol in Protocol::ALL {
        let model = ChannelModel::ion_trap().with_protocol(protocol);
        match model.plan(30) {
            Ok(p) => println!(
                "{:<10} {:>8} {:>14.2} {:>14.1} {:>14.1}",
                protocol.to_string(),
                p.endpoint_rounds,
                p.endpoint_pairs,
                p.teleported_pairs,
                p.total_pairs
            ),
            Err(e) => println!("{:<10} infeasible: {e}", protocol.to_string()),
        }
    }
    println!("-> DEJMPS needs far fewer endpoint rounds; BBPSSW's exponential\n   round cost is why the paper uses DEJMPS everywhere.");

    // 2. Hop-length ablation: same physical span (18000 cells), varying
    // teleporter spacing.
    println!("\n== teleporter-spacing ablation (fixed 18000-cell span) ==");
    println!(
        "{:<12} {:>6} {:>10} {:>14} {:>14} {:>12}",
        "hop cells", "hops", "rounds", "teleported", "total", "latency"
    );
    for hop_cells in [300u64, 600, 1200, 3000] {
        let hops = (18_000 / hop_cells) as u32;
        let model = ChannelModel::ion_trap().with_hop_cells(hop_cells);
        match model.plan(hops) {
            Ok(p) => println!(
                "{:<12} {:>6} {:>10} {:>14.1} {:>14.1} {:>12}",
                hop_cells,
                hops,
                p.endpoint_rounds,
                p.teleported_pairs,
                p.total_pairs,
                p.setup_latency.to_string()
            ),
            Err(e) => println!("{:<12} {:>6} infeasible: {e}", hop_cells, hops),
        }
    }
    println!("-> fewer, longer hops cut teleport operations and setup latency;\n   the error per link grows but endpoint purification absorbs it\n   until links degrade past what the threshold allows (§4.6's trade).");

    // 3. Queue vs tree purifiers at depth 3.
    println!("\n== purifier implementation ablation (depth 3, 30-hop channel) ==");
    let times = OpTimes::ion_trap();
    let span = 600 * 30;
    let queue = QueuePurifier::new(3, Protocol::Dejmps, RoundNoise::ion_trap());
    let tree = TreePurifier::new(3, Protocol::Dejmps);
    println!(
        "  queue purifier: {} units, serial latency {}",
        queue.depth(),
        queue.serial_latency_per_output(&times, span)
    );
    println!(
        "  tree purifier : {} units, latency {}",
        tree.hardware_units(),
        tree.latency(&times, span)
    );
    println!(
        "-> the tree is {:.1}x more hardware for ~{:.0}x less latency; the queue's\n   natural recovery from failed purifications decides it (§5.1).",
        tree.hardware_units() as f64 / f64::from(queue.depth()),
        queue.serial_latency_per_output(&times, span) / tree.latency(&times, span),
    );
}
