//! Figure 9: final EPR error vs number of teleportations, for initial
//! errors 1e-4 ... 1e-8, against the 7.5e-5 threshold.

use qic_analytic::figures;
use qic_bench::{header, print_series, verdict};
use qic_physics::constants::THRESHOLD_ERROR;
use qic_physics::error::ErrorRates;

fn main() {
    header(
        "Figure 9",
        "EPR error at the logical qubit vs teleportation hops",
        "error grows ~linearly with hops; 64 teleports raise a 1e-6 pair's error ~100x",
    );
    let series = figures::figure9(&ErrorRates::ion_trap(), 70);
    for s in &series {
        // Print every 8th point to keep the table readable.
        let thin: Vec<(f64, f64)> = s
            .points
            .iter()
            .copied()
            .filter(|p| (p.0 as u64) % 8 == 0)
            .collect();
        print_series(&s.label, &thin);
    }
    println!("\nthreshold error (horizontal line in the figure): {THRESHOLD_ERROR:e}");

    let e6 = series.iter().find(|s| s.label.starts_with("1e-6")).unwrap();
    let growth = e6.points[64].1 / e6.points[0].1;
    println!();
    verdict(
        "error growth over 64 hops, 1e-6 links (paper ~100x)",
        100.0,
        growth,
        3.0,
    );
    let e4 = series.iter().find(|s| s.label.starts_with("1e-4")).unwrap();
    println!(
        "  1e-4 links are above threshold from hop {} (unusable without purification)",
        e4.points
            .iter()
            .find(|p| p.1 > THRESHOLD_ERROR)
            .map(|p| p.0)
            .unwrap_or(f64::NAN)
    );
    let e5 = series.iter().find(|s| s.label.starts_with("1e-5")).unwrap();
    verdict(
        "hops until 1e-5 links cross threshold",
        7.0,
        e5.points
            .iter()
            .find(|p| p.1 > THRESHOLD_ERROR)
            .map(|p| p.0)
            .unwrap_or(f64::NAN),
        2.0,
    );
}
