//! Figure 10: total EPR pairs consumed vs distance, for the five
//! purification placements — a `qic-sweep` campaign over
//! placement × distance.

use qic_analytic::figures;
use qic_analytic::plan::ChannelModel;
use qic_bench::{campaign_line, header, print_series, verdict};

fn main() {
    header(
        "Figure 10",
        "Total EPR pairs used per data communication vs distance (teleport hops)",
        "endpoints-only uses fewest total pairs; after-each-teleport is exponential (off-chart)",
    );
    let campaign = figures::figure10_campaign(&ChannelModel::ion_trap(), 60);
    campaign_line(&campaign);
    let series = figures::placement_series_of(&campaign, "pairs");
    for s in &series {
        let thin: Vec<(f64, f64)> = s
            .points
            .iter()
            .copied()
            .filter(|p| (p.0 as u64) % 10 == 0)
            .collect();
        print_series(&s.label, &thin);
    }

    let at60 = |frag: &str| {
        series
            .iter()
            .find(|s| s.label.contains(frag))
            .and_then(|s| s.points.iter().find(|p| p.0 == 60.0))
            .map(|p| p.1)
            .unwrap_or(f64::NAN)
    };
    println!();
    // Endpoints-only at 60 hops: ~8.8 endpoint pairs x 61 ≈ 5.4e2 (the
    // paper's bottom curve sits between 1e2 and 1e3 at the right edge).
    verdict(
        "endpoints-only total pairs at 60 hops",
        5.0e2,
        at60("only at end"),
        2.0,
    );
    verdict(
        "once-before total at 60 hops (above endpoints-only)",
        5.7e2,
        at60("once before"),
        2.0,
    );
    verdict(
        "2x-before total at 60 hops (higher still)",
        6.6e2,
        at60("2x before"),
        2.0,
    );
    let nested = series
        .iter()
        .find(|s| s.label.contains("once after"))
        .unwrap();
    println!(
        "  nested (once after each teleport) leaves the 1e12 cap at ~{} hops (exponential)",
        nested.breakdown_x().map(|x| x + 2.0).unwrap_or(f64::NAN)
    );
}
