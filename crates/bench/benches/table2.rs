//! Table 2: error probability constants for ion-trap operations.

use qic_bench::{header, verdict};
use qic_physics::error::ErrorRates;

fn main() {
    header(
        "Table 2",
        "Operation error probabilities (ion trap)",
        "p1q=1e-8 p2q=1e-7 pmv=1e-6 pms=1e-8 (estimates from [19, 29])",
    );
    let r = ErrorRates::ion_trap();
    verdict("one-qubit gate p1q", 1e-8, r.one_qubit_gate(), 1.0001);
    verdict("two-qubit gate p2q", 1e-7, r.two_qubit_gate(), 1.0001);
    verdict("move one cell pmv", 1e-6, r.move_cell(), 1.0001);
    verdict("measure pms", 1e-8, r.measure(), 1.0001);

    // The consequence the paper draws from these numbers (§4.6): for two
    // teleporters 100 cells apart, ballistic movement error ≈ 1e-4 vs the
    // 1e-7 two-qubit gate error.
    let survival = qic_physics::transport::survival(100, &r);
    verdict("movement error across 100 cells", 1e-4, 1.0 - survival, 1.1);
}
