//! Table 1: time constants for operations in ion-trap technology.

use qic_bench::{header, verdict};
use qic_physics::optime::OpTimes;

fn main() {
    header(
        "Table 1",
        "Operation time constants (ion trap)",
        "t1q=1µs t2q=20µs tmv=0.2µs tms=100µs tgen=122µs ttprt~122µs tprfy~121µs",
    );
    let t = OpTimes::ion_trap();
    verdict(
        "one-qubit gate t1q (µs)",
        1.0,
        t.one_qubit_gate().as_us_f64(),
        1.0001,
    );
    verdict(
        "two-qubit gate t2q (µs)",
        20.0,
        t.two_qubit_gate().as_us_f64(),
        1.0001,
    );
    verdict(
        "move one cell tmv (µs)",
        0.2,
        t.move_cell().as_us_f64(),
        1.0001,
    );
    verdict("measure tms (µs)", 100.0, t.measure().as_us_f64(), 1.0001);
    verdict(
        "generate tgen (µs)",
        122.0,
        t.generate().as_us_f64(),
        1.0001,
    );
    verdict(
        "teleport ttprt, local part (µs)",
        122.0,
        t.teleport_local().as_us_f64(),
        1.0001,
    );
    verdict(
        "purify tprfy, ~600-cell channel (µs)",
        121.0,
        t.purify_round(600).as_us_f64(),
        1.02,
    );
    println!(
        "\nnote: the paper's prose derives 21µs for generation from its gates;\n\
         Table 1 lists 122µs (matched to teleport bandwidth). We follow Table 1\n\
         and expose the gates-only figure as OpTimes::generate_gates_only() = {}µs.",
        t.generate_gates_only().as_us_f64()
    );
}
