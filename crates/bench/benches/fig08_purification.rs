//! Figure 8: EPR error after purification vs number of rounds, DEJMPS vs
//! BBPSSW, initial fidelities 0.99 / 0.999 / 0.9999.

use qic_analytic::figures;
use qic_bench::{header, print_series, verdict};
use qic_physics::error::ErrorRates;

fn main() {
    header(
        "Figure 8",
        "Error (1-fidelity) of surviving EPR pairs vs purification rounds",
        "DEJMPS converges in a few rounds; BBPSSW takes 5-10x more and floors higher",
    );
    let series = figures::figure8(&ErrorRates::ion_trap(), 25);
    for s in &series {
        print_series(&s.label, &s.points);
    }

    // Quantify the headline claim: rounds to reach error 1e-5 from 0.99.
    let rounds_to = |label_frag: &str| -> f64 {
        let s = series
            .iter()
            .find(|s| s.label.contains(label_frag) && s.label.ends_with("=0.99"))
            .expect("series exists");
        s.points
            .iter()
            .find(|p| p.1 <= 1e-5)
            .map(|p| p.0)
            .unwrap_or(f64::INFINITY)
    };
    let dejmps = rounds_to("DEJMPS");
    let bbpssw = rounds_to("BBPSSW");
    println!();
    verdict("DEJMPS rounds to 1e-5 from F=0.99", 3.0, dejmps, 2.0);
    verdict("BBPSSW rounds to 1e-5 from F=0.99", 20.0, bbpssw, 2.0);
    verdict(
        "BBPSSW/DEJMPS round ratio (paper: 5-10x)",
        7.0,
        bbpssw / dejmps,
        2.0,
    );
}
