//! Figure 2: electrode layout and waveforms to shuttle an ion from cell 3
//! to cell 9.

use qic_bench::{header, verdict};
use qic_iontrap::waveform::ShuttlePlan;
use qic_physics::optime::OpTimes;

fn main() {
    header(
        "Figure 2",
        "Electrode waveforms for a 6-cell ballistic shuttle",
        "ion moves from between electrodes 3/4 to between 9/10 via staged pulses",
    );
    let times = OpTimes::ion_trap();
    let plan = ShuttlePlan::new(3, 9).expect("distinct cells");
    let schedule = plan.waveforms(&times);
    assert!(
        schedule.is_well_formed(),
        "well trajectory must be contiguous"
    );

    println!("\nelectrode drive per phase (columns = phases, T=trap, P=push, .=ground):\n");
    print!("{}", schedule.render());
    println!(
        "\nwell trajectory (cell after each phase): {:?}",
        schedule.well_trajectory()
    );
    verdict(
        "phases (one per cell)",
        6.0,
        f64::from(schedule.phases()),
        1.0001,
    );
    verdict(
        "total shuttle time (µs, Eq. 2)",
        1.2,
        schedule.total_time().as_us_f64(),
        1.0001,
    );
}
