//! Section 5.3: the expected 392 = 2^3 x 49 EPR pairs for the longest
//! communication path.

use qic_analytic::plan::ChannelModel;
use qic_bench::{header, verdict};
use qic_physics::constants::LEVEL2_STEANE_QUBITS;

fn main() {
    header(
        "Pairs per communication (Section 5.3)",
        "Endpoint pairs needed to move one level-2 logical qubit over the longest path",
        "392 = (2^3 endpoint purification) x (49 physical qubits per logical qubit)",
    );
    let model = ChannelModel::ion_trap();
    // Longest dimension-order path on the 16x16 grid: 30 hops.
    let plan = model.plan(30).expect("feasible channel");
    verdict(
        "endpoint purification rounds",
        3.0,
        f64::from(plan.endpoint_rounds),
        1.0001,
    );
    verdict(
        "raw pairs per purified pair (2^3 plus failures)",
        8.0,
        plan.endpoint_pairs,
        1.25,
    );
    verdict(
        "pairs per logical communication",
        392.0,
        plan.pairs_per_logical_comm(LEVEL2_STEANE_QUBITS),
        1.25,
    );
    println!(
        "\nchannel setup latency for the longest path: {}",
        plan.setup_latency
    );
}
