//! Shared helpers for the figure/table regeneration benches.
//!
//! Every bench target prints a "paper vs measured" block; these helpers
//! keep the formatting uniform and decide the run scale (set `QIC_FULL=1`
//! for paper-scale runs where a reduced default exists).

pub mod hotpath;

/// Whether the full paper-scale configuration was requested.
pub fn full_scale() -> bool {
    std::env::var("QIC_FULL").map(|v| v == "1").unwrap_or(false)
}

/// Prints the standard bench header.
pub fn header(id: &str, title: &str, paper_claim: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("paper: {paper_claim}");
    println!("================================================================");
}

/// Prints one labelled series as aligned columns.
pub fn print_series(label: &str, points: &[(f64, f64)]) {
    println!("\n--- {label}");
    for (x, y) in points {
        if y.is_finite() {
            println!("  {x:>12.4}  {y:>14.6e}");
        } else {
            println!("  {x:>12.4}  {:>14}", "off-chart");
        }
    }
}

/// Prints the one-line identity of a `qic-sweep` campaign: its name,
/// axes and point count.
pub fn campaign_line(report: &qic_sweep::CampaignReport) {
    let axes = report
        .axes
        .iter()
        .map(|a| format!("{}[{}]", a.name(), a.len()))
        .collect::<Vec<_>>()
        .join(" × ");
    println!(
        "campaign: {} ({} = {} points, {} replicate(s), seed {})",
        report.name,
        axes,
        report.points.len(),
        report.replicates,
        report.seed
    );
}

/// Prints a one-line verdict comparing a measured value to the paper's.
pub fn verdict(what: &str, paper: f64, measured: f64, tolerance_factor: f64) {
    let ratio = if paper != 0.0 {
        measured / paper
    } else {
        f64::NAN
    };
    let ok = ratio.is_finite() && ratio >= 1.0 / tolerance_factor && ratio <= tolerance_factor;
    println!(
        "  {:<44} paper={:>12.4e} measured={:>12.4e} ratio={:>7.3} {}",
        what,
        paper,
        measured,
        ratio,
        if ok { "OK" } else { "CHECK" }
    );
}
