//! The hot-path bench gate: measures the hot-path benches and compares
//! them against the committed `BENCH_net_hotpath.json` trajectory.
//!
//! ```text
//! bench_gate                      # gate mode: fail on >15% regression
//! bench_gate --record "<note>"    # append a new trajectory entry
//! QIC_BENCH_QUICK=1 bench_gate    # CI: shorter warm-ups, fewer samples
//! ```
//!
//! Gate mode prints a markdown before/after table (pipe it into
//! `$GITHUB_STEP_SUMMARY` in CI) and exits non-zero if any bench
//! regressed beyond the tolerance. Two defenses keep machine noise
//! from failing the build while real regressions still do: a fixed-work
//! calibration bench normalizes for uniform machine slowdown (CPU
//! throttling, busy shared runners), and apparent regressions are
//! re-measured up to six more times, 20 seconds apart so the retries
//! outlive a noise burst, keeping each bench's best median.

use std::hint::black_box;

use qic_bench::hotpath::{
    calibration_spin, gate, git_rev, measure, quick_mode, today_utc, workspace_root, BenchEntry,
    Measured, Trajectory, BASELINE_FILE, CALIBRATION_BENCH,
};
use qic_des::queue::EventQueue;
use qic_fault::FaultPlan;
use qic_modular::{ModularFabric, ModularSpec};
use qic_net::config::NetConfig;
use qic_net::routing::{DimensionOrder, MinimalAdaptive, Router};
use qic_net::sim::{NetworkSim, OneShotDriver};
use qic_net::topology::{Coord, Hypercube, Mesh, Topology, TopologyKind};
use qic_physics::time::Duration;

/// Runs every hot-path bench (same definitions as the `ops_micro` and
/// `fault_overhead` criterion targets) and returns the medians.
fn run_benches(quick: bool) -> Vec<Measured> {
    let mut out = Vec::new();
    let mut push = |name: &'static str, (median_ns, samples): (f64, u32)| {
        println!("{name:<36} median {median_ns:>10.1} ns  ({samples} samples)");
        out.push(Measured {
            name,
            median_ns,
            samples,
        });
    };

    // Machine-speed yardstick, measured first: `gate` uses its ratio
    // against the recorded baseline to factor uniform machine slowdown
    // out of every other comparison.
    push(
        CALIBRATION_BENCH,
        measure(quick, || calibration_spin(black_box(0x9e37_79b9_7f4a_7c15))),
    );

    // End-to-end simulator hot path: one corner-to-corner communication
    // on the 4x4 test fabrics.
    push(
        "net_sim_one_comm_4x4",
        measure(quick, || {
            let mut driver = OneShotDriver::new(Coord::new(0, 0), Coord::new(3, 3));
            NetworkSim::new(NetConfig::small_test()).run(&mut driver)
        }),
    );
    push(
        "net_sim_one_comm_4x4_torus",
        measure(quick, || {
            let mut driver = OneShotDriver::new(Coord::new(0, 0), Coord::new(3, 3));
            NetworkSim::new(NetConfig::small_test().with_topology(TopologyKind::Torus))
                .run(&mut driver)
        }),
    );

    // Fault-layer overhead: the same run through a zero-fault
    // DegradedFabric, and a genuinely detoured route.
    let cfg = NetConfig::small_test();
    let healthy = FaultPlan::healthy().compile(cfg.fabric());
    push(
        "fault_overhead_zero_fault_wrapper",
        measure(quick, || {
            let mut driver = OneShotDriver::new(Coord::new(0, 0), Coord::new(3, 3));
            NetworkSim::with_topology(cfg.clone(), healthy.clone()).run(&mut driver)
        }),
    );
    let fabric = cfg.fabric();
    let mid = fabric.link_index(
        fabric.node_index(Coord::new(1, 1)),
        qic_net::topology::Port(0),
    ) as u32;
    let detour = FaultPlan::healthy().with_dead_link(mid).compile(fabric);
    push(
        "fault_overhead_degraded_detour",
        measure(quick, || {
            let mut driver = OneShotDriver::new(Coord::new(0, 1), Coord::new(3, 1));
            NetworkSim::with_topology(cfg.clone(), detour.clone()).run(&mut driver)
        }),
    );

    // Routing micro-benches.
    let mesh = Mesh::new(16, 16);
    let cube = Hypercube::new(8);
    let no_load = |_: usize| 0u32;
    let load = |l: usize| (l % 5) as u32;
    let (src, dst) = (0usize, 255usize);
    push(
        "dor_route_mesh_16x16",
        measure(quick, || {
            DimensionOrder.route(&mesh, black_box(src), black_box(dst), &no_load)
        }),
    );
    push(
        "dor_route_hypercube_256",
        measure(quick, || {
            DimensionOrder.route(&cube, black_box(src), black_box(dst), &no_load)
        }),
    );
    push(
        "adaptive_route_mesh_16x16",
        measure(quick, || {
            MinimalAdaptive.route(&mesh, black_box(src), black_box(dst), &load)
        }),
    );
    // The modular route hot path: a cross-module route over four 4x4
    // meshes behind an optical switch (distance-table lookups + the
    // uplink port scan).
    let modular = ModularFabric::new(
        Mesh::new(4, 4),
        &ModularSpec::single().with_modules(4).with_latency_ns(500),
    );
    let (msrc, mdst) = (0usize, modular.nodes() - 1);
    push(
        "dor_route_modular_4x4x4",
        measure(quick, || {
            DimensionOrder.route(&modular, black_box(msrc), black_box(mdst), &no_load)
        }),
    );

    // Event-queue throughput.
    push(
        "event_queue_1k_schedule_pop",
        measure(quick, || {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule_after(Duration::from_nanos((i * 7919) % 10_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            acc
        }),
    );

    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let record_note = match args.first().map(String::as_str) {
        Some("--record") => Some(
            args.get(1)
                .cloned()
                .unwrap_or_else(|| "recorded".to_string()),
        ),
        Some(other) => {
            eprintln!("unknown argument {other:?}; usage: bench_gate [--record <note>]");
            std::process::exit(2);
        }
        None => None,
    };

    let quick = quick_mode();
    let path = workspace_root().join(BASELINE_FILE);
    println!(
        "hot-path benches ({} mode), baseline {}",
        if quick { "quick" } else { "full" },
        path.display()
    );
    let measured = run_benches(quick);

    if let Some(note) = record_note {
        let mut trajectory = match std::fs::read_to_string(&path) {
            Ok(text) => Trajectory::parse(&text).expect("baseline file parses"),
            Err(_) => Trajectory::default(),
        };
        let (date, rev) = (today_utc(), git_rev());
        for m in &measured {
            trajectory.record(
                m.name,
                BenchEntry {
                    median_ns: (m.median_ns * 10.0).round() / 10.0,
                    samples: m.samples,
                    date: date.clone(),
                    git_rev: rev.clone(),
                    note: note.clone(),
                },
            );
        }
        std::fs::write(&path, trajectory.to_json()).expect("baseline file writes");
        println!(
            "recorded {} benches into {} (note: {note})",
            measured.len(),
            path.display()
        );
        return;
    }

    let baseline = match std::fs::read_to_string(&path) {
        Ok(text) => Trajectory::parse(&text).expect("baseline file parses"),
        Err(e) => {
            eprintln!("no baseline at {}: {e}", path.display());
            eprintln!("record one with: cargo run --release -p qic-bench --bin bench_gate -- --record \"<note>\"");
            std::process::exit(2);
        }
    };
    let mut measured = measured;
    let (mut table, mut regressions) = gate(&measured, &baseline);
    // Shared-runner noise routinely exceeds the tolerance for
    // nanosecond-scale benches, and the noisy phases last tens of
    // seconds to minutes — far longer than a back-to-back re-run. A
    // genuine regression survives re-measurement; a noise burst does
    // not. Keep the per-bench best over up to seven passes, spaced
    // 20 s apart so the retries outlive a burst, before declaring
    // failure.
    for pass in 0..6 {
        if regressions.is_empty() {
            break;
        }
        eprintln!(
            "bench-gate: {} regression(s) on pass {}; re-measuring in 20 s",
            regressions.len(),
            pass + 1
        );
        std::thread::sleep(std::time::Duration::from_secs(20));
        for (slot, fresh) in measured.iter_mut().zip(run_benches(quick)) {
            assert_eq!(slot.name, fresh.name, "bench order is fixed");
            if fresh.median_ns < slot.median_ns {
                slot.median_ns = fresh.median_ns;
            }
        }
        (table, regressions) = gate(&measured, &baseline);
    }
    println!("\n{table}");
    if regressions.is_empty() {
        println!("bench-gate: OK (tolerance 15%)");
    } else {
        eprintln!("bench-gate: FAILED — {} regression(s):", regressions.len());
        for r in &regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }
}
