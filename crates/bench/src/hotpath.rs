//! Hot-path benchmark harness with a committed trajectory.
//!
//! The repository keeps a record of hot-path medians in
//! `BENCH_net_hotpath.json` at the workspace root. The schema is
//!
//! ```json
//! {
//!   "schema": "qic-hotpath-bench/v1",
//!   "tolerance_pct": 15,
//!   "benches": {
//!     "net_sim_one_comm_4x4": [
//!       { "median_ns": 2670.4, "samples": 15, "date": "2026-08-08",
//!         "git_rev": "9a5d8f3", "note": "pre-optimization" }
//!     ]
//!   }
//! }
//! ```
//!
//! Each bench name maps to a **history** (oldest first); the last entry
//! is the current baseline. `cargo run --release -p qic-bench --bin
//! bench_gate -- --record "<note>"` measures every hot-path bench and
//! appends a new entry; a plain `bench_gate` run (CI's `bench-gate`
//! step, usually with `QIC_BENCH_QUICK=1`) re-measures and fails if any
//! median regressed more than [`TOLERANCE_PCT`] percent against the
//! baseline.
//!
//! The measurement loop mirrors the vendored `criterion` stand-in
//! (warm-up pass sizes a batch, then a fixed number of timed batches;
//! the median batch is reported) so numbers recorded here and numbers
//! printed by `cargo bench` agree.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::{Duration as WallDuration, Instant};

/// Regression tolerance, in percent, applied by [`gate`].
pub const TOLERANCE_PCT: f64 = 15.0;

/// Name of the machine-speed yardstick bench: a fixed-work integer
/// loop with no dependence on simulator code. [`gate`] divides every
/// current median by `current_calibration / baseline_calibration`
/// (clamped to ≥ 1), so a uniformly slower machine — CPU throttling, a
/// busy shared runner — does not fail the gate, while a real per-bench
/// regression still does. On a *faster* machine the clamp keeps raw
/// numbers, which can only make the gate stricter.
pub const CALIBRATION_BENCH: &str = "calibration_spin";

/// The calibration workload: a serial chain of 256 multiply/xor-shift
/// steps. The seed must be [`black_box`](std::hint::black_box)ed by
/// the caller; the xor-shift makes each step non-affine, so the loop
/// cannot be folded into one composed transform (a plain LCG chain
/// can — LLVM composes affine steps), and the serial dependency chain
/// keeps the timing a pure function of core speed.
#[inline]
pub fn calibration_spin(seed: u64) -> u64 {
    let mut x = seed;
    for _ in 0..256 {
        x = x
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        x ^= x >> 29;
    }
    x
}

/// Schema identifier written to / expected in the baseline file.
pub const SCHEMA: &str = "qic-hotpath-bench/v1";

/// Baseline file name, resolved against the workspace root.
pub const BASELINE_FILE: &str = "BENCH_net_hotpath.json";

/// One recorded measurement of one bench.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Number of timed batches the median was taken over.
    pub samples: u32,
    /// ISO-8601 date (UTC) the entry was recorded.
    pub date: String,
    /// Short git revision the entry was recorded at.
    pub git_rev: String,
    /// Free-form annotation (e.g. `"pre-optimization"`).
    pub note: String,
}

/// The committed trajectory: bench name → history, oldest first.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trajectory {
    /// Per-bench histories, keyed by bench name (sorted for stable JSON).
    pub benches: BTreeMap<String, Vec<BenchEntry>>,
}

impl Trajectory {
    /// The current baseline for `name`: the last recorded entry.
    pub fn baseline(&self, name: &str) -> Option<&BenchEntry> {
        self.benches.get(name).and_then(|h| h.last())
    }

    /// Appends `entry` to the history of `name`.
    pub fn record(&mut self, name: &str, entry: BenchEntry) {
        self.benches
            .entry(name.to_string())
            .or_default()
            .push(entry);
    }

    /// Serializes to the committed JSON format (pretty, sorted keys,
    /// trailing newline) so diffs stay minimal.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
        let _ = writeln!(out, "  \"tolerance_pct\": {TOLERANCE_PCT},");
        out.push_str("  \"benches\": {\n");
        let n = self.benches.len();
        for (i, (name, history)) in self.benches.iter().enumerate() {
            let _ = writeln!(out, "    {}: [", json_string(name));
            for (j, e) in history.iter().enumerate() {
                let _ = write!(
                    out,
                    "      {{ \"median_ns\": {}, \"samples\": {}, \"date\": {}, \"git_rev\": {}, \"note\": {} }}",
                    fmt_f64(e.median_ns),
                    e.samples,
                    json_string(&e.date),
                    json_string(&e.git_rev),
                    json_string(&e.note),
                );
                out.push_str(if j + 1 < history.len() { ",\n" } else { "\n" });
            }
            out.push_str(if i + 1 < n { "    ],\n" } else { "    ]\n" });
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parses the committed JSON format.
    ///
    /// # Errors
    ///
    /// Returns a message if the text is not valid JSON or does not carry
    /// the expected [`SCHEMA`] marker and field types.
    pub fn parse(text: &str) -> Result<Trajectory, String> {
        let value = Json::parse(text)?;
        let top = value.as_object().ok_or("top level is not an object")?;
        match top.get("schema").and_then(Json::as_str) {
            Some(s) if s == SCHEMA => {}
            other => return Err(format!("unexpected schema marker {other:?}")),
        }
        let mut benches = BTreeMap::new();
        let raw = top
            .get("benches")
            .and_then(Json::as_object)
            .ok_or("missing \"benches\" object")?;
        for (name, history) in raw {
            let list = history
                .as_array()
                .ok_or_else(|| format!("bench {name:?}: history is not an array"))?;
            let mut entries = Vec::with_capacity(list.len());
            for item in list {
                let obj = item
                    .as_object()
                    .ok_or_else(|| format!("bench {name:?}: entry is not an object"))?;
                let num = |key: &str| -> Result<f64, String> {
                    obj.get(key)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("bench {name:?}: missing number {key:?}"))
                };
                let text = |key: &str| -> Result<String, String> {
                    obj.get(key)
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| format!("bench {name:?}: missing string {key:?}"))
                };
                entries.push(BenchEntry {
                    median_ns: num("median_ns")?,
                    samples: num("samples")? as u32,
                    date: text("date")?,
                    git_rev: text("git_rev")?,
                    note: text("note")?,
                });
            }
            benches.insert(name.clone(), entries);
        }
        Ok(Trajectory { benches })
    }
}

/// Formats an f64 so it round-trips (integral values keep a `.0`).
fn fmt_f64(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A minimal JSON value — just enough to read the baseline file (the
/// vendored `serde` stub has no wire format, so the harness carries its
/// own ~100-line reader).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = Json::parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => {
                *pos += 1;
                let mut map = BTreeMap::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Json::Obj(map));
                }
                loop {
                    skip_ws(b, pos);
                    let key = match Json::parse_value(b, pos)? {
                        Json::Str(s) => s,
                        _ => return Err(format!("object key at byte {pos} is not a string")),
                    };
                    skip_ws(b, pos);
                    if b.get(*pos) != Some(&b':') {
                        return Err(format!("expected ':' at byte {pos}"));
                    }
                    *pos += 1;
                    map.insert(key, Json::parse_value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Json::Obj(map));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut arr = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Json::Arr(arr));
                }
                loop {
                    arr.push(Json::parse_value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Json::Arr(arr));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                    }
                }
            }
            Some(b'"') => {
                *pos += 1;
                let mut s = String::new();
                loop {
                    match b.get(*pos) {
                        Some(b'"') => {
                            *pos += 1;
                            return Ok(Json::Str(s));
                        }
                        Some(b'\\') => {
                            *pos += 1;
                            match b.get(*pos) {
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                Some(b'/') => s.push('/'),
                                Some(b'n') => s.push('\n'),
                                Some(b't') => s.push('\t'),
                                Some(b'r') => s.push('\r'),
                                Some(b'u') => {
                                    let hex = b
                                        .get(*pos + 1..*pos + 5)
                                        .and_then(|h| std::str::from_utf8(h).ok())
                                        .and_then(|h| u32::from_str_radix(h, 16).ok())
                                        .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                                    s.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                                    *pos += 4;
                                }
                                other => return Err(format!("bad escape {other:?}")),
                            }
                            *pos += 1;
                        }
                        Some(&c) => {
                            // Copy the full UTF-8 sequence starting here.
                            let start = *pos;
                            let len = utf8_len(c);
                            let chunk = b
                                .get(start..start + len)
                                .and_then(|c| std::str::from_utf8(c).ok())
                                .ok_or_else(|| format!("bad UTF-8 at byte {start}"))?;
                            s.push_str(chunk);
                            *pos += len;
                        }
                        None => return Err("unterminated string".into()),
                    }
                }
            }
            Some(b't') if b[*pos..].starts_with(b"true") => {
                *pos += 4;
                Ok(Json::Bool(true))
            }
            Some(b'f') if b[*pos..].starts_with(b"false") => {
                *pos += 5;
                Ok(Json::Bool(false))
            }
            Some(b'n') if b[*pos..].starts_with(b"null") => {
                *pos += 4;
                Ok(Json::Null)
            }
            Some(_) => {
                let start = *pos;
                while b.get(*pos).is_some_and(|c| {
                    c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    *pos += 1;
                }
                std::str::from_utf8(&b[start..*pos])
                    .ok()
                    .and_then(|s| s.parse::<f64>().ok())
                    .map(Json::Num)
                    .ok_or_else(|| format!("bad number at byte {start}"))
            }
            None => Err("unexpected end of input".into()),
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while b
        .get(*pos)
        .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r'))
    {
        *pos += 1;
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Whether quick mode is requested (`QIC_BENCH_QUICK=1`): shorter
/// warm-ups and fewer samples, for the CI gate.
pub fn quick_mode() -> bool {
    std::env::var("QIC_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Times `inner` with the vendored-criterion methodology: a warm-up
/// pass sizes a batch (~2 ms of work), then `samples` timed batches;
/// returns `(median_ns, samples)`.
pub fn measure<O, F: FnMut() -> O>(quick: bool, mut inner: F) -> (f64, u32) {
    let (warm, batch_ns, samples) = if quick {
        (WallDuration::from_millis(5), 1_000_000.0, 9usize)
    } else {
        (WallDuration::from_millis(20), 2_000_000.0, 15usize)
    };
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < warm {
        std::hint::black_box(inner());
        warm_iters += 1;
        if warm_iters >= 1_000_000 {
            break;
        }
    }
    let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
    let batch = ((batch_ns / per_iter.max(1.0)) as u64).clamp(1, 1_000_000);

    let mut timings: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(inner());
            }
            t.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    timings.sort_by(f64::total_cmp);
    (timings[timings.len() / 2], samples as u32)
}

/// One measured hot-path bench: name and median.
#[derive(Debug, Clone, PartialEq)]
pub struct Measured {
    /// Bench name (matches the `ops_micro` / `fault_overhead` ids).
    pub name: &'static str,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Timed batches behind the median.
    pub samples: u32,
}

/// Compares measurements against the committed baseline with the
/// [`TOLERANCE_PCT`] tolerance; returns `(markdown_table, regressions)`.
///
/// If both sides carry the [`CALIBRATION_BENCH`] yardstick, every
/// current median is first divided by the machine-speed scale
/// `max(1, current_calibration / baseline_calibration)`, so uniform
/// machine slowdown is factored out of the comparison. The ratio
/// column shows the scaled ratio; the raw current medians are printed
/// unscaled. Benches without a baseline entry are listed as `new` and
/// do not fail the gate; recorded benches that regress more than the
/// tolerance are returned in `regressions`.
pub fn gate(current: &[Measured], baseline: &Trajectory) -> (String, Vec<String>) {
    let scale = match (
        current.iter().find(|m| m.name == CALIBRATION_BENCH),
        baseline.baseline(CALIBRATION_BENCH),
    ) {
        (Some(cur), Some(base)) if base.median_ns > 0.0 => {
            (cur.median_ns / base.median_ns).max(1.0)
        }
        _ => 1.0,
    };
    let mut table = String::from(
        "| bench | baseline (ns) | current (ns) | ratio | status |\n|---|---:|---:|---:|---|\n",
    );
    let mut regressions = Vec::new();
    let limit = 1.0 + TOLERANCE_PCT / 100.0;
    for m in current {
        if m.name == CALIBRATION_BENCH {
            let base = baseline.baseline(m.name).map_or(f64::NAN, |b| b.median_ns);
            let _ = writeln!(
                table,
                "| {} | {:.1} | {:.1} | — | yardstick (scale {:.2}x) |",
                m.name, base, m.median_ns, scale
            );
            continue;
        }
        match baseline.baseline(m.name) {
            Some(base) => {
                let ratio = m.median_ns / scale / base.median_ns;
                let status = if ratio > limit {
                    regressions.push(format!(
                        "{}: {:.1} ns vs baseline {:.1} ns ({:+.1}% at scale {:.2}x)",
                        m.name,
                        m.median_ns,
                        base.median_ns,
                        (ratio - 1.0) * 100.0,
                        scale
                    ));
                    "REGRESSED"
                } else if ratio < 1.0 / limit {
                    "improved"
                } else {
                    "ok"
                };
                let _ = writeln!(
                    table,
                    "| {} | {:.1} | {:.1} | {:.2}x | {} |",
                    m.name, base.median_ns, m.median_ns, ratio, status
                );
            }
            None => {
                let _ = writeln!(table, "| {} | — | {:.1} | — | new |", m.name, m.median_ns);
            }
        }
    }
    (table, regressions)
}

/// Today's UTC date as `YYYY-MM-DD` (civil-from-days, no chrono).
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    // Howard Hinnant's civil_from_days.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// The short git revision of the working tree, or `"unknown"`.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(workspace_root())
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The workspace root (two levels above this crate's manifest).
pub fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| std::path::PathBuf::from("."))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(median: f64, note: &str) -> BenchEntry {
        BenchEntry {
            median_ns: median,
            samples: 15,
            date: "2026-08-08".into(),
            git_rev: "abc1234".into(),
            note: note.into(),
        }
    }

    #[test]
    fn trajectory_round_trips_through_json() {
        let mut t = Trajectory::default();
        t.record("net_sim_one_comm_4x4", entry(2670.4, "pre-optimization"));
        t.record("net_sim_one_comm_4x4", entry(850.0, "post-optimization"));
        t.record("dor_route_mesh_16x16", entry(30.0, "pre-optimization"));
        let text = t.to_json();
        let back = Trajectory::parse(&text).expect("parses");
        assert_eq!(back, t);
        assert_eq!(
            back.baseline("net_sim_one_comm_4x4").unwrap().median_ns,
            850.0
        );
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        let err = Trajectory::parse("{\"schema\": \"other\", \"benches\": {}}").unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn parse_handles_escapes_and_nesting() {
        let v = Json::parse(r#"{"a": [1, 2.5, "x\n\"y\""], "b": {"c": true, "d": null}}"#).unwrap();
        let o = v.as_object().unwrap();
        let arr = o.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("x\n\"y\""));
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
    }

    #[test]
    fn gate_flags_regressions_and_tolerates_noise() {
        let mut base = Trajectory::default();
        base.record("a", entry(100.0, ""));
        base.record("b", entry(100.0, ""));
        let current = [
            Measured {
                name: "a",
                median_ns: 110.0,
                samples: 9,
            }, // within 15%
            Measured {
                name: "b",
                median_ns: 130.0,
                samples: 9,
            }, // regressed
            Measured {
                name: "c",
                median_ns: 50.0,
                samples: 9,
            }, // no baseline
        ];
        let (table, regressions) = gate(&current, &base);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].starts_with("b:"), "{regressions:?}");
        assert!(
            table.contains("| a | 100.0 | 110.0 | 1.10x | ok |"),
            "{table}"
        );
        assert!(table.contains("REGRESSED"), "{table}");
        assert!(table.contains("| c | — | 50.0 | — | new |"), "{table}");
    }

    #[test]
    fn gate_normalizes_by_calibration_scale() {
        let mut base = Trajectory::default();
        base.record(CALIBRATION_BENCH, entry(100.0, ""));
        base.record("a", entry(100.0, ""));
        base.record("b", entry(100.0, ""));
        // Machine 1.5x slower: `a` moved with the machine (ok after
        // scaling), `b` regressed 2x on top of it (still flagged).
        let current = [
            Measured {
                name: CALIBRATION_BENCH,
                median_ns: 150.0,
                samples: 9,
            },
            Measured {
                name: "a",
                median_ns: 150.0,
                samples: 9,
            },
            Measured {
                name: "b",
                median_ns: 300.0,
                samples: 9,
            },
        ];
        let (table, regressions) = gate(&current, &base);
        assert_eq!(regressions.len(), 1, "{table}");
        assert!(regressions[0].starts_with("b:"), "{regressions:?}");
        assert!(table.contains("yardstick (scale 1.50x)"), "{table}");
        assert!(
            table.contains("| a | 100.0 | 150.0 | 1.00x | ok |"),
            "{table}"
        );

        // A faster machine clamps to scale 1: raw ratios apply, so a
        // genuine regression cannot hide behind the speed-up.
        let faster = [
            Measured {
                name: CALIBRATION_BENCH,
                median_ns: 50.0,
                samples: 9,
            },
            Measured {
                name: "a",
                median_ns: 120.0,
                samples: 9,
            },
        ];
        let (table, regressions) = gate(&faster, &base);
        assert_eq!(regressions.len(), 1, "{table}");
        assert!(table.contains("scale 1.00x"), "{table}");
    }

    #[test]
    fn calibration_spin_is_deterministic() {
        assert_eq!(calibration_spin(7), calibration_spin(7));
        assert_ne!(calibration_spin(7), calibration_spin(8));
    }

    #[test]
    fn today_is_plausible_iso_date() {
        let d = today_utc();
        assert_eq!(d.len(), 10, "{d}");
        assert_eq!(&d[4..5], "-");
        let year: i32 = d[..4].parse().unwrap();
        assert!(year >= 2024, "{d}");
    }
}
