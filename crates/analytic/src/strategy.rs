//! Purification placement strategies — **Section 4.7**.
//!
//! The paper evaluates three places to spend purification effort:
//!
//! * **Endpoints only** — purify just before the pairs are used to
//!   teleport data. Fewest *total* pairs (Figure 10).
//! * **Virtual wire** ("before teleport") — purify the link pairs feeding
//!   each teleporter. Fewest *teleported* pairs (Figure 11), at the cost
//!   of local pair consumption at every G node.
//! * **Between teleports** ("after each teleport") — purify the traveling
//!   pair after every hop. Exponentially wasteful (both figures), because
//!   the sacrificial partners must themselves be distributed to the same
//!   span.
//!
//! Endpoint purification to threshold is always applied on top; the
//! variants only choose where *additional* rounds happen.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Where purification happens along a channel, beyond the always-present
/// endpoint purification.
///
/// (Formerly `Placement`; renamed so it no longer collides with the
/// qubit-to-site `qic_core::layout::Placement`.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PurifyPlacement {
    /// Purify only at the endpoints ("DEJMPS protocol only at end").
    EndpointsOnly,
    /// Purify the virtual-wire link pairs `rounds` times before they are
    /// used for chained teleportation ("before teleport").
    VirtualWire {
        /// Purification rounds applied to every link pair.
        rounds: u32,
    },
    /// Purify the traveling pair `rounds` times after every teleport hop
    /// ("after each teleport" — the nested scheme of footnote 4).
    BetweenTeleports {
        /// Purification rounds applied after each hop.
        rounds: u32,
    },
}

impl PurifyPlacement {
    /// The five configurations plotted by Figures 10–12, in the legends'
    /// order.
    pub const FIGURE_SET: [PurifyPlacement; 5] = [
        PurifyPlacement::BetweenTeleports { rounds: 2 },
        PurifyPlacement::BetweenTeleports { rounds: 1 },
        PurifyPlacement::VirtualWire { rounds: 2 },
        PurifyPlacement::VirtualWire { rounds: 1 },
        PurifyPlacement::EndpointsOnly,
    ];

    /// Virtual-wire rounds implied by this placement.
    pub fn virtual_wire_rounds(&self) -> u32 {
        match self {
            PurifyPlacement::VirtualWire { rounds } => *rounds,
            _ => 0,
        }
    }

    /// Per-hop rounds applied to the traveling pair.
    pub fn between_rounds(&self) -> u32 {
        match self {
            PurifyPlacement::BetweenTeleports { rounds } => *rounds,
            _ => 0,
        }
    }

    /// A compact machine-readable label (`"endpoints"`,
    /// `"virtual_wire:2"`, `"between:1"`) that [`PurifyPlacement::parse`]
    /// round-trips; scenario specs serialize placements with it.
    pub fn label(&self) -> String {
        match self {
            PurifyPlacement::EndpointsOnly => "endpoints".to_string(),
            PurifyPlacement::VirtualWire { rounds } => format!("virtual_wire:{rounds}"),
            PurifyPlacement::BetweenTeleports { rounds } => format!("between:{rounds}"),
        }
    }

    /// Parses a compact [`PurifyPlacement::label`] back into a placement.
    pub fn parse(label: &str) -> Option<PurifyPlacement> {
        if label == "endpoints" {
            return Some(PurifyPlacement::EndpointsOnly);
        }
        let (kind, rounds) = label.split_once(':')?;
        let rounds: u32 = rounds.parse().ok()?;
        match kind {
            "virtual_wire" => Some(PurifyPlacement::VirtualWire { rounds }),
            "between" => Some(PurifyPlacement::BetweenTeleports { rounds }),
            _ => None,
        }
    }

    /// The label used in the paper's figure legends.
    pub fn legend(&self) -> String {
        match self {
            PurifyPlacement::EndpointsOnly => "DEJMPS protocol only at end".to_string(),
            PurifyPlacement::VirtualWire { rounds: 1 } => {
                "DEJMPS protocol once before teleport".to_string()
            }
            PurifyPlacement::VirtualWire { rounds } => {
                format!("DEJMPS protocol {}x before teleport", rounds)
            }
            PurifyPlacement::BetweenTeleports { rounds: 1 } => {
                "DEJMPS protocol once after each teleport".to_string()
            }
            PurifyPlacement::BetweenTeleports { rounds } => {
                format!("DEJMPS protocol {}x after each teleport", rounds)
            }
        }
    }
}

impl Default for PurifyPlacement {
    /// The paper's recommendation is virtual-wire + endpoint purification;
    /// one virtual-wire round is the default channel configuration.
    fn default() -> Self {
        PurifyPlacement::VirtualWire { rounds: 1 }
    }
}

impl fmt::Display for PurifyPlacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.legend())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for p in PurifyPlacement::FIGURE_SET {
            assert_eq!(PurifyPlacement::parse(&p.label()), Some(p), "{p}");
        }
        assert_eq!(PurifyPlacement::parse("endpoints:2"), None);
        assert_eq!(PurifyPlacement::parse("virtual_wire"), None);
        assert_eq!(PurifyPlacement::parse("between:x"), None);
        assert_eq!(PurifyPlacement::parse("nested:1"), None);
    }

    #[test]
    fn figure_set_has_five_unique_entries() {
        let set = PurifyPlacement::FIGURE_SET;
        assert_eq!(set.len(), 5);
        for (i, a) in set.iter().enumerate() {
            for b in &set[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn accessors() {
        assert_eq!(PurifyPlacement::EndpointsOnly.virtual_wire_rounds(), 0);
        assert_eq!(
            PurifyPlacement::VirtualWire { rounds: 2 }.virtual_wire_rounds(),
            2
        );
        assert_eq!(
            PurifyPlacement::VirtualWire { rounds: 2 }.between_rounds(),
            0
        );
        assert_eq!(
            PurifyPlacement::BetweenTeleports { rounds: 1 }.between_rounds(),
            1
        );
    }

    #[test]
    fn legends_match_paper() {
        assert_eq!(
            PurifyPlacement::EndpointsOnly.legend(),
            "DEJMPS protocol only at end"
        );
        assert_eq!(
            PurifyPlacement::VirtualWire { rounds: 1 }.legend(),
            "DEJMPS protocol once before teleport"
        );
        assert_eq!(
            PurifyPlacement::BetweenTeleports { rounds: 2 }.legend(),
            "DEJMPS protocol 2x after each teleport"
        );
        assert_eq!(
            PurifyPlacement::default(),
            PurifyPlacement::VirtualWire { rounds: 1 }
        );
    }
}
