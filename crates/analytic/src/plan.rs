//! End-to-end channel planning — the resource model behind **Figures
//! 10–12** and the "392 pairs per logical communication" estimate of
//! Section 5.3.
//!
//! A [`ChannelModel`] fixes device parameters and a purification placement;
//! [`ChannelModel::plan`] then computes, for a given hop count, the
//! delivered pair state and the expected EPR-pair budget:
//!
//! * `endpoint_pairs` — pairs arriving at the endpoints per delivered
//!   threshold-quality pair (`∏ 2/pᵢ` over the endpoint rounds),
//! * `teleported_pairs` — teleport operations (pair-hops) through the
//!   channel per delivered pair (the Figure 11 quantity),
//! * `total_pairs` — raw generated pairs consumed anywhere, including
//!   virtual-wire purification losses (the Figure 10 quantity).
//!
//! Endpoint purification always runs at least one round — the paper's
//! standing design decision ("purification before teleport **and at
//! endpoints**", Section 4.7) — and additional rounds are added until the
//! fault-tolerance threshold is met.

use std::fmt;

use serde::{Deserialize, Serialize};

use qic_physics::bell::BellDiagonal;
use qic_physics::constants::THRESHOLD_ERROR;
use qic_physics::error::ErrorRates;
use qic_physics::optime::OpTimes;
use qic_physics::teleport;
use qic_physics::time::Duration;

use qic_purify::analysis;
use qic_purify::protocol::{Protocol, RoundNoise};

use crate::link::{self, LinkSpec};
use crate::strategy::PurifyPlacement;

/// Errors from channel planning.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelError {
    /// No number of endpoint purification rounds reaches the target error:
    /// the channel is infeasible at these device parameters (the Figure 12
    /// "abrupt ends").
    Unreachable {
        /// Best error achievable at the endpoints.
        best_error: f64,
        /// The target that could not be met.
        target_error: f64,
    },
    /// A zero-hop channel was requested.
    ZeroHops,
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::Unreachable { best_error, target_error } => write!(
                f,
                "purification cannot reach target error {target_error:.2e} (best achievable {best_error:.2e})"
            ),
            ChannelError::ZeroHops => f.write_str("channel must span at least one hop"),
        }
    }
}

impl std::error::Error for ChannelError {}

/// A fully resolved channel budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelPlan {
    /// Hops planned for.
    pub hops: u32,
    /// State of the link pairs feeding each teleporter.
    pub link_state: BellDiagonal,
    /// Raw pairs consumed per link pair (1 unless the virtual wire
    /// purifies).
    pub link_cost: f64,
    /// State of a chained pair on arrival at the endpoints, before
    /// endpoint purification.
    pub arriving_state: BellDiagonal,
    /// Endpoint purification rounds performed (≥ 1).
    pub endpoint_rounds: u32,
    /// State of a delivered pair after endpoint purification.
    pub final_state: BellDiagonal,
    /// Chained pairs arriving at the endpoints per delivered pair.
    pub endpoint_pairs: f64,
    /// Teleport operations through the channel per delivered pair
    /// (Figure 11's "EPR pairs teleported").
    pub teleported_pairs: f64,
    /// Raw generated pairs consumed anywhere per delivered pair
    /// (Figure 10's "EPR pairs total used").
    pub total_pairs: f64,
    /// Estimated channel setup latency for the first delivered pair:
    /// sequential hop teleports plus serialised endpoint purification.
    pub setup_latency: Duration,
}

impl ChannelPlan {
    /// EPR pairs that must arrive at the endpoints to teleport one logical
    /// qubit encoded in `qubits_per_logical` physical qubits — the paper's
    /// `2³ × 49 = 392` estimate (Section 5.3).
    pub fn pairs_per_logical_comm(&self, qubits_per_logical: u32) -> f64 {
        self.endpoint_pairs * f64::from(qubits_per_logical)
    }
}

/// Device parameters plus a placement strategy; the entry point for all
/// analytical channel questions.
///
/// # Example
///
/// ```
/// use qic_analytic::plan::ChannelModel;
/// use qic_analytic::strategy::PurifyPlacement;
///
/// let endpoints_only = ChannelModel::ion_trap();
/// let virtual_wire = endpoints_only.clone().with_placement(PurifyPlacement::VirtualWire { rounds: 1 });
/// let a = endpoints_only.plan(40)?;
/// let b = virtual_wire.plan(40)?;
/// // Virtual-wire purification reduces strain on the teleporters…
/// assert!(b.teleported_pairs < a.teleported_pairs);
/// // …but costs more raw pairs in total (Figures 10 vs 11).
/// assert!(b.total_pairs > a.total_pairs);
/// # Ok::<(), qic_analytic::plan::ChannelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelModel {
    rates: ErrorRates,
    times: OpTimes,
    protocol: Protocol,
    placement: PurifyPlacement,
    hop_cells: u64,
    target_error: f64,
    max_endpoint_rounds: u32,
}

impl ChannelModel {
    /// The paper's configuration: Table 1–2 parameters, DEJMPS protocol,
    /// endpoints-only placement, 600-cell hops, `7.5e-5` target error.
    pub fn ion_trap() -> Self {
        ChannelModel {
            rates: ErrorRates::ion_trap(),
            times: OpTimes::ion_trap(),
            protocol: Protocol::Dejmps,
            placement: PurifyPlacement::EndpointsOnly,
            hop_cells: qic_physics::constants::DEFAULT_HOP_CELLS,
            target_error: THRESHOLD_ERROR,
            max_endpoint_rounds: 25,
        }
    }

    /// Replaces the error rates.
    pub fn with_rates(mut self, rates: ErrorRates) -> Self {
        self.rates = rates;
        self
    }

    /// Replaces the time constants.
    pub fn with_times(mut self, times: OpTimes) -> Self {
        self.times = times;
        self
    }

    /// Replaces the purification protocol.
    pub fn with_protocol(mut self, protocol: Protocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Replaces the purification placement.
    pub fn with_placement(mut self, placement: PurifyPlacement) -> Self {
        self.placement = placement;
        self
    }

    /// Replaces the hop length in ballistic cells.
    pub fn with_hop_cells(mut self, cells: u64) -> Self {
        self.hop_cells = cells;
        self
    }

    /// Replaces the target error (default: the fault-tolerance threshold).
    pub fn with_target_error(mut self, e: f64) -> Self {
        self.target_error = e;
        self
    }

    /// The configured error rates.
    pub fn rates(&self) -> &ErrorRates {
        &self.rates
    }

    /// The configured time constants.
    pub fn times(&self) -> &OpTimes {
        &self.times
    }

    /// The configured placement.
    pub fn placement(&self) -> PurifyPlacement {
        self.placement
    }

    /// The configured protocol.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// The configured target error.
    pub fn target_error(&self) -> f64 {
        self.target_error
    }

    /// Round-noise model derived from the configured rates.
    pub fn round_noise(&self) -> RoundNoise {
        RoundNoise::from_rates(&self.rates)
    }

    /// Plans a channel of `hops` teleport hops.
    ///
    /// # Errors
    ///
    /// [`ChannelError::ZeroHops`] if `hops == 0`;
    /// [`ChannelError::Unreachable`] if no amount of endpoint purification
    /// reaches the target error (the regime beyond Figure 12's breakdown
    /// point).
    pub fn plan(&self, hops: u32) -> Result<ChannelPlan, ChannelError> {
        if hops == 0 {
            return Err(ChannelError::ZeroHops);
        }
        let noise = self.round_noise();
        let link_spec = LinkSpec {
            hop_cells: self.hop_cells,
            purify_rounds: self.placement.virtual_wire_rounds(),
            protocol: self.protocol,
        };
        let link_state = link::link_state(&link_spec, &self.rates, &noise);
        let link_cost = link::link_cost(&link_spec, &self.rates, &noise);

        // Walk the chain, tracking per-delivered-pair expectations:
        //   generated — chained pairs generated,
        //   ops       — teleport operations performed.
        let between_rounds = self.placement.between_rounds();
        let mut state = link::raw_link_state(self.hop_cells, &self.rates);
        if self.placement.virtual_wire_rounds() > 0 {
            // The pair that will travel starts life as a link pair too.
            state = link_state;
        }
        let mut generated = 1.0f64;
        let mut ops = 0.0f64;
        for _ in 0..hops {
            state = teleport::teleport_pair(&state, &link_state, &self.rates);
            ops += 1.0;
            for _ in 0..between_rounds {
                let step = self.protocol.noisy_step(&state, &noise);
                let mult = 2.0 / step.success_prob.max(f64::EPSILON);
                state = step.state;
                generated *= mult;
                ops *= mult;
            }
        }
        let arriving_state = state;

        // Endpoint purification: always at least one round, then as many
        // as the threshold demands.
        let needed = analysis::rounds_to_reach(
            self.protocol,
            arriving_state,
            self.target_error,
            &noise,
            self.max_endpoint_rounds,
        );
        let endpoint_rounds = match needed {
            Some(r) => r.max(1),
            None => {
                let best = analysis::max_achievable(self.protocol, arriving_state, &noise);
                return Err(ChannelError::Unreachable {
                    best_error: best.error(),
                    target_error: self.target_error,
                });
            }
        };
        let traj = analysis::trajectory(self.protocol, arriving_state, endpoint_rounds, &noise);
        let last = traj.last().expect("non-empty trajectory");
        let endpoint_pairs = last.expected_pairs;
        let final_state = last.state;

        let teleported_pairs = endpoint_pairs * ops;
        // Virtual-wire purification keeps a queue of in-flight pairs per
        // wire; filling it before the first purified link pair emerges is a
        // real one-time cost of 2^k − 1 pairs per wire (cf. footnote 4 of
        // the paper on spatial vs. total resources).
        let vw_rounds = self.placement.virtual_wire_rounds().min(62);
        let wire_priming = f64::from(hops) * ((1u64 << vw_rounds) - 1) as f64;
        let total_pairs = endpoint_pairs * generated + teleported_pairs * link_cost + wire_priming;

        // Latency: hops are store-and-forward teleports; endpoint
        // purification is serialised on a queue purifier.
        let span_cells = self.hop_cells * u64::from(hops);
        let per_hop = self.times.teleport(self.hop_cells);
        let purify_ops = (1u64 << endpoint_rounds.min(62)) - 1;
        let setup_latency =
            per_hop * u64::from(hops) + self.times.purify_round(span_cells) * purify_ops;

        Ok(ChannelPlan {
            hops,
            link_state,
            link_cost,
            arriving_state,
            endpoint_rounds,
            final_state,
            endpoint_pairs,
            teleported_pairs,
            total_pairs,
            setup_latency,
        })
    }
}

impl Default for ChannelModel {
    fn default() -> Self {
        ChannelModel::ion_trap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qic_physics::constants::LEVEL2_STEANE_QUBITS;

    #[test]
    fn endpoints_only_matches_392_estimate() {
        // §5.3: longest path (≈30 hops on the 16×16 grid) needs
        // 2³ × 49 = 392 endpoint pairs per logical communication.
        let model = ChannelModel::ion_trap();
        let plan = model.plan(30).unwrap();
        assert_eq!(plan.endpoint_rounds, 3, "depth-3 purification (§5.3)");
        let pairs = plan.pairs_per_logical_comm(LEVEL2_STEANE_QUBITS);
        assert!(
            (pairs - 392.0).abs() / 392.0 < 0.2,
            "≈392 pairs per logical comm, got {pairs}"
        );
    }

    #[test]
    fn final_state_meets_threshold() {
        let model = ChannelModel::ion_trap();
        for hops in [1, 5, 10, 30, 60] {
            let plan = model.plan(hops).unwrap();
            assert!(
                plan.final_state.error() <= THRESHOLD_ERROR,
                "hops={hops}: {}",
                plan.final_state.error()
            );
            assert!(plan.arriving_state.error() > plan.final_state.error());
        }
    }

    #[test]
    fn figure10_ordering_total_pairs() {
        // Endpoints-only uses the fewest TOTAL pairs; virtual-wire once is
        // next; twice costs most (of the non-exponential schemes).
        let base = ChannelModel::ion_trap();
        for hops in [20u32, 40, 60] {
            let only = base.clone().plan(hops).unwrap().total_pairs;
            let once = base
                .clone()
                .with_placement(PurifyPlacement::VirtualWire { rounds: 1 })
                .plan(hops)
                .unwrap()
                .total_pairs;
            let twice = base
                .clone()
                .with_placement(PurifyPlacement::VirtualWire { rounds: 2 })
                .plan(hops)
                .unwrap()
                .total_pairs;
            assert!(only < once, "hops={hops}: endpoints {only} < once {once}");
            assert!(once < twice, "hops={hops}: once {once} < twice {twice}");
        }
    }

    #[test]
    fn figure11_ordering_teleported_pairs() {
        // For TELEPORTED pairs, the order flips: virtual-wire purification
        // reduces strain on the teleporters.
        let base = ChannelModel::ion_trap();
        for hops in [20u32, 40, 60] {
            let only = base.clone().plan(hops).unwrap().teleported_pairs;
            let once = base
                .clone()
                .with_placement(PurifyPlacement::VirtualWire { rounds: 1 })
                .plan(hops)
                .unwrap()
                .teleported_pairs;
            let twice = base
                .clone()
                .with_placement(PurifyPlacement::VirtualWire { rounds: 2 })
                .plan(hops)
                .unwrap()
                .teleported_pairs;
            assert!(once < only, "hops={hops}");
            assert!(twice < once, "hops={hops}");
        }
    }

    #[test]
    fn between_teleports_is_exponential() {
        let base = ChannelModel::ion_trap();
        let nested = base
            .clone()
            .with_placement(PurifyPlacement::BetweenTeleports { rounds: 1 });
        let p20 = nested.plan(20).unwrap();
        let p30 = nested.plan(30).unwrap();
        // Each extra hop multiplies cost by ≥ 2.
        assert!(p30.total_pairs / p20.total_pairs > 2f64.powi(9));
        // And it dwarfs endpoints-only at the same distance.
        let flat = base.plan(30).unwrap();
        assert!(p30.total_pairs > 1e3 * flat.total_pairs);
        assert!(p30.teleported_pairs > 1e3 * flat.teleported_pairs);
    }

    #[test]
    fn endpoints_only_total_asymptotics() {
        // total ≈ endpoint_pairs × (hops + 1): the chained pairs plus one
        // raw link pair per hop each.
        let plan = ChannelModel::ion_trap().plan(60).unwrap();
        let expect = plan.endpoint_pairs * 61.0;
        assert!((plan.total_pairs - expect).abs() / expect < 1e-9);
        assert!(plan.total_pairs > 100.0 && plan.total_pairs < 2000.0);
    }

    #[test]
    fn unreachable_at_high_error_rates() {
        // Figure 12 breakdown: uniform 3e-5 error rates sink every scheme.
        let rates = ErrorRates::uniform(3e-5).unwrap();
        let model = ChannelModel::ion_trap().with_rates(rates);
        let err = model.plan(30).unwrap_err();
        match err {
            ChannelError::Unreachable {
                best_error,
                target_error,
            } => {
                assert!(best_error > target_error);
            }
            other => panic!("expected Unreachable, got {other}"),
        }
    }

    #[test]
    fn zero_hops_rejected() {
        assert_eq!(
            ChannelModel::ion_trap().plan(0),
            Err(ChannelError::ZeroHops)
        );
        assert!(ChannelError::ZeroHops
            .to_string()
            .contains("at least one hop"));
    }

    #[test]
    fn setup_latency_grows_with_distance_and_rounds() {
        let model = ChannelModel::ion_trap();
        let near = model.plan(5).unwrap();
        let far = model.plan(40).unwrap();
        assert!(far.setup_latency > near.setup_latency);
        // Order of magnitude: 40 hops × ~122µs ≈ 5 ms plus purification.
        assert!(far.setup_latency > Duration::from_millis(4));
        assert!(far.setup_latency < Duration::from_millis(20));
    }

    #[test]
    fn builders_cover_all_fields() {
        let m = ChannelModel::ion_trap()
            .with_protocol(Protocol::Bbpssw)
            .with_hop_cells(100)
            .with_target_error(1e-4)
            .with_times(OpTimes::ion_trap())
            .with_rates(ErrorRates::ion_trap());
        assert_eq!(m.protocol(), Protocol::Bbpssw);
        assert_eq!(m.target_error(), 1e-4);
        assert_eq!(m.placement(), PurifyPlacement::EndpointsOnly);
        let plan = m.plan(10).unwrap();
        assert!(plan.final_state.error() <= 1e-4);
    }
}
