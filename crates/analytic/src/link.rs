//! Virtual-wire link pairs.
//!
//! Between each pair of adjacent teleporter (T') nodes sits a generator
//! (G) node "continually generating EPR pairs and sending one qubit of
//! each pair to each adjacent T' node" (Section 3.1). The two halves each
//! travel half the hop ballistically, so a raw link pair arrives degraded
//! by the full hop distance. Optionally the link is *pre-purified* at its
//! T' endpoints ("virtual wire" purification, Section 4.7), trading local
//! pair consumption for higher channel fidelity.

use serde::{Deserialize, Serialize};

use qic_physics::bell::BellDiagonal;
use qic_physics::error::ErrorRates;
use qic_physics::fidelity::Fidelity;
use qic_physics::teleport;
use qic_physics::transport;

use qic_purify::protocol::{Protocol, RoundNoise};

/// Geometry and purification policy for one virtual-wire link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Distance between the two T' nodes, in ballistic cells. The
    /// generator sits at the midpoint, so each half travels `hop_cells/2`.
    pub hop_cells: u64,
    /// Virtual-wire purification rounds applied at the link endpoints
    /// before the pair is used for chained teleportation (0 = raw links).
    pub purify_rounds: u32,
    /// Protocol used for virtual-wire purification.
    pub protocol: Protocol,
}

impl LinkSpec {
    /// A raw (unpurified) link of the paper's default 600-cell hop.
    pub fn raw_default() -> Self {
        LinkSpec {
            hop_cells: qic_physics::constants::DEFAULT_HOP_CELLS,
            purify_rounds: 0,
            protocol: Protocol::Dejmps,
        }
    }

    /// Same geometry, with `rounds` of virtual-wire purification.
    pub fn with_rounds(mut self, rounds: u32) -> Self {
        self.purify_rounds = rounds;
        self
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec::raw_default()
    }
}

/// The state of a link pair as delivered for use by the teleporters:
/// generated (Equation 4), ballistically distributed from the midpoint,
/// then purified for `spec.purify_rounds` rounds.
pub fn link_state(spec: &LinkSpec, rates: &ErrorRates, noise: &RoundNoise) -> BellDiagonal {
    let mut state = raw_link_state(spec.hop_cells, rates);
    for _ in 0..spec.purify_rounds {
        state = spec.protocol.noisy_step(&state, noise).state;
    }
    state
}

/// The state of a *raw* link pair (no purification).
pub fn raw_link_state(hop_cells: u64, rates: &ErrorRates) -> BellDiagonal {
    let generated = teleport::generated_pair(rates, Fidelity::ONE);
    transport::distribute_from_midpoint(&generated, hop_cells / 2, rates)
}

/// Expected **raw generated pairs** consumed per delivered link pair:
/// 1 for raw links, `∏ᵢ 2/pᵢ` when the virtual wire purifies.
pub fn link_cost(spec: &LinkSpec, rates: &ErrorRates, noise: &RoundNoise) -> f64 {
    if spec.purify_rounds == 0 {
        return 1.0;
    }
    let raw = raw_link_state(spec.hop_cells, rates);
    qic_purify::analysis::trajectory(spec.protocol, raw, spec.purify_rounds, noise)
        .last()
        .map(|p| p.expected_pairs)
        .unwrap_or(f64::INFINITY)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn defaults() -> (ErrorRates, RoundNoise) {
        let rates = ErrorRates::ion_trap();
        (rates, RoundNoise::from_rates(&rates))
    }

    #[test]
    fn raw_link_error_is_movement_dominated() {
        // 600 cells at pmv = 1e-6: error ≈ 6e-4 ≫ the ~1e-7 generation
        // gate error.
        let (rates, _) = defaults();
        let s = raw_link_state(600, &rates);
        assert!(s.error() > 4e-4, "got {}", s.error());
        assert!(s.error() < 8e-4, "got {}", s.error());
    }

    #[test]
    fn hundred_cell_example_from_section_4_6() {
        // "for two teleporters spaced 100 cells apart, ballistic movement
        // error equals ≈ 1e-4".
        let (rates, _) = defaults();
        let s = raw_link_state(100, &rates);
        assert!(
            s.error() > 0.7e-4 && s.error() < 1.5e-4,
            "got {}",
            s.error()
        );
    }

    #[test]
    fn purified_links_are_cleaner_and_cost_more() {
        let (rates, noise) = defaults();
        let raw = LinkSpec::raw_default();
        let once = raw.with_rounds(1);
        let twice = raw.with_rounds(2);
        let e0 = link_state(&raw, &rates, &noise).error();
        let e1 = link_state(&once, &rates, &noise).error();
        let e2 = link_state(&twice, &rates, &noise).error();
        // One DEJMPS round on a Werner-like link trades X/Y weight for
        // concentrated phase error: a modest ~1.5x total-error gain...
        assert!(e1 < e0 / 1.3 && e1 > e0 / 3.0, "e0={e0:.2e} e1={e1:.2e}");
        // ...which the second round then crushes quadratically.
        assert!(e2 < e1 / 100.0, "e1={e1:.2e} e2={e2:.2e}");
        use qic_physics::bell::BellState;
        let s1 = link_state(&once, &rates, &noise);
        assert!(
            s1.coeff(BellState::PhiMinus) > 0.9 * s1.error(),
            "round-1 survivor error is phase-concentrated"
        );
        assert_eq!(link_cost(&raw, &rates, &noise), 1.0);
        let c1 = link_cost(&once, &rates, &noise);
        let c2 = link_cost(&twice, &rates, &noise);
        assert!(c1 > 2.0 && c1 < 2.2, "≈2/p, got {c1}");
        assert!(c2 > 4.0 && c2 < 4.6, "got {c2}");
    }

    #[test]
    fn zero_hop_link_is_generation_limited() {
        let (rates, _) = defaults();
        let s = raw_link_state(0, &rates);
        assert!(s.error() < 2e-7, "only the generation gates contribute");
    }
}
