//! Chained-teleportation error accumulation — **Figure 9**.
//!
//! An EPR pair destined for a channel's endpoints is relayed hop-by-hop
//! through teleporter nodes (Figure 5). Each hop convolves the traveling
//! pair's Pauli frame with a link pair's and adds gate/measurement noise,
//! so error accumulates roughly linearly in the hop count. Figure 9 plots
//! the resulting error for link fidelities from 1e-4 down to 1e-8 against
//! the `1 − 7.5e-5` threshold.

use qic_physics::bell::BellDiagonal;
use qic_physics::error::ErrorRates;

/// Teleports `moving` across `hops` hops, each consuming one `link` pair,
/// and returns the state after every hop (index 0 = before any hop).
pub fn chain_states(
    moving: BellDiagonal,
    link: &BellDiagonal,
    hops: u32,
    rates: &ErrorRates,
) -> Vec<BellDiagonal> {
    let mut out = Vec::with_capacity(hops as usize + 1);
    let mut state = moving;
    out.push(state);
    for _ in 0..hops {
        state = qic_physics::teleport::teleport_pair(&state, link, rates);
        out.push(state);
    }
    out
}

/// The state after exactly `hops` chained teleports.
pub fn chain_final(
    moving: BellDiagonal,
    link: &BellDiagonal,
    hops: u32,
    rates: &ErrorRates,
) -> BellDiagonal {
    // The per-hop map is state ↦ (state ∗ link) then isotropic mix; compose
    // the (link ∗ noise) part once by exponentiation, then convolve.
    chain_states(moving, link, hops, rates)
        .pop()
        .expect("chain_states is never empty")
}

/// One Figure 9 series: `(hops, error)` for a chained pair whose links all
/// have the given `initial_error`, with the traveling pair starting at the
/// same quality. Matches the figure's x-range of 0–70 hops.
pub fn chained_error_series(
    initial_error: f64,
    max_hops: u32,
    rates: &ErrorRates,
) -> Vec<(u32, f64)> {
    let link = BellDiagonal::werner(qic_physics::fidelity::Fidelity::from_error(initial_error));
    chain_states(link, &link, max_hops, rates)
        .into_iter()
        .enumerate()
        .map(|(h, s)| (h as u32, s.error()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qic_physics::constants::THRESHOLD_ERROR;

    #[test]
    fn error_accumulates_roughly_linearly() {
        let rates = ErrorRates::ion_trap();
        let series = chained_error_series(1e-5, 64, &rates);
        let e16 = series[16].1;
        let e32 = series[32].1;
        let e64 = series[64].1;
        assert!(
            (e32 / e16 - 2.0).abs() < 0.2,
            "doubling hops ≈ doubles error"
        );
        assert!((e64 / e32 - 2.0).abs() < 0.2);
    }

    #[test]
    fn figure9_factor_100_example() {
        // §4.6: "teleporting 64 times could increase EPR pair qubit error
        // by a factor of 100" (for 1e-6 initial error).
        let rates = ErrorRates::ion_trap();
        let series = chained_error_series(1e-6, 64, &rates);
        let gain = series[64].1 / series[0].1;
        assert!(
            (30.0..300.0).contains(&gain),
            "error grew {gain}x over 64 hops; paper says ~100x"
        );
    }

    #[test]
    fn threshold_crossing_depends_on_initial_error() {
        let rates = ErrorRates::ion_trap();
        // 1e-4 links: above threshold after very few hops.
        let bad = chained_error_series(1e-4, 70, &rates);
        assert!(bad[2].1 > THRESHOLD_ERROR);
        // 1e-6 links: stays under threshold for ~50 hops.
        let good = chained_error_series(1e-6, 70, &rates);
        assert!(good[32].1 < THRESHOLD_ERROR);
        assert!(good[70].1 > 0.5 * THRESHOLD_ERROR);
    }

    #[test]
    fn gate_floor_dominates_tiny_initial_errors() {
        // 1e-8 links: accumulation is set by per-hop gate noise, so the
        // 1e-7 and 1e-8 curves nearly coincide (visible in Figure 9).
        let rates = ErrorRates::ion_trap();
        let e7 = chained_error_series(1e-7, 64, &rates)[64].1;
        let e8 = chained_error_series(1e-8, 64, &rates)[64].1;
        assert!((e7 - e8).abs() / e7 < 0.5, "curves collapse: {e7} vs {e8}");
    }

    #[test]
    fn zero_hops_is_identity() {
        let rates = ErrorRates::ion_trap();
        let s = BellDiagonal::werner_f64(0.999).unwrap();
        let out = chain_final(s, &s, 0, &rates);
        assert!(out.approx_eq(&s, 1e-15));
    }

    #[test]
    fn chain_states_length() {
        let rates = ErrorRates::ion_trap();
        let s = BellDiagonal::werner_f64(0.999).unwrap();
        assert_eq!(chain_states(s, &s, 10, &rates).len(), 11);
    }
}
