//! Ballistic vs teleportation latency crossover — **Section 4.6**.
//!
//! Teleportation costs ~122 µs regardless of distance (plus fast classical
//! signalling), while ballistic transport costs 0.2 µs per cell; beyond
//! ~600 cells, teleportation wins. This fixes the teleporter-node spacing
//! of the mesh.

use serde::{Deserialize, Serialize};

use qic_physics::optime::OpTimes;
use qic_physics::teleport;
use qic_physics::time::Duration;

/// A `(distance, ballistic, teleport)` latency sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrossoverPoint {
    /// Distance in ballistic cells.
    pub cells: u64,
    /// Latency of ballistic transport over this distance (Equation 2).
    pub ballistic: Duration,
    /// Latency of one teleportation over this distance (Equation 5).
    pub teleport: Duration,
}

impl CrossoverPoint {
    /// Whether teleportation is strictly faster at this distance.
    pub fn teleport_wins(&self) -> bool {
        self.teleport < self.ballistic
    }
}

/// Samples both latency models at each distance in `cells`.
pub fn ballistic_vs_teleport(
    cells: impl IntoIterator<Item = u64>,
    times: &OpTimes,
) -> Vec<CrossoverPoint> {
    cells
        .into_iter()
        .map(|c| CrossoverPoint {
            cells: c,
            ballistic: times.ballistic(c),
            teleport: times.teleport(c),
        })
        .collect()
}

/// The smallest distance at which teleportation beats ballistic transport,
/// if any (`≈600` cells at Table 1 constants).
pub fn crossover_cells(times: &OpTimes) -> Option<u64> {
    teleport::latency_crossover_cells(times)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_is_about_600_cells() {
        let times = OpTimes::ion_trap();
        let d = crossover_cells(&times).unwrap();
        assert!((590..=620).contains(&d), "got {d}");
    }

    #[test]
    fn samples_flip_at_crossover() {
        let times = OpTimes::ion_trap();
        let d = crossover_cells(&times).unwrap();
        let pts = ballistic_vs_teleport([d - 50, d, d + 50], &times);
        assert!(!pts[0].teleport_wins());
        assert!(pts[1].teleport_wins());
        assert!(pts[2].teleport_wins());
    }

    #[test]
    fn ballistic_latency_is_linear() {
        let times = OpTimes::ion_trap();
        let pts = ballistic_vs_teleport([100, 200], &times);
        assert_eq!(pts[1].ballistic, pts[0].ballistic * 2);
        // Teleport latency is nearly flat over the same range.
        let dt = pts[1].teleport - pts[0].teleport;
        assert!(dt < Duration::from_micros(1));
    }
}
