//! Ballistic vs teleportation latency crossover — **Section 4.6**.
//!
//! Teleportation costs ~122 µs regardless of distance (plus fast classical
//! signalling), while ballistic transport costs 0.2 µs per cell; beyond
//! ~600 cells, teleportation wins. This fixes the teleporter-node spacing
//! of the mesh.

use serde::{Deserialize, Serialize};

use qic_physics::optime::OpTimes;
use qic_physics::teleport;
use qic_physics::time::Duration;

/// A `(distance, ballistic, teleport)` latency sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrossoverPoint {
    /// Distance in ballistic cells.
    pub cells: u64,
    /// Latency of ballistic transport over this distance (Equation 2).
    pub ballistic: Duration,
    /// Latency of one teleportation over this distance (Equation 5).
    pub teleport: Duration,
}

impl CrossoverPoint {
    /// Whether teleportation is strictly faster at this distance.
    pub fn teleport_wins(&self) -> bool {
        self.teleport < self.ballistic
    }
}

/// Samples both latency models at each distance in `cells`.
pub fn ballistic_vs_teleport(
    cells: impl IntoIterator<Item = u64>,
    times: &OpTimes,
) -> Vec<CrossoverPoint> {
    cells
        .into_iter()
        .map(|c| CrossoverPoint {
            cells: c,
            ballistic: times.ballistic(c),
            teleport: times.teleport(c),
        })
        .collect()
}

/// The smallest distance at which teleportation beats ballistic transport,
/// if any (`≈600` cells at Table 1 constants).
pub fn crossover_cells(times: &OpTimes) -> Option<u64> {
    teleport::latency_crossover_cells(times)
}

/// Uncontended latency of a chained teleport over `hops` teleporter hops
/// of `hop_cells` cells each — the Section 4.6 teleport model extended
/// from one hop to a fabric-scale route (hops run sequentially for the
/// head pair; pipelining hides the rest of the stream).
pub fn chained_teleport_latency(hops: u32, hop_cells: u64, times: &OpTimes) -> Duration {
    times.teleport(hop_cells) * u64::from(hops)
}

/// Samples ballistic vs chained-teleport latency at a set of **hop
/// counts** — where an interconnect fabric's distance metadata (diameter,
/// average distance from `qic-net`'s `Topology`) plugs into the analytic
/// layer. Each hop spans `hop_cells` ballistic cells, so a point compares
/// sending a qubit `hops × hop_cells` cells ballistically against
/// teleporting it hop by hop.
///
/// # Examples
///
/// ```
/// use qic_analytic::crossover::fabric_crossover;
/// use qic_physics::optime::OpTimes;
///
/// // Mesh vs hypercube diameters at 64 nodes (14 vs 6 hops), with
/// // teleporters spaced 1000 cells apart (past the ≈600-cell crossover).
/// let times = OpTimes::ion_trap();
/// let pts = fabric_crossover([14, 6], 1000, &times);
/// // Past the crossover spacing, teleportation wins at every diameter…
/// assert!(pts.iter().all(|p| p.teleport_wins()));
/// // …and the shorter-diameter fabric pays proportionally less.
/// assert!(pts[1].teleport < pts[0].teleport);
/// ```
pub fn fabric_crossover(
    hop_counts: impl IntoIterator<Item = u32>,
    hop_cells: u64,
    times: &OpTimes,
) -> Vec<CrossoverPoint> {
    hop_counts
        .into_iter()
        .map(|hops| CrossoverPoint {
            cells: u64::from(hops) * hop_cells,
            ballistic: times.ballistic(u64::from(hops) * hop_cells),
            teleport: chained_teleport_latency(hops, hop_cells, times),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_is_about_600_cells() {
        let times = OpTimes::ion_trap();
        let d = crossover_cells(&times).unwrap();
        assert!((590..=620).contains(&d), "got {d}");
    }

    #[test]
    fn samples_flip_at_crossover() {
        let times = OpTimes::ion_trap();
        let d = crossover_cells(&times).unwrap();
        let pts = ballistic_vs_teleport([d - 50, d, d + 50], &times);
        assert!(!pts[0].teleport_wins());
        assert!(pts[1].teleport_wins());
        assert!(pts[2].teleport_wins());
    }

    #[test]
    fn fabric_crossover_scales_with_hops() {
        let times = OpTimes::ion_trap();
        let spacing = crossover_cells(&times).unwrap() + 100;
        let pts = fabric_crossover([1, 2, 4], spacing, &times);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].cells, spacing);
        assert_eq!(pts[2].cells, 4 * spacing);
        // Chained teleport latency is linear in hops.
        assert_eq!(pts[1].teleport, pts[0].teleport * 2);
        assert_eq!(pts[2].teleport, pts[0].teleport * 4);
        assert_eq!(
            chained_teleport_latency(4, spacing, &times),
            times.teleport(spacing) * 4
        );
        // Past the single-hop crossover spacing, teleporting hop by hop
        // keeps beating one long ballistic shuttle.
        assert!(pts.iter().all(|p| p.teleport_wins()));
        // A zero-hop chain is free.
        assert_eq!(chained_teleport_latency(0, spacing, &times), Duration::ZERO);
    }

    #[test]
    fn ballistic_latency_is_linear() {
        let times = OpTimes::ion_trap();
        let pts = ballistic_vs_teleport([100, 200], &times);
        assert_eq!(pts[1].ballistic, pts[0].ballistic * 2);
        // Teleport latency is nearly flat over the same range.
        let dt = pts[1].teleport - pts[0].teleport;
        assert!(dt < Duration::from_micros(1));
    }
}
