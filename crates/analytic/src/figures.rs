//! Series generators for the paper's analytical figures (8–12).
//!
//! Each function returns the exact `(x, y)` series a figure plots, labelled
//! with the paper's legend strings, so the bench harness and the plotting
//! examples stay trivially thin.

use serde::{Deserialize, Serialize};

use qic_physics::error::ErrorRates;

use qic_purify::analysis::figure8_series;
use qic_purify::protocol::{Protocol, RoundNoise};
use qic_sweep::{Axis, Campaign, CampaignReport, Metrics, ParamSpace};

use crate::chain::chained_error_series;
use crate::plan::ChannelModel;
use crate::strategy::PurifyPlacement;

/// One labelled data series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label (matches the paper's legends).
    pub label: String,
    /// `(x, y)` points; `y = f64::INFINITY` marks an infeasible point
    /// (a curve's "abrupt end" in Figure 12).
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// The largest finite `y` in the series, if any.
    pub fn max_finite(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.1)
            .filter(|y| y.is_finite())
            .fold(None, |acc, y| Some(acc.map_or(y, |a: f64| a.max(y))))
    }

    /// The `x` past which every point is infeasible, if the series ends.
    pub fn breakdown_x(&self) -> Option<f64> {
        let mut last_finite = None;
        for (x, y) in &self.points {
            if y.is_finite() {
                last_finite = Some(*x);
            }
        }
        let any_infinite = self.points.iter().any(|p| !p.1.is_finite());
        any_infinite.then_some(last_finite).flatten()
    }
}

/// **Figure 8**: EPR error after purification vs rounds, for both
/// protocols at initial fidelities 0.99, 0.999 and 0.9999.
pub fn figure8(rates: &ErrorRates, rounds: u32) -> Vec<Series> {
    let noise = RoundNoise::from_rates(rates);
    let mut out = Vec::new();
    for &f0 in &[0.99, 0.999, 0.9999] {
        for protocol in [Protocol::Bbpssw, Protocol::Dejmps] {
            let pts = figure8_series(protocol, f0, rounds, &noise)
                .into_iter()
                .map(|(r, e)| (f64::from(r), e))
                .collect();
            out.push(Series {
                label: format!("{protocol} protocol, initial fidelity={f0}"),
                points: pts,
            });
        }
    }
    out
}

/// **Figure 9**: final EPR error vs teleportation hops, for initial link
/// errors 1e-4 … 1e-8.
pub fn figure9(rates: &ErrorRates, max_hops: u32) -> Vec<Series> {
    [1e-4, 1e-5, 1e-6, 1e-7, 1e-8]
        .iter()
        .map(|&e0| Series {
            label: format!("{e0:.0e} initial error"),
            points: chained_error_series(e0, max_hops, rates)
                .into_iter()
                .map(|(h, e)| (f64::from(h), e))
                .collect(),
        })
        .collect()
}

/// Cap used to keep the exponential "after each teleport" schemes plottable,
/// mirroring the paper's axes (Figure 10/11 top out at 1e8).
pub const PAIR_COUNT_CAP: f64 = 1e12;

/// Which EPR-pair budget a channel sweep reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PairMetric {
    /// Total pairs consumed end to end (Figure 10's y-axis).
    TotalPairs,
    /// Pairs actually teleported through T' nodes (Figures 11–12).
    TeleportedPairs,
}

impl PairMetric {
    /// A compact machine-readable label (`"total_pairs"` /
    /// `"teleported_pairs"`) that [`PairMetric::parse`] round-trips.
    pub fn label(self) -> &'static str {
        match self {
            PairMetric::TotalPairs => "total_pairs",
            PairMetric::TeleportedPairs => "teleported_pairs",
        }
    }

    /// Parses a [`PairMetric::label`] back into a metric.
    pub fn parse(label: &str) -> Option<PairMetric> {
        match label {
            "total_pairs" => Some(PairMetric::TotalPairs),
            "teleported_pairs" => Some(PairMetric::TeleportedPairs),
            _ => None,
        }
    }
}

/// The Figure 10–12 per-point evaluation: the chosen pair budget of a
/// `hops`-teleport channel under `model`, `f64::INFINITY` when the plan
/// is infeasible or exceeds [`PAIR_COUNT_CAP`].
///
/// Shared by the figure campaign constructors below and the Scenario
/// runner in `qic-core`, so both paths are byte-identical by
/// construction.
pub fn pair_budget(model: &ChannelModel, hops: u32, metric: PairMetric) -> f64 {
    match model.plan(hops) {
        Ok(plan) => {
            let v = match metric {
                PairMetric::TotalPairs => plan.total_pairs,
                PairMetric::TeleportedPairs => plan.teleported_pairs,
            };
            if v > PAIR_COUNT_CAP {
                f64::INFINITY
            } else {
                v
            }
        }
        Err(_) => f64::INFINITY,
    }
}

/// The placement axis shared by the Figure 10–12 campaigns: one
/// categorical value per [`PurifyPlacement::FIGURE_SET`] entry, labelled
/// with the paper's legend strings. Point coordinate 0 indexes back into
/// `FIGURE_SET`.
pub fn placement_axis() -> Axis {
    Axis::labels(
        "placement",
        PurifyPlacement::FIGURE_SET
            .iter()
            .map(PurifyPlacement::legend),
    )
}

/// Unpacks a placement × x-axis campaign (as produced by
/// [`figure10_campaign`], [`figure11_campaign`] or [`figure12_campaign`])
/// into one [`Series`] per placement, in `FIGURE_SET` order, reading the
/// `metric` means.
///
/// # Panics
///
/// Panics if the report's first axis is not the placement axis those
/// campaigns sweep.
pub fn placement_series_of(report: &CampaignReport, metric: &str) -> Vec<Series> {
    assert!(
        report.axes.len() == 2 && report.axes[0] == placement_axis(),
        "campaign {:?} does not sweep placement × x",
        report.name
    );
    let n_x = report.axes[1].len();
    PurifyPlacement::FIGURE_SET
        .iter()
        .enumerate()
        .map(|(pi, placement)| Series {
            label: placement.legend(),
            points: (0..n_x)
                .map(|xi| {
                    let point = &report.points[pi * n_x + xi];
                    let x = point
                        .param(report.axes[1].name())
                        .as_f64()
                        .expect("x axes are numeric");
                    (x, point.mean(metric).expect("metric reported"))
                })
                .collect(),
        })
        .collect()
}

fn pairs_campaign(model: &ChannelModel, max_hops: u32, metric: PairMetric) -> CampaignReport {
    let space = ParamSpace::new().axis(placement_axis()).axis(Axis::ints(
        "hops",
        (10..=max_hops).step_by(2).map(i64::from),
    ));
    let name = match metric {
        PairMetric::TotalPairs => "figure10",
        PairMetric::TeleportedPairs => "figure11",
    };
    Campaign::new(name, space).run(|point, _ctx| {
        let placement = PurifyPlacement::FIGURE_SET[point.coord(0)];
        let m = model.clone().with_placement(placement);
        Metrics::new().with("pairs", pair_budget(&m, point.u32("hops"), metric))
    })
}

/// The Figure 10 sweep as a campaign: placement × distance, total EPR
/// pairs per point (capped at [`PAIR_COUNT_CAP`], infeasible = `∞`).
pub fn figure10_campaign(model: &ChannelModel, max_hops: u32) -> CampaignReport {
    pairs_campaign(model, max_hops, PairMetric::TotalPairs)
}

/// The Figure 11 sweep as a campaign: placement × distance, teleported
/// EPR pairs per point.
pub fn figure11_campaign(model: &ChannelModel, max_hops: u32) -> CampaignReport {
    pairs_campaign(model, max_hops, PairMetric::TeleportedPairs)
}

/// **Figure 10**: total EPR pairs consumed vs distance (10–60 teleports)
/// for the five purification placements.
pub fn figure10(model: &ChannelModel, max_hops: u32) -> Vec<Series> {
    placement_series_of(&figure10_campaign(model, max_hops), "pairs")
}

/// **Figure 11**: EPR pairs teleported vs distance for the same placements.
pub fn figure11(model: &ChannelModel, max_hops: u32) -> Vec<Series> {
    placement_series_of(&figure11_campaign(model, max_hops), "pairs")
}

/// The Figure 12 sweep as a campaign: placement × log-spaced uniform
/// error rate at a fixed distance, teleported EPR pairs per point.
pub fn figure12_campaign(hops: u32, points_per_decade: u32) -> CampaignReport {
    let base = ChannelModel::ion_trap();
    let space = ParamSpace::new()
        .axis(placement_axis())
        .axis(Axis::log_spaced("error_rate", -9, -4, points_per_decade));
    Campaign::new("figure12", space).run(|point, _ctx| {
        let placement = PurifyPlacement::FIGURE_SET[point.coord(0)];
        let p = point.f64("error_rate");
        let rates = ErrorRates::uniform(p).expect("sweep values are probabilities");
        let m = base.clone().with_rates(rates).with_placement(placement);
        Metrics::new().with("pairs", pair_budget(&m, hops, PairMetric::TeleportedPairs))
    })
}

/// **Figure 12**: EPR pairs teleported vs uniform operation error rate
/// (1e-9 … 1e-4) at a fixed distance; every curve ends abruptly near 1e-5
/// where purification stops reaching the threshold. A 16-hop channel keeps
/// the nested schemes inside the paper's 1e12 axis at low error rates.
pub fn figure12(hops: u32, points_per_decade: u32) -> Vec<Series> {
    placement_series_of(&figure12_campaign(hops, points_per_decade), "pairs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use qic_physics::constants::THRESHOLD_ERROR;

    #[test]
    fn figure8_has_six_series() {
        let series = figure8(&ErrorRates::ion_trap(), 25);
        assert_eq!(series.len(), 6);
        for s in &series {
            assert_eq!(s.points.len(), 26);
            // Error decreases from round 0 to the end.
            assert!(s.points.last().unwrap().1 < s.points[0].1);
        }
    }

    #[test]
    fn figure9_threshold_crossings() {
        let series = figure9(&ErrorRates::ion_trap(), 70);
        assert_eq!(series.len(), 5);
        // The 1e-4 series is above threshold almost immediately; the 1e-8
        // series stays below it much longer.
        let worst = &series[0];
        let best = &series[4];
        assert!(worst.points[2].1 > THRESHOLD_ERROR);
        assert!(best.points[40].1 < THRESHOLD_ERROR);
    }

    /// Geometric mean of the finite y-values of a series.
    fn geo_mean(s: &Series) -> f64 {
        let logs: Vec<f64> = s
            .points
            .iter()
            .map(|p| p.1)
            .filter(|y| y.is_finite())
            .map(f64::ln)
            .collect();
        (logs.iter().sum::<f64>() / logs.len() as f64).exp()
    }

    #[test]
    fn figure10_endpoints_only_is_lowest() {
        // The paper's claim is aggregate: "the Endpoints Only scheme uses
        // the fewest total EPR resources". Individual distances can flip
        // briefly where the endpoint-round count steps (the staircase
        // visible in the published curves), so compare geometric means and
        // bound any local excursion.
        let series = figure10(&ChannelModel::ion_trap(), 60);
        assert_eq!(series.len(), 5);
        let only = series
            .iter()
            .find(|s| s.label.contains("only at end"))
            .unwrap();
        let m_only = geo_mean(only);
        for other in series.iter().filter(|s| !s.label.contains("only at end")) {
            assert!(
                m_only < geo_mean(other),
                "{} beat endpoints-only on average",
                other.label
            );
            for (a, b) in only.points.iter().zip(&other.points) {
                assert!(
                    a.1 <= b.1 * 2.5 + 1e-9,
                    "{} beat endpoints-only by >2.5x at x={}",
                    other.label,
                    a.0
                );
            }
        }
        // The two virtual-wire schemes order by rounds on average.
        let once = series
            .iter()
            .find(|s| s.label.contains("once before"))
            .unwrap();
        let twice = series
            .iter()
            .find(|s| s.label.contains("2x before"))
            .unwrap();
        assert!(geo_mean(once) < geo_mean(twice));
    }

    #[test]
    fn figure11_before_teleport_is_lowest() {
        let series = figure11(&ChannelModel::ion_trap(), 60);
        let twice_before = series
            .iter()
            .find(|s| s.label.contains("2x before"))
            .unwrap();
        for other in series.iter().filter(|s| !s.label.contains("2x before")) {
            for (a, b) in twice_before.points.iter().zip(&other.points) {
                assert!(
                    a.1 <= b.1 + 1e-9,
                    "{} beat 2x-before at x={}",
                    other.label,
                    a.0
                );
            }
        }
    }

    #[test]
    fn after_each_teleport_leaves_the_chart() {
        // The nested schemes exceed any plottable budget well before 60
        // hops — their curves "run off the top" like the paper's.
        let series = figure10(&ChannelModel::ion_trap(), 60);
        let nested = series
            .iter()
            .find(|s| s.label.contains("once after"))
            .unwrap();
        assert!(nested.points.last().unwrap().1.is_infinite());
        assert!(nested.breakdown_x().is_some());
    }

    #[test]
    fn figure12_breaks_down_near_1e5() {
        let series = figure12(16, 4);
        for s in &series {
            let bx = s
                .breakdown_x()
                .unwrap_or_else(|| panic!("{} should break down", s.label));
            assert!(
                (1e-6..=1e-4).contains(&bx),
                "{}: breakdown at {bx:.2e}, expected near 1e-5",
                s.label
            );
        }
        // Working-regime spread: over the span where all curves are finite,
        // resources vary far less than the error rate does (paper: "only
        // differ by a factor of up to 100 for a 10,000x difference").
        let endpoints = series
            .iter()
            .find(|s| s.label.contains("only at end"))
            .unwrap();
        let finite: Vec<f64> = endpoints
            .points
            .iter()
            .map(|p| p.1)
            .filter(|y| y.is_finite())
            .collect();
        let spread = finite.iter().cloned().fold(f64::MIN, f64::max)
            / finite.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 1000.0, "spread {spread}");
    }

    #[test]
    #[should_panic(expected = "does not sweep placement")]
    fn series_of_rejects_foreign_campaigns() {
        let space = ParamSpace::new()
            .axis(Axis::ints("a", [1, 2]))
            .axis(Axis::ints("b", [1, 2]));
        let report =
            Campaign::new("not-a-figure", space).run(|_, _| Metrics::new().with("pairs", 1.0));
        let _ = placement_series_of(&report, "pairs");
    }

    #[test]
    fn series_helpers() {
        let s = Series {
            label: "x".into(),
            points: vec![
                (1.0, 5.0),
                (2.0, f64::INFINITY),
                (3.0, 7.0),
                (4.0, f64::INFINITY),
            ],
        };
        assert_eq!(s.max_finite(), Some(7.0));
        assert_eq!(s.breakdown_x(), Some(3.0));
        let all_finite = Series {
            label: "y".into(),
            points: vec![(1.0, 2.0)],
        };
        assert_eq!(all_finite.breakdown_x(), None);
    }
}
