//! Component-count cost models for flat and modular machines.
//!
//! The ISCA 2006 paper sizes one chip; a modular machine trades money
//! and area against fidelity and latency: more modules mean smaller
//! (cheaper, higher-yield) chips but more crossings of a slower, lossier
//! inter-module tier. This module prices a machine from its component
//! counts × per-tier unit costs and predicts the headline network
//! figures of merit, so scenario sweeps can chart cost-fidelity Pareto
//! fronts next to the simulator's measured latency.
//!
//! The model is deliberately linear: every unit cost is a knob, and the
//! estimate is a dot product. Calibrate the knobs, not the shape.
//!
//! # Example
//!
//! ```
//! use qic_analytic::cost::{ComponentCounts, CostModel, NetworkShape};
//!
//! // A 2-module machine of 4×4 meshes joined by one optical link.
//! let counts = ComponentCounts {
//!     nodes: 32,
//!     intra_links: 48,
//!     inter_links: 1,
//!     switch_ports: 2,
//!     teleporters: 130,
//!     generators: 196,
//!     purifiers: 64,
//! };
//! let shape = NetworkShape {
//!     avg_distance: 3.6,
//!     diameter: 9,
//!     bisection_width: 1,
//!     hop_ns: 21_000,
//!     inter_penalty_ns: 500,
//! };
//! let est = CostModel::ion_trap().estimate(&counts, &shape);
//! assert!(est.dollars > 0.0);
//! assert!(est.predicted_latency_ns > shape.avg_distance * shape.hop_ns as f64);
//! ```

use serde::{Deserialize, Serialize};

/// Hardware component counts of one machine (both tiers).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentCounts {
    /// Teleporter (T′) nodes across all modules.
    pub nodes: u64,
    /// On-module links (G-node virtual wires).
    pub intra_links: u64,
    /// Inter-module links.
    pub inter_links: u64,
    /// Switch ports the inter-module tier needs.
    pub switch_ports: u64,
    /// Teleporter slots (per-node pools plus gateway bonuses).
    pub teleporters: u64,
    /// EPR generators (per-link banks).
    pub generators: u64,
    /// Purifier sites.
    pub purifiers: u64,
}

/// Static network figures of merit feeding the latency/throughput
/// predictions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkShape {
    /// Mean hop distance over ordered distinct pairs.
    pub avg_distance: f64,
    /// Maximum hop distance.
    pub diameter: u32,
    /// Links cut by the best balanced bisection.
    pub bisection_width: usize,
    /// Service nanoseconds per hop (one teleport).
    pub hop_ns: u64,
    /// Extra nanoseconds an inter-module crossing pays (already scaled
    /// by the tier's switch stages); zero for flat machines.
    pub inter_penalty_ns: u64,
}

/// Per-unit dollar and area knobs. Dollars are arbitrary units (the
/// Pareto front only needs consistent relative prices); area is in
/// trap-cell equivalents.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Dollars per teleporter (T′) node.
    pub node_cost: f64,
    /// Dollars per on-module link (G node + channel).
    pub intra_link_cost: f64,
    /// Dollars per inter-module link (fiber + collection optics).
    pub inter_link_cost: f64,
    /// Dollars per switch port of the inter-module tier.
    pub switch_port_cost: f64,
    /// Dollars per teleporter slot.
    pub teleporter_cost: f64,
    /// Dollars per EPR generator.
    pub generator_cost: f64,
    /// Dollars per purifier site.
    pub purifier_cost: f64,
    /// Trap-cell-equivalent area per node.
    pub node_area: f64,
    /// Trap-cell-equivalent area per on-module link.
    pub intra_link_area: f64,
}

impl CostModel {
    /// Ion-trap-flavoured defaults: nodes dominate, the optical tier is
    /// priced per port, and area is on-chip only (the inter tier is
    /// off-chip fiber).
    pub fn ion_trap() -> CostModel {
        CostModel {
            node_cost: 10.0,
            intra_link_cost: 2.0,
            inter_link_cost: 4.0,
            switch_port_cost: 6.0,
            teleporter_cost: 1.0,
            generator_cost: 0.5,
            purifier_cost: 1.5,
            node_area: 9.0,
            intra_link_area: 600.0,
        }
    }

    /// Sets the dollars per inter-module link (builder style; the
    /// `InterTierCost` scenario axis lands here).
    #[must_use]
    pub fn with_inter_link_cost(mut self, cost: f64) -> CostModel {
        self.inter_link_cost = cost;
        self
    }

    /// Prices the machine and predicts its headline network figures.
    pub fn estimate(&self, counts: &ComponentCounts, shape: &NetworkShape) -> CostEstimate {
        let dollars = self.node_cost * counts.nodes as f64
            + self.intra_link_cost * counts.intra_links as f64
            + self.inter_link_cost * counts.inter_links as f64
            + self.switch_port_cost * counts.switch_ports as f64
            + self.teleporter_cost * counts.teleporters as f64
            + self.generator_cost * counts.generators as f64
            + self.purifier_cost * counts.purifiers as f64;
        let area_cells =
            self.node_area * counts.nodes as f64 + self.intra_link_area * counts.intra_links as f64;
        // Mean unloaded route latency: every hop pays the teleport
        // service time, and cross-module routes additionally pay the
        // tier penalty. With `inter_links = P` links over `L` total, the
        // mean route crosses the tier `avg_distance · P / L` times — the
        // link-frequency estimate consistent with uniform traffic.
        let total_links = (counts.intra_links + counts.inter_links) as f64;
        let inter_crossings = if total_links > 0.0 {
            shape.avg_distance * counts.inter_links as f64 / total_links
        } else {
            0.0
        };
        let predicted_latency_ns = shape.avg_distance * shape.hop_ns as f64
            + inter_crossings * shape.inter_penalty_ns as f64;
        // Uniform-traffic throughput bound: half the traffic crosses the
        // bisection, each cut link moves one pair per hop time.
        let predicted_throughput = if shape.hop_ns > 0 {
            2.0 * shape.bisection_width as f64 / (shape.hop_ns as f64 * 1e-9)
        } else {
            0.0
        };
        CostEstimate {
            dollars,
            area_cells,
            predicted_latency_ns,
            predicted_throughput,
        }
    }
}

/// What a machine costs and what the shape model predicts it delivers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Total price in (arbitrary, consistent) dollars.
    pub dollars: f64,
    /// On-chip area in trap-cell equivalents.
    pub area_cells: f64,
    /// Mean unloaded route latency in nanoseconds.
    pub predicted_latency_ns: f64,
    /// Uniform-traffic cross-bisection throughput bound, pairs/s.
    pub predicted_throughput: f64,
}

/// Strips the points that are Pareto-dominated on (cost ↓, fidelity ↑):
/// returns the indices of the front, sorted by ascending cost. A point
/// survives iff no other point is at most as expensive *and* strictly
/// higher fidelity (ties keep the cheapest).
pub fn pareto_front(points: &[(f64, f64)]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        points[a]
            .0
            .partial_cmp(&points[b].0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                points[b]
                    .1
                    .partial_cmp(&points[a].1)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
    });
    let mut front = Vec::new();
    let mut best_fidelity = f64::NEG_INFINITY;
    for &i in &order {
        if points[i].1 > best_fidelity {
            best_fidelity = points[i].1;
            front.push(i);
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_counts() -> ComponentCounts {
        ComponentCounts {
            nodes: 16,
            intra_links: 24,
            inter_links: 0,
            switch_ports: 0,
            teleporters: 64,
            generators: 96,
            purifiers: 32,
        }
    }

    #[test]
    fn estimate_is_linear_in_unit_costs() {
        let counts = flat_counts();
        let shape = NetworkShape {
            avg_distance: 2.5,
            diameter: 6,
            bisection_width: 4,
            hop_ns: 21_000,
            inter_penalty_ns: 0,
        };
        let base = CostModel::ion_trap().estimate(&counts, &shape);
        let pricier = CostModel::ion_trap()
            .with_inter_link_cost(100.0)
            .estimate(&counts, &shape);
        assert_eq!(
            base.dollars, pricier.dollars,
            "no inter links ⇒ the inter knob is free"
        );
        assert_eq!(base.predicted_latency_ns, 2.5 * 21_000.0);
        assert!(base.predicted_throughput > 0.0);
    }

    #[test]
    fn inter_tier_shows_up_in_price_and_latency() {
        let mut counts = flat_counts();
        counts.inter_links = 6;
        counts.switch_ports = 4;
        let shape = NetworkShape {
            avg_distance: 4.0,
            diameter: 11,
            bisection_width: 4,
            hop_ns: 21_000,
            inter_penalty_ns: 800,
        };
        let flat = CostModel::ion_trap().estimate(&flat_counts(), &shape);
        let modular = CostModel::ion_trap().estimate(&counts, &shape);
        assert!(modular.dollars > flat.dollars);
        assert!(modular.predicted_latency_ns > flat.predicted_latency_ns);
        let pricier = CostModel::ion_trap()
            .with_inter_link_cost(40.0)
            .estimate(&counts, &shape);
        assert_eq!(pricier.dollars - modular.dollars, 36.0 * 6.0);
    }

    #[test]
    fn pareto_front_keeps_only_undominated_points() {
        // (cost, fidelity)
        let pts = [
            (10.0, 0.90), // front: cheapest
            (12.0, 0.95), // front: pays for fidelity
            (11.0, 0.85), // dominated by (10, 0.90)
            (20.0, 0.95), // dominated by (12, 0.95) — same fidelity, dearer
            (30.0, 0.99), // front: top fidelity
        ];
        assert_eq!(pareto_front(&pts), vec![0, 1, 4]);
        assert_eq!(pareto_front(&[]), Vec::<usize>::new());
    }
}
