//! Degraded-bisection throughput bounds — the closed-form side of the
//! fault layer.
//!
//! The paper sizes its interconnect for a healthy machine; when links
//! die, the first-order effect on all-to-all traffic is the shrinking
//! **bisection**: every communication crossing the cut consumes its raw
//! chained pairs on some surviving cut link, and those links generate
//! pairs at a finite rate. That gives a simple upper bound on
//! sustainable cross-cut throughput which the event-driven simulator
//! (over a `qic-fault` `DegradedFabric`) can never beat — a cheap
//! cross-check that measured throughput collapse under faults is
//! physical, not a simulator artefact.
//!
//! The inputs are plain numbers (link counts from any
//! `Topology::bisection_width`, rates from `NetConfig`), so this module
//! stays independent of the network crate.

use qic_physics::time::Duration;

/// Raw link-pair production rate (pairs per second) across `links`
/// parallel links, each carrying `generators_per_edge` generators that
/// finish one pair every `generate` interval, derated by the
/// virtual-wire `link_cost_factor` (raw pairs consumed per delivered
/// pair; `1.0` unless link purification is modelled).
///
/// # Examples
///
/// ```
/// use qic_analytic::degraded::cut_pair_rate;
/// use qic_physics::time::Duration;
///
/// // 8 cut links × 4 generators, one pair per 10 µs each.
/// let rate = cut_pair_rate(8, 4, Duration::from_micros(10), 1.0);
/// assert!((rate - 3_200_000.0).abs() < 1e-6);
/// // Halving the surviving links halves the rate.
/// assert_eq!(cut_pair_rate(4, 4, Duration::from_micros(10), 1.0), rate / 2.0);
/// ```
pub fn cut_pair_rate(
    links: usize,
    generators_per_edge: u32,
    generate: Duration,
    link_cost_factor: f64,
) -> f64 {
    let interval_s = generate.as_us_f64() * 1e-6;
    if interval_s <= 0.0 || link_cost_factor <= 0.0 {
        return 0.0;
    }
    links as f64 * f64::from(generators_per_edge) / (interval_s * link_cost_factor)
}

/// Upper bound on sustainable cross-bisection communication throughput
/// (communications per second): every cross-cut communication streams
/// `raw_pairs_per_comm` chained pairs over at least one surviving cut
/// link, so the cut's aggregate pair rate caps it.
///
/// # Examples
///
/// ```
/// use qic_analytic::degraded::bisection_comm_throughput;
/// use qic_physics::time::Duration;
///
/// let healthy = bisection_comm_throughput(16, 4, Duration::from_micros(10), 1.0, 392);
/// let degraded = bisection_comm_throughput(10, 4, Duration::from_micros(10), 1.0, 392);
/// // Losing cut links caps throughput proportionally.
/// assert!((degraded / healthy - 10.0 / 16.0).abs() < 1e-12);
/// ```
pub fn bisection_comm_throughput(
    bisection_links: usize,
    generators_per_edge: u32,
    generate: Duration,
    link_cost_factor: f64,
    raw_pairs_per_comm: u64,
) -> f64 {
    if raw_pairs_per_comm == 0 {
        return f64::INFINITY;
    }
    cut_pair_rate(
        bisection_links,
        generators_per_edge,
        generate,
        link_cost_factor,
    ) / raw_pairs_per_comm as f64
}

/// The fraction of healthy cross-bisection throughput a degraded fabric
/// can still sustain: `surviving / healthy` (both in cut links).
/// Returns `1.0` for a healthy (or zero-width) baseline and `0.0` when
/// the cut is fully severed.
///
/// # Examples
///
/// ```
/// use qic_analytic::degraded::degradation_factor;
///
/// assert_eq!(degradation_factor(16, 16), 1.0);
/// assert_eq!(degradation_factor(16, 8), 0.5);
/// assert_eq!(degradation_factor(16, 0), 0.0);
/// ```
pub fn degradation_factor(healthy_bisection: usize, surviving_bisection: usize) -> f64 {
    if healthy_bisection == 0 {
        return 1.0;
    }
    (surviving_bisection.min(healthy_bisection)) as f64 / healthy_bisection as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_rate_scales_linearly_in_every_input() {
        let base = cut_pair_rate(8, 4, Duration::from_micros(10), 1.0);
        assert!(base > 0.0);
        assert_eq!(
            cut_pair_rate(16, 4, Duration::from_micros(10), 1.0),
            base * 2.0
        );
        assert_eq!(
            cut_pair_rate(8, 8, Duration::from_micros(10), 1.0),
            base * 2.0
        );
        assert!((cut_pair_rate(8, 4, Duration::from_micros(20), 1.0) - base / 2.0).abs() < 1e-9);
        assert!((cut_pair_rate(8, 4, Duration::from_micros(10), 2.0) - base / 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        assert_eq!(cut_pair_rate(0, 4, Duration::from_micros(10), 1.0), 0.0);
        assert_eq!(cut_pair_rate(8, 4, Duration::ZERO, 1.0), 0.0);
        assert_eq!(cut_pair_rate(8, 4, Duration::from_micros(10), 0.0), 0.0);
        assert_eq!(
            bisection_comm_throughput(8, 4, Duration::from_micros(10), 1.0, 0),
            f64::INFINITY
        );
        assert_eq!(degradation_factor(0, 0), 1.0);
        // Surviving can never exceed healthy in the factor.
        assert_eq!(degradation_factor(8, 100), 1.0);
    }

    #[test]
    fn throughput_bound_matches_hand_arithmetic() {
        // 10 links × 2 gens, one pair per 100 µs: 200k pairs/s; at 50
        // raw pairs per comm that is 4k comms/s.
        let bound = bisection_comm_throughput(10, 2, Duration::from_micros(100), 1.0, 50);
        assert!((bound - 4_000.0).abs() < 1e-9);
    }
}
