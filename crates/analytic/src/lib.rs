//! Analytical quantum-channel models — **Section 4.6–4.7** of Isailovic
//! et al. (ISCA 2006).
//!
//! A *quantum channel* between two functional units is set up by
//! distributing EPR pairs to its endpoints over a chain of teleporter
//! nodes, then purifying at the endpoints until the pairs meet the
//! fault-tolerance threshold (`1 − 7.5e-5`). This crate answers, in closed
//! form, the questions the paper's Figures 9–12 pose:
//!
//! * [`link`] — what state do virtual-wire (link) pairs arrive in, and
//!   what do purified links cost?
//! * [`chain`] — how does error accumulate over chained teleportation
//!   (Figure 9)?
//! * [`plan`] — given a placement strategy, how many EPR pairs must be
//!   teleported and consumed per data communication (Figures 10–11), and
//!   when does the whole scheme break down (Figure 12)?
//! * [`crossover`] — where does teleportation beat ballistic transport
//!   (the ~600-cell rule)?
//! * [`degraded`] — how much cross-bisection throughput survives when
//!   links die (the closed-form cross-check for `qic-fault` runs)?
//! * [`cost`] — what does a (possibly modular) machine cost in dollars
//!   and area, and what latency/throughput does its shape predict (the
//!   cost-fidelity Pareto axis for `qic-modular` sweeps)?
//! * [`figures`] — ready-made series generators for each figure.
//!
//! # Example
//!
//! ```
//! use qic_analytic::prelude::*;
//!
//! let model = ChannelModel::ion_trap();
//! let plan = model.plan(30)?;
//! // Endpoint purification needs 3 rounds at this distance (§5.3)...
//! assert_eq!(plan.endpoint_rounds, 3);
//! // ...so a logical communication needs ~2³·49 ≈ 392 teleported pairs.
//! assert!((plan.pairs_per_logical_comm(49) - 392.0).abs() / 392.0 < 0.2);
//! # Ok::<(), qic_analytic::plan::ChannelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod cost;
pub mod crossover;
pub mod degraded;
pub mod figures;
pub mod link;
pub mod plan;
pub mod strategy;

/// Convenient glob-import surface: `use qic_analytic::prelude::*;`.
pub mod prelude {
    pub use crate::chain::chained_error_series;
    pub use crate::cost::{pareto_front, ComponentCounts, CostEstimate, CostModel, NetworkShape};
    pub use crate::crossover::{ballistic_vs_teleport, CrossoverPoint};
    pub use crate::degraded::{bisection_comm_throughput, degradation_factor};
    pub use crate::figures;
    pub use crate::link::{link_cost, link_state, LinkSpec};
    pub use crate::plan::{ChannelError, ChannelModel, ChannelPlan};
    pub use crate::strategy::PurifyPlacement;
}

pub use plan::{ChannelError, ChannelModel, ChannelPlan};
pub use strategy::PurifyPlacement;
