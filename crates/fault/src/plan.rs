//! Declarative fault plans and their deterministic compilation.
//!
//! A [`FaultPlan`] describes how a fabric degrades — as data, not code:
//! Bernoulli rates for permanent link kills, node/site loss and
//! teleporter-pool degradation, plus explicit schedules (dead component
//! lists, transient [`Hotspot`] windows). Compilation is a pure
//! function of `(plan, fabric)`: every stochastic decision draws from a
//! SplitMix64-derived per-component seed, so the same plan produces the
//! same [`FaultSchedule`] on every run, thread, and machine.

use serde::{Deserialize, Serialize};

use qic_net::topology::Topology;

/// The 64-bit golden ratio, SplitMix64's increment (the same constant
/// `qic-sweep` uses for campaign seed derivation).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 finaliser: a bijective avalanche mix of a 64-bit word.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(GOLDEN_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Independent fault-draw domains, so a link and a node with the same
/// index never share a random stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum FaultDomain {
    /// Permanent link kills.
    Link = 1,
    /// Node/site loss.
    Node = 2,
    /// Per-slot teleporter-pool degradation.
    Teleporter = 3,
}

/// The seed for one component's fault draw: a pure function of the
/// plan seed, the domain, and the component index.
pub fn component_seed(seed: u64, domain: FaultDomain, index: u64) -> u64 {
    let domain_seed = splitmix64(seed ^ GOLDEN_GAMMA.wrapping_mul(domain as u64));
    splitmix64(domain_seed ^ GOLDEN_GAMMA.wrapping_mul(index.wrapping_add(1)))
}

/// Maps a 64-bit word onto `[0, 1)` with 53 uniform mantissa bits.
fn unit(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// One deterministic Bernoulli trial for a component.
pub fn bernoulli(seed: u64, domain: FaultDomain, index: u64, rate: f64) -> bool {
    rate > 0.0 && unit(component_seed(seed, domain, index)) < rate
}

/// A transient hot-spot window: hops crossing `link` during
/// `[start_ns, end_ns)` pay `penalty_ns` of extra service time
/// (congestion, recalibration, a flaky junction — anything that slows a
/// link without killing it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hotspot {
    /// Dense link index on the base fabric.
    pub link: u32,
    /// Window start (simulated nanoseconds).
    pub start_ns: u64,
    /// Window end, exclusive (simulated nanoseconds).
    pub end_ns: u64,
    /// Extra service nanoseconds per hop inside the window.
    pub penalty_ns: u64,
}

impl Hotspot {
    /// Whether the window covers `now_ns`.
    pub fn covers(&self, now_ns: u64) -> bool {
        self.start_ns <= now_ns && now_ns < self.end_ns
    }
}

/// A declarative, serializable fault model for one fabric.
///
/// Rates are independent Bernoulli probabilities drawn per component
/// from [`component_seed`]; explicit lists add deterministic,
/// schedule-driven faults on top. A plan with every rate at zero and
/// every list empty is **exactly** the healthy fabric (the compiled
/// wrapper reproduces the base topology's behaviour bit for bit).
///
/// # Examples
///
/// ```
/// use qic_fault::FaultPlan;
/// use qic_net::topology::{Mesh, Topology};
///
/// let plan = FaultPlan::healthy().with_seed(7).with_link_kill(0.2);
/// let degraded = plan.clone().compile(Mesh::new(8, 8));
/// // Same plan, same fabric ⇒ the same fault schedule, always.
/// assert_eq!(
///     plan.schedule(&Mesh::new(8, 8)),
///     degraded.plan().schedule(&Mesh::new(8, 8)),
/// );
/// assert!(degraded.surviving_links() < Mesh::new(8, 8).links());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Root seed every per-component draw derives from.
    pub seed: u64,
    /// Probability that each link is permanently killed.
    pub link_kill_rate: f64,
    /// Probability that each node (site) is lost.
    pub node_loss_rate: f64,
    /// Probability that each teleporter slot at each node has failed
    /// (pool capacity degradation; every node keeps at least one).
    pub teleporter_loss_rate: f64,
    /// Explicitly killed links (dense base-fabric link indices).
    pub dead_links: Vec<u32>,
    /// Explicitly lost nodes (dense base-fabric node indices).
    pub dead_nodes: Vec<u32>,
    /// Explicitly lost whole modules (for hierarchical fabrics such as
    /// `qic-modular`'s `ModularFabric`: every node of the module is
    /// masked). Flat fabrics are one module, so only index 0 is valid
    /// there.
    pub dead_modules: Vec<u32>,
    /// Transient hot-spot windows.
    pub hotspots: Vec<Hotspot>,
}

impl FaultPlan {
    /// The zero-fault plan (seed 2006, every rate zero, no schedules):
    /// compiling it reproduces the healthy fabric exactly.
    pub fn healthy() -> FaultPlan {
        FaultPlan {
            seed: 2006,
            link_kill_rate: 0.0,
            node_loss_rate: 0.0,
            teleporter_loss_rate: 0.0,
            dead_links: Vec::new(),
            dead_nodes: Vec::new(),
            dead_modules: Vec::new(),
            hotspots: Vec::new(),
        }
    }

    /// Sets the root seed.
    pub fn with_seed(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }

    /// Sets the Bernoulli link-kill rate.
    pub fn with_link_kill(mut self, rate: f64) -> FaultPlan {
        self.link_kill_rate = rate;
        self
    }

    /// Sets the Bernoulli node-loss rate.
    pub fn with_node_loss(mut self, rate: f64) -> FaultPlan {
        self.node_loss_rate = rate;
        self
    }

    /// Sets the per-slot teleporter degradation rate.
    pub fn with_teleporter_loss(mut self, rate: f64) -> FaultPlan {
        self.teleporter_loss_rate = rate;
        self
    }

    /// Explicitly kills a link.
    pub fn with_dead_link(mut self, link: u32) -> FaultPlan {
        self.dead_links.push(link);
        self
    }

    /// Explicitly loses a node.
    pub fn with_dead_node(mut self, node: u32) -> FaultPlan {
        self.dead_nodes.push(node);
        self
    }

    /// Explicitly loses a whole module (every node of a hierarchical
    /// fabric's `module` tile).
    pub fn with_dead_module(mut self, module: u32) -> FaultPlan {
        self.dead_modules.push(module);
        self
    }

    /// Adds a transient hot-spot window.
    pub fn with_hotspot(mut self, hotspot: Hotspot) -> FaultPlan {
        self.hotspots.push(hotspot);
        self
    }

    /// Whether the plan can mask links or nodes (and therefore change
    /// routes). Hot spots and teleporter degradation slow a fabric but
    /// never reroute it.
    pub fn masks_topology(&self) -> bool {
        self.link_kill_rate > 0.0
            || self.node_loss_rate > 0.0
            || !self.dead_links.is_empty()
            || !self.dead_nodes.is_empty()
            || !self.dead_modules.is_empty()
    }

    /// Whether the plan injects no fault of any kind.
    pub fn is_zero(&self) -> bool {
        !self.masks_topology() && self.teleporter_loss_rate == 0.0 && self.hotspots.is_empty()
    }

    /// Checks the plan's own invariants (rates are probabilities,
    /// hot-spot windows are non-empty). Component indices are checked
    /// against a concrete fabric by [`FaultPlan::schedule`].
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("link_kill_rate", self.link_kill_rate),
            ("node_loss_rate", self.node_loss_rate),
            ("teleporter_loss_rate", self.teleporter_loss_rate),
        ] {
            if !(rate.is_finite() && (0.0..=1.0).contains(&rate)) {
                return Err(format!("{name} must be a probability, got {rate}"));
            }
        }
        for h in &self.hotspots {
            if h.start_ns >= h.end_ns {
                return Err(format!(
                    "hotspot on link {} has an empty window [{}, {})",
                    h.link, h.start_ns, h.end_ns
                ));
            }
        }
        Ok(())
    }

    /// Resolves the plan against a fabric into the concrete, sorted
    /// fault schedule. Pure and deterministic: the same `(plan, fabric)`
    /// pair always yields a byte-identical schedule.
    ///
    /// # Panics
    ///
    /// Panics if an explicit dead link/node or hot-spot link index is
    /// out of range for the fabric (callers validate upstream; the
    /// Scenario layer reports this as a structured config error).
    pub fn schedule<T: Topology + ?Sized>(&self, topo: &T) -> FaultSchedule {
        let links = topo.links();
        let nodes = topo.nodes();
        let mut dead_links: Vec<u32> = Vec::new();
        for &l in &self.dead_links {
            assert!(
                (l as usize) < links,
                "explicit dead link {l} out of range (fabric has {links} links)"
            );
            dead_links.push(l);
        }
        for link in 0..links as u32 {
            if bernoulli(
                self.seed,
                FaultDomain::Link,
                u64::from(link),
                self.link_kill_rate,
            ) {
                dead_links.push(link);
            }
        }
        let mut dead_nodes: Vec<u32> = Vec::new();
        for &n in &self.dead_nodes {
            assert!(
                (n as usize) < nodes,
                "explicit dead node {n} out of range (fabric has {nodes} nodes)"
            );
            dead_nodes.push(n);
        }
        // A dead module expands to every node the fabric assigns to it.
        let modules = topo.modules();
        for &m in &self.dead_modules {
            assert!(
                (m as usize) < modules,
                "explicit dead module {m} out of range (fabric has {modules} modules)"
            );
        }
        if !self.dead_modules.is_empty() {
            for node in 0..nodes {
                if self.dead_modules.contains(&(topo.module_of(node) as u32)) {
                    dead_nodes.push(node as u32);
                }
            }
        }
        for node in 0..nodes as u32 {
            if bernoulli(
                self.seed,
                FaultDomain::Node,
                u64::from(node),
                self.node_loss_rate,
            ) {
                dead_nodes.push(node);
            }
        }
        dead_links.sort_unstable();
        dead_links.dedup();
        dead_nodes.sort_unstable();
        dead_nodes.dedup();
        for h in &self.hotspots {
            assert!(
                (h.link as usize) < links,
                "hotspot link {} out of range (fabric has {links} links)",
                h.link
            );
        }
        FaultSchedule {
            dead_links,
            dead_nodes,
            hotspots: self.hotspots.clone(),
        }
    }

    /// Surviving teleporter capacity at `node` for a configured per-node
    /// budget of `base` slots: each slot fails independently at
    /// [`FaultPlan::teleporter_loss_rate`]; every node keeps at least
    /// one surviving slot so a pool never vanishes entirely. The
    /// compiled [`crate::DegradedFabric`] additionally floors this at
    /// one slot per port class (a dimension set without a teleporter
    /// would strand traffic, not slow it), which is exactly what the
    /// simulator provisions.
    pub fn teleporter_capacity(&self, node: usize, base: u32) -> u32 {
        if self.teleporter_loss_rate <= 0.0 || base <= 1 {
            return base;
        }
        let mut lost = 0;
        for slot in 0..base {
            let index = (node as u64) << 16 | u64::from(slot);
            if bernoulli(
                self.seed,
                FaultDomain::Teleporter,
                index,
                self.teleporter_loss_rate,
            ) {
                lost += 1;
            }
        }
        (base - lost).max(1)
    }

    /// Compiles the plan against a base fabric into a
    /// [`crate::DegradedFabric`] (resolves the schedule, masks dead
    /// components, recomputes reachability, diameter and bisection of
    /// the surviving graph).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range explicit component indices (see
    /// [`FaultPlan::schedule`]).
    pub fn compile<T: Topology>(self, base: T) -> crate::DegradedFabric<T> {
        crate::DegradedFabric::new(base, self)
    }
}

impl Default for FaultPlan {
    /// Same as [`FaultPlan::healthy`].
    fn default() -> Self {
        FaultPlan::healthy()
    }
}

/// The concrete faults a plan resolves to on one fabric: sorted dead
/// component lists plus the hot-spot schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Killed links, ascending and deduplicated.
    pub dead_links: Vec<u32>,
    /// Lost nodes, ascending and deduplicated.
    pub dead_nodes: Vec<u32>,
    /// Hot-spot windows, in plan order.
    pub hotspots: Vec<Hotspot>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use qic_net::topology::{Mesh, Torus};

    #[test]
    fn splitmix_is_deterministic_and_scrambles() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        let outputs: std::collections::HashSet<u64> = (0..1000).map(splitmix64).collect();
        assert_eq!(outputs.len(), 1000, "splitmix64 is injective on 0..1000");
    }

    #[test]
    fn domains_are_independent_streams() {
        let a = component_seed(7, FaultDomain::Link, 3);
        let b = component_seed(7, FaultDomain::Node, 3);
        let c = component_seed(7, FaultDomain::Teleporter, 3);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(component_seed(7, FaultDomain::Link, 4), a);
        assert_ne!(component_seed(8, FaultDomain::Link, 3), a);
    }

    #[test]
    fn bernoulli_extremes() {
        assert!(!bernoulli(1, FaultDomain::Link, 0, 0.0));
        assert!(bernoulli(1, FaultDomain::Link, 0, 1.0));
    }

    #[test]
    fn bernoulli_rate_is_plausible() {
        let hits = (0..10_000)
            .filter(|&i| bernoulli(42, FaultDomain::Link, i, 0.3))
            .count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn schedule_is_pure_and_sorted() {
        let plan = FaultPlan::healthy()
            .with_seed(11)
            .with_link_kill(0.25)
            .with_node_loss(0.1)
            .with_dead_link(3)
            .with_dead_node(0);
        let mesh = Mesh::new(6, 6);
        let a = plan.schedule(&mesh);
        let b = plan.schedule(&mesh);
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "byte-identical");
        assert!(a.dead_links.windows(2).all(|w| w[0] < w[1]));
        assert!(a.dead_nodes.windows(2).all(|w| w[0] < w[1]));
        assert!(a.dead_links.contains(&3));
        assert!(a.dead_nodes.contains(&0));
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let mesh = Mesh::new(8, 8);
        let a = FaultPlan::healthy()
            .with_seed(1)
            .with_link_kill(0.3)
            .schedule(&mesh);
        let b = FaultPlan::healthy()
            .with_seed(2)
            .with_link_kill(0.3)
            .schedule(&mesh);
        assert_ne!(a.dead_links, b.dead_links);
    }

    #[test]
    fn zero_plan_schedules_nothing() {
        let plan = FaultPlan::healthy();
        assert!(plan.is_zero());
        assert!(!plan.masks_topology());
        let s = plan.schedule(&Torus::new(4, 4));
        assert!(s.dead_links.is_empty());
        assert!(s.dead_nodes.is_empty());
        assert!(s.hotspots.is_empty());
        assert_eq!(FaultPlan::default(), FaultPlan::healthy());
    }

    #[test]
    fn teleporter_capacity_degrades_but_never_vanishes() {
        let plan = FaultPlan::healthy().with_seed(5).with_teleporter_loss(0.5);
        let mut total = 0u32;
        for node in 0..64 {
            let cap = plan.teleporter_capacity(node, 16);
            assert!((1..=16).contains(&cap));
            assert_eq!(cap, plan.teleporter_capacity(node, 16), "deterministic");
            total += cap;
        }
        // ~half the slots survive in aggregate.
        assert!((300..=700).contains(&total), "got {total}");
        // Extreme loss still leaves one slot.
        let brutal = FaultPlan::healthy().with_teleporter_loss(1.0);
        assert_eq!(brutal.teleporter_capacity(0, 16), 1);
        // Zero rate is the identity.
        assert_eq!(FaultPlan::healthy().teleporter_capacity(0, 16), 16);
    }

    #[test]
    fn validation_rejects_bad_plans() {
        assert!(FaultPlan::healthy().validate().is_ok());
        assert!(FaultPlan::healthy().with_link_kill(1.5).validate().is_err());
        assert!(FaultPlan::healthy()
            .with_node_loss(-0.1)
            .validate()
            .is_err());
        assert!(FaultPlan::healthy()
            .with_teleporter_loss(f64::NAN)
            .validate()
            .is_err());
        let empty_window = FaultPlan::healthy().with_hotspot(Hotspot {
            link: 0,
            start_ns: 10,
            end_ns: 10,
            penalty_ns: 5,
        });
        assert!(empty_window.validate().is_err());
    }

    #[test]
    fn dead_modules_expand_to_their_nodes() {
        // A flat fabric is one module: killing module 0 masks all nodes.
        let plan = FaultPlan::healthy().with_dead_module(0);
        assert!(plan.masks_topology());
        assert!(!plan.is_zero());
        let s = plan.schedule(&Mesh::new(3, 3));
        assert_eq!(s.dead_nodes, (0..9).collect::<Vec<u32>>());
    }

    #[test]
    #[should_panic(expected = "dead module 1 out of range")]
    fn out_of_range_dead_module_panics() {
        let _ = FaultPlan::healthy()
            .with_dead_module(1)
            .schedule(&Mesh::new(4, 4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_dead_link_panics() {
        let _ = FaultPlan::healthy()
            .with_dead_link(10_000)
            .schedule(&Mesh::new(4, 4));
    }

    #[test]
    fn hotspot_windows_cover_half_open_ranges() {
        let h = Hotspot {
            link: 0,
            start_ns: 100,
            end_ns: 200,
            penalty_ns: 50,
        };
        assert!(!h.covers(99));
        assert!(h.covers(100));
        assert!(h.covers(199));
        assert!(!h.covers(200));
    }
}
