//! # qic-fault — deterministic fault injection for interconnect fabrics
//!
//! The source paper (Isailovic et al., ISCA 2006) sizes its
//! interconnect assuming every teleporter pool, virtual wire and
//! junction is alive. Real ion-trap and multi-core fabrics degrade, and
//! related interconnect work (Escofet et al., arXiv:2309.07313) judges
//! an interconnect precisely by how its cost, fidelity and latency hold
//! up when links fail. This crate opens that axis for every fabric in
//! the workspace:
//!
//! 1. a declarative, serializable [`FaultPlan`] — Bernoulli rates for
//!    permanent link kills, node/site loss and teleporter-pool
//!    degradation, plus explicit schedules (dead component lists,
//!    transient [`Hotspot`] windows);
//! 2. fully deterministic compilation: every stochastic draw comes from
//!    a SplitMix64-derived per-component seed ([`component_seed`]), so
//!    a plan resolves to a byte-identical [`FaultSchedule`] on every
//!    run, worker thread and machine;
//! 3. the [`DegradedFabric`] wrapper, which masks dead links and nodes
//!    behind the `qic-net` [`qic_net::topology::Topology`] trait —
//!    recomputing reachability, diameter and bisection of the surviving
//!    graph — so the existing minimal routers detour automatically and
//!    the simulator surfaces structured
//!    [`qic_net::sim::CommOutcome::Unreachable`] drops instead of
//!    hanging.
//!
//! A zero-fault plan is exactly the healthy fabric: wrapping costs
//! nothing when unused, which is what keeps the paper-figure golden
//! outputs byte-identical.
//!
//! # Example
//!
//! ```
//! use qic_fault::FaultPlan;
//! use qic_net::config::NetConfig;
//! use qic_net::sim::{BatchDriver, NetworkSim};
//! use qic_net::topology::{Coord, Topology};
//!
//! // Degrade a 4×4 torus: 15% of links die, deterministically.
//! let cfg = NetConfig::small_test().with_topology(qic_net::topology::TopologyKind::Torus);
//! let degraded = FaultPlan::healthy()
//!     .with_seed(2006)
//!     .with_link_kill(0.15)
//!     .compile(cfg.fabric());
//! assert!(degraded.surviving_links() < 32);
//!
//! // The simulator routes around the damage and reports what it cost.
//! let mut driver = BatchDriver::new(vec![
//!     (Coord::new(0, 0), Coord::new(3, 3)),
//!     (Coord::new(3, 0), Coord::new(0, 3)),
//! ]);
//! let report = NetworkSim::with_topology(cfg, degraded).run(&mut driver);
//! let fault = report.fault.expect("fault-aware runs report resilience stats");
//! assert_eq!(fault.delivered + fault.dropped, report.comms_completed);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod degraded;
mod plan;

pub use degraded::{DegradationSummary, DegradedFabric, UNREACHABLE};
pub use plan::{
    bernoulli, component_seed, splitmix64, FaultDomain, FaultPlan, FaultSchedule, Hotspot,
};

/// Convenient glob-import surface: `use qic_fault::prelude::*;`.
pub mod prelude {
    pub use crate::{DegradationSummary, DegradedFabric, FaultPlan, FaultSchedule, Hotspot};
}
