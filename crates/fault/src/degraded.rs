//! `DegradedFabric`: a fault-masking [`Topology`] wrapper.

use qic_net::topology::{Coord, Port, Topology};

use crate::plan::{FaultPlan, FaultSchedule, Hotspot};

/// The distance value reported between disconnected (or dead) nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// Structural damage report of a compiled [`DegradedFabric`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationSummary {
    /// Links masked (killed directly, or incident to a dead node).
    pub dead_links: usize,
    /// Nodes lost.
    pub dead_nodes: usize,
    /// Links still usable.
    pub surviving_links: usize,
    /// Nodes still alive.
    pub alive_nodes: usize,
    /// Ordered alive node pairs with a surviving path, over **all**
    /// ordered distinct pairs of the base fabric (`1.0` when healthy).
    pub reachable_fraction: f64,
    /// Longest surviving shortest path, or `None` if no pair is
    /// reachable.
    pub diameter: Option<u32>,
    /// Surviving links across the index-median bisection.
    pub bisection_width: usize,
}

/// A base fabric with a compiled [`FaultPlan`] masked onto it.
///
/// The wrapper keeps the base fabric's node, port, and **dense link
/// indexing** (so simulator resource arrays are laid out identically)
/// but re-derives everything routing observes from the surviving graph:
///
/// * [`Topology::neighbor`] returns `None` through dead links and into
///   dead nodes;
/// * [`Topology::distance`] / [`Topology::min_ports`] come from a BFS
///   over the surviving graph, so the existing minimal routers
///   ([`qic_net::routing::DimensionOrder`],
///   [`qic_net::routing::MinimalAdaptive`]) automatically detour around
///   masked components — every hop still strictly decreases the
///   (degraded) distance, keeping routes loop-free;
/// * [`Topology::is_reachable`] is `false` across severed cuts, which
///   the simulator turns into structured
///   [`qic_net::sim::CommOutcome::Unreachable`] drops instead of hangs;
/// * diameter and bisection are recomputed for the surviving graph;
/// * [`Topology::dor_is_acyclic`] reports `false` whenever anything is
///   masked — detours may turn where the healthy fabric never would, so
///   the simulator arms bubble flow control conservatively.
///
/// A zero-fault plan changes nothing: every trait method returns
/// exactly what the base fabric returns, so wrapping is free when
/// unused (the `fault_overhead` bench and the golden figure outputs
/// hold that line).
///
/// # Examples
///
/// ```
/// use qic_fault::{FaultPlan, DegradedFabric, UNREACHABLE};
/// use qic_net::topology::{Mesh, Topology};
///
/// // Cut the 2×2 mesh's left column off by killing two links.
/// let mesh = Mesh::new(2, 2);
/// let left_col = mesh.link_index(0, qic_net::topology::Port(0)); // 0—1
/// let bottom = mesh.link_index(2, qic_net::topology::Port(0));   // 2—3
/// let degraded = FaultPlan::healthy()
///     .with_dead_link(left_col as u32)
///     .with_dead_link(bottom as u32)
///     .compile(mesh);
/// assert!(!degraded.is_reachable(0, 1));
/// assert_eq!(degraded.distance(0, 2), 1, "the left column survives");
/// assert_eq!(Topology::distance(&degraded, 0, 1), UNREACHABLE);
/// assert_eq!(degraded.summary().surviving_links, 2);
/// ```
#[derive(Debug, Clone)]
pub struct DegradedFabric<T: Topology> {
    base: T,
    plan: FaultPlan,
    /// Masked links: killed directly or incident to a dead node.
    dead_link: Vec<bool>,
    dead_node: Vec<bool>,
    /// Whether any link or node is masked (routes can change).
    masks: bool,
    /// All-pairs surviving hop distances, row-major (`UNREACHABLE` when
    /// severed). Only populated while `masks` is true — the healthy
    /// wrapper delegates to the base fabric.
    dist: Vec<u32>,
    diameter: u32,
    reachable_pairs: u64,
    alive_nodes: usize,
    surviving_links: usize,
    bisection: usize,
    hotspots: Vec<Hotspot>,
}

impl<T: Topology> DegradedFabric<T> {
    /// Compiles `plan` onto `base` (also reachable as
    /// [`FaultPlan::compile`]).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range explicit component indices in the plan
    /// (see [`FaultPlan::schedule`]).
    pub fn new(base: T, plan: FaultPlan) -> DegradedFabric<T> {
        let schedule = plan.schedule(&base);
        DegradedFabric::from_schedule(base, plan, schedule)
    }

    fn from_schedule(base: T, plan: FaultPlan, schedule: FaultSchedule) -> DegradedFabric<T> {
        let nodes = base.nodes();
        let links = base.links();
        let mut dead_node = vec![false; nodes];
        for &n in &schedule.dead_nodes {
            dead_node[n as usize] = true;
        }
        let mut dead_link = vec![false; links];
        for &l in &schedule.dead_links {
            dead_link[l as usize] = true;
        }
        // A dead node masks every incident link.
        for node in 0..nodes {
            for p in 0..base.ports_per_node() {
                let port = Port(p as u8);
                if let Some(nb) = base.neighbor(node, port) {
                    if dead_node[node] || dead_node[nb] {
                        dead_link[base.link_index(node, port)] = true;
                    }
                }
            }
        }
        let masks = dead_link.iter().any(|&d| d) || dead_node.iter().any(|&d| d);
        let mut fabric = DegradedFabric {
            base,
            plan,
            dead_link,
            dead_node,
            masks,
            dist: Vec::new(),
            diameter: 0,
            reachable_pairs: 0,
            alive_nodes: nodes,
            surviving_links: links,
            bisection: 0,
            hotspots: schedule.hotspots,
        };
        fabric.recompute();
        fabric
    }

    /// Rebuilds the surviving-graph metadata (distances, diameter,
    /// reachability, bisection).
    fn recompute(&mut self) {
        let nodes = self.base.nodes();
        self.alive_nodes = self.dead_node.iter().filter(|&&d| !d).count();
        self.surviving_links = self.dead_link.iter().filter(|&&d| !d).count();
        self.bisection = if self.masks {
            self.surviving_bisection()
        } else {
            self.base.bisection_width()
        };
        if !self.masks {
            // Healthy: delegate distances to the base fabric and reuse
            // its metadata verbatim.
            self.dist = Vec::new();
            self.diameter = self.base.diameter();
            self.reachable_pairs = (nodes * nodes.saturating_sub(1)) as u64;
            return;
        }
        let mut dist = vec![UNREACHABLE; nodes * nodes];
        let mut queue = std::collections::VecDeque::new();
        for src in 0..nodes {
            if self.dead_node[src] {
                continue;
            }
            let row = &mut dist[src * nodes..(src + 1) * nodes];
            row[src] = 0;
            queue.clear();
            queue.push_back(src);
            while let Some(at) = queue.pop_front() {
                let d = row[at];
                for p in 0..self.base.ports_per_node() {
                    let port = Port(p as u8);
                    if let Some(nb) = self.base.neighbor(at, port) {
                        if !self.dead_link[self.base.link_index(at, port)] && row[nb] == UNREACHABLE
                        {
                            row[nb] = d + 1;
                            queue.push_back(nb);
                        }
                    }
                }
            }
        }
        let mut diameter = 0;
        let mut reachable = 0u64;
        for src in 0..nodes {
            for d in &dist[src * nodes..(src + 1) * nodes] {
                if *d != UNREACHABLE && *d != 0 {
                    reachable += 1;
                    diameter = diameter.max(*d);
                }
            }
        }
        self.dist = dist;
        self.diameter = diameter;
        self.reachable_pairs = reachable;
    }

    /// Surviving links crossing one side-predicate cut.
    fn surviving_cut(&self, side: impl Fn(usize) -> bool) -> usize {
        let nodes = self.base.nodes();
        let mut seen = vec![false; self.base.links()];
        let mut cut = 0;
        for node in 0..nodes {
            for p in 0..self.base.ports_per_node() {
                let port = Port(p as u8);
                if let Some(nb) = self.base.neighbor(node, port) {
                    let link = self.base.link_index(node, port);
                    if !seen[link] && !self.dead_link[link] && (side(node) != side(nb)) {
                        seen[link] = true;
                        cut += 1;
                    }
                }
            }
        }
        cut
    }

    /// Surviving links across the better of the two dimension-median
    /// cuts (x-median, y-median), preferring cuts through an even
    /// extent so the partition is balanced — the same cut family the
    /// base fabrics' `bisection_width` formulas count, so on a healthy
    /// wrapper this reproduces the base value and degradation can only
    /// shrink it. Like the base trait, both-dimensions-odd is a
    /// documented near-balanced approximation.
    fn surviving_bisection(&self) -> usize {
        let w = usize::from(self.base.width());
        let h = usize::from(self.base.height());
        let x_cut = |n: usize| usize::from(self.base.coord_of(n).x) < w / 2;
        let y_cut = |n: usize| usize::from(self.base.coord_of(n).y) < h / 2;
        let mut balanced = Vec::with_capacity(2);
        if w % 2 == 0 && w > 1 {
            balanced.push(self.surviving_cut(x_cut));
        }
        if h % 2 == 0 && h > 1 {
            balanced.push(self.surviving_cut(y_cut));
        }
        if let Some(&best) = balanced.iter().min() {
            return best;
        }
        // Both dimensions odd (or degenerate): near-balanced fallback,
        // as in the base fabrics.
        self.surviving_cut(x_cut).min(self.surviving_cut(y_cut))
    }

    /// The wrapped base fabric.
    pub fn base(&self) -> &T {
        &self.base
    }

    /// The plan this fabric was compiled from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether any link or node is masked (routes differ from healthy).
    pub fn is_degraded(&self) -> bool {
        self.masks
    }

    /// Whether the link is masked (dead, or incident to a dead node).
    pub fn link_is_dead(&self, link: usize) -> bool {
        self.dead_link[link]
    }

    /// Whether the node is lost.
    pub fn node_is_dead(&self, node: usize) -> bool {
        self.dead_node[node]
    }

    /// Links still usable.
    pub fn surviving_links(&self) -> usize {
        self.surviving_links
    }

    /// Nodes still alive.
    pub fn alive_nodes(&self) -> usize {
        self.alive_nodes
    }

    /// Ordered alive pairs with a surviving path, over all ordered
    /// distinct base pairs.
    pub fn reachable_fraction(&self) -> f64 {
        let nodes = self.base.nodes();
        let all = (nodes * nodes.saturating_sub(1)) as f64;
        if all == 0.0 {
            return 1.0;
        }
        self.reachable_pairs as f64 / all
    }

    /// The structural damage report.
    pub fn summary(&self) -> DegradationSummary {
        DegradationSummary {
            dead_links: self.base.links() - self.surviving_links,
            dead_nodes: self.base.nodes() - self.alive_nodes,
            surviving_links: self.surviving_links,
            alive_nodes: self.alive_nodes,
            reachable_fraction: self.reachable_fraction(),
            diameter: (self.reachable_pairs > 0).then_some(self.diameter),
            bisection_width: self.bisection,
        }
    }
}

impl<T: Topology> Topology for DegradedFabric<T> {
    fn name(&self) -> &'static str {
        self.base.name()
    }

    fn width(&self) -> u16 {
        self.base.width()
    }

    fn height(&self) -> u16 {
        self.base.height()
    }

    // The coordinate mapping is the base's, not the row-major default:
    // a modular base numbers nodes module-major, and masking must not
    // silently renumber the machine it masks.
    fn contains(&self, c: Coord) -> bool {
        self.base.contains(c)
    }

    fn node_index(&self, c: Coord) -> usize {
        self.base.node_index(c)
    }

    fn coord_of(&self, node: usize) -> Coord {
        self.base.coord_of(node)
    }

    fn ports_per_node(&self) -> usize {
        self.base.ports_per_node()
    }

    fn port_classes(&self) -> usize {
        self.base.port_classes()
    }

    fn port_class(&self, port: Port) -> usize {
        self.base.port_class(port)
    }

    fn neighbor(&self, node: usize, port: Port) -> Option<usize> {
        let nb = self.base.neighbor(node, port)?;
        if self.masks
            && (self.dead_link[self.base.link_index(node, port)]
                || self.dead_node[node]
                || self.dead_node[nb])
        {
            return None;
        }
        Some(nb)
    }

    fn reverse_port(&self, node: usize, port: Port) -> Port {
        self.base.reverse_port(node, port)
    }

    fn links(&self) -> usize {
        self.base.links()
    }

    fn link_index(&self, node: usize, port: Port) -> usize {
        self.base.link_index(node, port)
    }

    /// Surviving hop distance; [`UNREACHABLE`] across severed cuts or
    /// dead endpoints (healthy wrappers delegate to the base fabric).
    fn distance(&self, a: usize, b: usize) -> u32 {
        if !self.masks {
            return self.base.distance(a, b);
        }
        self.dist[a * self.base.nodes() + b]
    }

    fn min_ports(&self, node: usize, dst: usize) -> Vec<Port> {
        if !self.masks {
            return self.base.min_ports(node, dst);
        }
        let here = self.distance(node, dst);
        if node == dst || here == UNREACHABLE {
            return Vec::new();
        }
        let mut ports = Vec::new();
        for p in 0..self.base.ports_per_node() {
            let port = Port(p as u8);
            if let Some(nb) = self.neighbor(node, port) {
                if self.distance(nb, dst) < here {
                    ports.push(port);
                }
            }
        }
        ports
    }

    fn diameter(&self) -> u32 {
        self.diameter
    }

    fn bisection_width(&self) -> usize {
        self.bisection
    }

    /// Masked fabrics force bubble flow control: a detour around a hole
    /// may turn where the healthy fabric's dimension-order routes never
    /// would, so the channel-dependency graph is treated as cyclic.
    fn dor_is_acyclic(&self) -> bool {
        self.base.dor_is_acyclic() && !self.masks
    }

    fn fault_aware(&self) -> bool {
        true
    }

    fn is_reachable(&self, a: usize, b: usize) -> bool {
        if !self.masks {
            return true;
        }
        !self.dead_node[a] && !self.dead_node[b] && self.distance(a, b) != UNREACHABLE
    }

    fn healthy_distance(&self, a: usize, b: usize) -> u32 {
        self.base.distance(a, b)
    }

    /// Surviving teleporter capacity, floored at **one slot per port
    /// class**: every dimension set must keep a teleporter or traffic
    /// crossing that dimension at this node could never be served (a
    /// livelock, not a degradation). This matches exactly what the
    /// simulator provisions, so reported capacity is never silently
    /// inflated.
    fn teleporter_capacity(&self, node: usize, base: u32) -> u32 {
        // Degrade whatever pool the base fabric provisions (a healthy
        // flat fabric keeps the full budget; a modular base may add
        // gateway slots first), then apply the per-class floor.
        let pool = self.base.teleporter_capacity(node, base);
        self.plan
            .teleporter_capacity(node, pool)
            .max((self.base.port_classes() as u32).min(pool))
    }

    fn hop_penalty_ns(&self, link: usize, now_ns: u64) -> u64 {
        // Hot-spot windows stack on whatever static penalty the base
        // charges (zero for flat fabrics, the inter-tier latency for a
        // modular base).
        let mut penalty = self.base.hop_penalty_ns(link, now_ns);
        for h in &self.hotspots {
            if h.link as usize == link && h.covers(now_ns) {
                penalty += h.penalty_ns;
            }
        }
        penalty
    }

    fn modules(&self) -> usize {
        self.base.modules()
    }

    fn module_of(&self, node: usize) -> usize {
        self.base.module_of(node)
    }

    /// Mean surviving hop distance over reachable ordered pairs (`0.0`
    /// when nothing is reachable).
    fn avg_distance(&self) -> f64 {
        if !self.masks {
            return self.base.avg_distance();
        }
        if self.reachable_pairs == 0 {
            return 0.0;
        }
        let mut total = 0u64;
        for d in &self.dist {
            if *d != UNREACHABLE {
                total += u64::from(*d);
            }
        }
        total as f64 / self.reachable_pairs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qic_net::topology::{Hypercube, Mesh, Torus};

    #[test]
    fn zero_fault_wrapper_is_exactly_the_base() {
        let mesh = Mesh::new(5, 4);
        let degraded = FaultPlan::healthy().compile(Mesh::new(5, 4));
        assert!(!degraded.is_degraded());
        assert!(degraded.fault_aware());
        assert!(degraded.dor_is_acyclic(), "mesh DOR stays acyclic");
        assert_eq!(degraded.diameter(), mesh.diameter());
        assert_eq!(degraded.bisection_width(), mesh.bisection_width());
        assert_eq!(degraded.avg_distance(), mesh.avg_distance());
        for a in 0..mesh.nodes() {
            for b in 0..mesh.nodes() {
                assert_eq!(Topology::distance(&degraded, a, b), mesh.distance(a, b));
                assert_eq!(degraded.min_ports(a, b), mesh.min_ports(a, b));
                assert!(degraded.is_reachable(a, b));
            }
            for p in 0..mesh.ports_per_node() {
                assert_eq!(
                    degraded.neighbor(a, Port(p as u8)),
                    mesh.neighbor(a, Port(p as u8))
                );
            }
        }
    }

    #[test]
    fn healthy_bisection_matches_every_base_fabric() {
        for (b, expect) in [
            (FaultPlan::healthy().compile(Mesh::new(8, 8)).bisection, 8),
            (FaultPlan::healthy().compile(Torus::new(8, 8)).bisection, 16),
            (
                FaultPlan::healthy().compile(Hypercube::new(6)).bisection,
                32,
            ),
        ] {
            assert_eq!(b, expect);
        }
    }

    #[test]
    fn dead_node_masks_incident_links_and_detours() {
        // Kill the centre of a 3×3 mesh: routes corner-to-corner detour
        // around it but every pair stays reachable.
        let degraded = FaultPlan::healthy()
            .with_dead_node(4)
            .compile(Mesh::new(3, 3));
        assert!(degraded.is_degraded());
        assert!(!degraded.dor_is_acyclic(), "masked fabric arms bubble");
        assert_eq!(degraded.alive_nodes(), 8);
        assert_eq!(degraded.summary().dead_links, 4);
        assert!(!degraded.is_reachable(0, 4));
        assert!(degraded.is_reachable(0, 8));
        // Healthy distance 0→8 is 4; the detour keeps it 4 (around the
        // edge), while 1→7 (straight through the centre) inflates to 4.
        assert_eq!(Topology::distance(&degraded, 0, 8), 4);
        assert_eq!(degraded.healthy_distance(1, 7), 2);
        assert_eq!(Topology::distance(&degraded, 1, 7), 4);
    }

    #[test]
    fn severed_fabric_reports_unreachable() {
        // Kill both links of node 0 on a 2×2 mesh.
        let mesh = Mesh::new(2, 2);
        let east = mesh.link_index(0, Port(0)) as u32;
        let north = mesh.link_index(0, Port(2)) as u32;
        let degraded = FaultPlan::healthy()
            .with_dead_link(east)
            .with_dead_link(north)
            .compile(mesh);
        assert!(!degraded.is_reachable(0, 3));
        assert_eq!(Topology::distance(&degraded, 0, 3), UNREACHABLE);
        assert!(degraded.min_ports(0, 3).is_empty());
        assert!(degraded.is_reachable(1, 2), "the rest stays connected");
        let s = degraded.summary();
        assert_eq!(s.surviving_links, 2);
        assert!(s.reachable_fraction < 1.0);
        assert_eq!(s.diameter, Some(2));
    }

    #[test]
    fn min_ports_strictly_decrease_surviving_distance() {
        let degraded = FaultPlan::healthy()
            .with_seed(13)
            .with_link_kill(0.2)
            .compile(Torus::new(5, 5));
        for a in 0..25 {
            for b in 0..25 {
                let d = Topology::distance(&degraded, a, b);
                let ports = degraded.min_ports(a, b);
                if a == b || d == UNREACHABLE {
                    assert!(ports.is_empty());
                    continue;
                }
                assert!(!ports.is_empty(), "reachable pairs keep a minimal port");
                for p in ports {
                    let nb = degraded.neighbor(a, p).expect("min ports are wired");
                    assert_eq!(Topology::distance(&degraded, nb, b), d - 1);
                }
            }
        }
    }

    #[test]
    fn hotspots_penalise_only_their_window_and_link() {
        let degraded = FaultPlan::healthy()
            .with_hotspot(Hotspot {
                link: 2,
                start_ns: 1_000,
                end_ns: 2_000,
                penalty_ns: 500,
            })
            .with_hotspot(Hotspot {
                link: 2,
                start_ns: 1_500,
                end_ns: 3_000,
                penalty_ns: 100,
            })
            .compile(Mesh::new(4, 4));
        assert!(!degraded.is_degraded(), "hotspots never mask links");
        assert!(degraded.dor_is_acyclic(), "routes are healthy-minimal");
        assert_eq!(degraded.hop_penalty_ns(2, 999), 0);
        assert_eq!(degraded.hop_penalty_ns(2, 1_000), 500);
        assert_eq!(degraded.hop_penalty_ns(2, 1_700), 600, "windows stack");
        assert_eq!(degraded.hop_penalty_ns(2, 2_500), 100);
        assert_eq!(degraded.hop_penalty_ns(3, 1_500), 0, "other links are free");
    }

    #[test]
    fn teleporter_capacity_floors_at_one_slot_per_port_class() {
        // Total loss on a dim-4 hypercube (4 port classes): the plan's
        // own floor is 1, but the fabric keeps one slot per dimension
        // set — matching what the simulator provisions.
        let degraded = FaultPlan::healthy()
            .with_teleporter_loss(1.0)
            .compile(Hypercube::new(4));
        assert_eq!(degraded.plan().teleporter_capacity(0, 16), 1);
        assert_eq!(Topology::teleporter_capacity(&degraded, 0, 16), 4);
        // The floor never exceeds the configured budget itself.
        assert_eq!(Topology::teleporter_capacity(&degraded, 0, 2), 2);
        // Zero loss is the identity.
        let healthy = FaultPlan::healthy().compile(Hypercube::new(4));
        assert_eq!(Topology::teleporter_capacity(&healthy, 3, 16), 16);
    }

    #[test]
    fn bisection_shrinks_when_cut_links_die() {
        let mesh = Mesh::new(4, 4);
        // Link between node 4 (row 1) and node 8 (row 2) crosses the cut.
        let cut_link = mesh.link_index(4, Port(2)) as u32;
        let degraded = FaultPlan::healthy().with_dead_link(cut_link).compile(mesh);
        assert_eq!(degraded.bisection_width(), 3);
        assert_eq!(degraded.summary().bisection_width, 3);
    }
}
