//! Property tests for the fault layer's core guarantees:
//! determinism of compiled schedules, masked-link avoidance by every
//! router, and exact healthy behaviour for zero-rate plans.

use proptest::prelude::*;

use qic_fault::{DegradedFabric, FaultPlan, UNREACHABLE};
use qic_net::routing::RoutingPolicy;
use qic_net::topology::{Fabric, Hypercube, Mesh, Port, Topology, Torus};

/// The three fabrics at a `w × h`-ish scale (the hypercube picks the
/// nearest power-of-two node count).
fn fabrics(w: u16, h: u16) -> Vec<Fabric> {
    let dim = (usize::from(w) * usize::from(h)).ilog2().clamp(1, 6);
    vec![
        Fabric::Mesh(Mesh::new(w, h)),
        Fabric::Torus(Torus::new(w, h)),
        Fabric::Hypercube(Hypercube::new(dim)),
    ]
}

proptest! {
    #[test]
    fn same_seed_compiles_a_byte_identical_schedule(
        w in 2u16..8, h in 2u16..8,
        seed in 0u64..1_000_000,
        link_pct in 0u32..40, node_pct in 0u32..25,
    ) {
        let link_rate = f64::from(link_pct) / 100.0;
        let node_rate = f64::from(node_pct) / 100.0;
        for fabric in fabrics(w, h) {
            let plan = FaultPlan::healthy()
                .with_seed(seed)
                .with_link_kill(link_rate)
                .with_node_loss(node_rate);
            let a = plan.schedule(&fabric);
            let b = plan.schedule(&fabric);
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
            // The compiled fabric agrees with the standalone schedule.
            let degraded = plan.compile(fabric);
            for &l in &a.dead_links {
                prop_assert!(degraded.link_is_dead(l as usize));
            }
            for &n in &a.dead_nodes {
                prop_assert!(degraded.node_is_dead(n as usize));
            }
        }
    }

    #[test]
    fn routes_never_traverse_masked_links(
        w in 3u16..8, h in 3u16..8,
        seed in 0u64..10_000,
        link_pct in 5u32..35,
        src in 0usize..64, dst in 0usize..64,
    ) {
        for fabric in fabrics(w, h) {
            let nodes = fabric.nodes();
            let (src, dst) = (src % nodes, dst % nodes);
            let degraded = FaultPlan::healthy()
                .with_seed(seed)
                .with_link_kill(f64::from(link_pct) / 100.0)
                .with_node_loss(0.05)
                .compile(fabric);
            if !Topology::is_reachable(&degraded, src, dst) {
                prop_assert!(
                    src == dst || Topology::distance(&degraded, src, dst) == UNREACHABLE
                );
                continue;
            }
            for policy in RoutingPolicy::ALL {
                let path = policy.router().route(&degraded, src, dst, &|_| 0);
                prop_assert_eq!(
                    path.len() as u32,
                    Topology::distance(&degraded, src, dst),
                    "routes are minimal in the surviving metric"
                );
                let mut at = src;
                for port in path {
                    prop_assert!(!degraded.node_is_dead(at));
                    let link = degraded.link_index(at, port);
                    prop_assert!(!degraded.link_is_dead(link), "hop over masked link {link}");
                    at = degraded.neighbor(at, port).expect("route follows wired ports");
                }
                prop_assert_eq!(at, dst);
                prop_assert!(!degraded.node_is_dead(dst));
            }
        }
    }

    #[test]
    fn zero_rate_plan_is_exactly_the_healthy_fabric(
        w in 2u16..7, h in 2u16..7,
        seed in 0u64..10_000,
    ) {
        for fabric in fabrics(w, h) {
            let degraded: DegradedFabric<Fabric> =
                FaultPlan::healthy().with_seed(seed).compile(fabric);
            let base = *degraded.base();
            prop_assert!(!degraded.is_degraded());
            prop_assert_eq!(degraded.diameter(), base.diameter());
            prop_assert_eq!(degraded.bisection_width(), base.bisection_width());
            prop_assert_eq!(degraded.dor_is_acyclic(), base.dor_is_acyclic());
            for a in 0..base.nodes() {
                for b in 0..base.nodes() {
                    prop_assert_eq!(
                        Topology::distance(&degraded, a, b),
                        base.distance(a, b)
                    );
                    prop_assert_eq!(degraded.min_ports(a, b), base.min_ports(a, b));
                }
                for p in 0..base.ports_per_node() {
                    prop_assert_eq!(
                        degraded.neighbor(a, Port(p as u8)),
                        base.neighbor(a, Port(p as u8))
                    );
                }
            }
        }
    }

    #[test]
    fn degradation_only_ever_shrinks_the_fabric(
        w in 2u16..7, h in 2u16..7,
        seed in 0u64..10_000,
        link_pct in 0u32..50,
    ) {
        for fabric in fabrics(w, h) {
            let base = fabric;
            let degraded = FaultPlan::healthy()
                .with_seed(seed)
                .with_link_kill(f64::from(link_pct) / 100.0)
                .compile(fabric);
            prop_assert!(degraded.surviving_links() <= base.links());
            prop_assert!(degraded.bisection_width() <= base.bisection_width());
            prop_assert!(degraded.reachable_fraction() <= 1.0);
            // Surviving shortest paths never beat the healthy metric.
            for a in 0..base.nodes() {
                for b in 0..base.nodes() {
                    let d = Topology::distance(&degraded, a, b);
                    if d != UNREACHABLE {
                        prop_assert!(d >= base.distance(a, b));
                    }
                }
            }
        }
    }
}
