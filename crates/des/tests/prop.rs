//! Property-based tests for the event engine.

use proptest::prelude::*;

use qic_des::queue::EventQueue;
use qic_des::time::SimTime;

proptest! {
    #[test]
    fn events_pop_in_time_order(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    #[test]
    fn equal_times_pop_fifo(n in 1usize..100, t in 0u64..1000) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule_at(SimTime::from_nanos(t), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_schedule_pop_is_consistent(
        batches in proptest::collection::vec(proptest::collection::vec(0u64..10_000, 1..10), 1..20),
    ) {
        // Alternate scheduling batches (relative to `now`) and popping one
        // event; the clock must never run backwards.
        let mut q = EventQueue::new();
        let mut last = SimTime::ZERO;
        for batch in &batches {
            for &dt in batch {
                q.schedule_after(qic_physics::time::Duration::from_nanos(dt), ());
            }
            if let Some((t, ())) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }
        while let Some((t, ())) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
        prop_assert!(q.is_empty());
    }
}
