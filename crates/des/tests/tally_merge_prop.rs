//! Property tests for `Tally::merge` — the constant-memory Welford
//! combine that streaming campaign aggregation is built on.

use proptest::prelude::*;

use qic_des::stats::Tally;

fn tally_of(samples: &[f64]) -> Tally {
    let mut t = Tally::new();
    for &x in samples {
        t.record(x);
    }
    t
}

/// `|got - want|` relative to `want` (absolute when `want` is ~0).
fn rel_err(got: f64, want: f64) -> f64 {
    let scale = want.abs().max(1.0);
    (got - want).abs() / scale
}

proptest! {
    #[test]
    fn merge_of_splits_matches_sequential_fold(
        samples in proptest::collection::vec(-1e6f64..1e6, 2..120),
        cut in 0usize..120,
    ) {
        let cut = cut % samples.len();
        let whole = tally_of(&samples);
        let mut merged = tally_of(&samples[..cut]);
        merged.merge(&tally_of(&samples[cut..]));
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.min(), whole.min());
        prop_assert_eq!(merged.max(), whole.max());
        prop_assert!(rel_err(merged.mean().unwrap(), whole.mean().unwrap()) < 1e-12);
        if let Some(v) = whole.variance() {
            // m2 is a sum of squared deviations; compare in its own scale.
            prop_assert!(rel_err(merged.variance().unwrap(), v) < 1e-9,
                "variance {} vs {}", merged.variance().unwrap(), v);
        }
    }

    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(-1e3f64..1e3, 0..40),
        b in proptest::collection::vec(-1e3f64..1e3, 0..40),
        c in proptest::collection::vec(-1e3f64..1e3, 0..40),
    ) {
        // (a ⊔ b) ⊔ c vs a ⊔ (b ⊔ c): equal within float tolerance.
        let mut left = tally_of(&a);
        left.merge(&tally_of(&b));
        left.merge(&tally_of(&c));
        let mut bc = tally_of(&b);
        bc.merge(&tally_of(&c));
        let mut right = tally_of(&a);
        right.merge(&bc);
        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.min(), right.min());
        prop_assert_eq!(left.max(), right.max());
        match (left.mean(), right.mean()) {
            (None, None) => {}
            (Some(l), Some(r)) => prop_assert!(rel_err(l, r) < 1e-12, "means {l} vs {r}"),
            other => prop_assert!(false, "count mismatch: {other:?}"),
        }
        if let (Some(l), Some(r)) = (left.variance(), right.variance()) {
            prop_assert!(rel_err(l, r) < 1e-9, "variances {l} vs {r}");
        }
    }

    #[test]
    fn empty_is_a_two_sided_identity(samples in proptest::collection::vec(-1e6f64..1e6, 0..60)) {
        let t = tally_of(&samples);
        let mut left = Tally::new();
        left.merge(&t);
        let mut right = t;
        right.merge(&Tally::new());
        // Bitwise: identity merges must not perturb a single bit.
        prop_assert_eq!(left, t);
        prop_assert_eq!(right, t);
    }
}
