//! Property tests pinning the event queue's FIFO tie-breaking — the
//! ordering contract every golden report rests on.
//!
//! The queue breaks same-timestamp ties with a monotone `u64` sequence
//! counter. A narrower (`u32`) counter would wrap after ~4.3 billion
//! events and silently reorder ties, so these tests replay the same
//! schedules with the counter started at and beyond `u32::MAX` (via the
//! `start_seq_at` test hook) and demand order-identical behaviour.

use proptest::prelude::*;

use qic_des::queue::EventQueue;
use qic_des::time::SimTime;
use qic_physics::time::Duration;

/// Seed values for the sequence counter: fresh, straddling the `u32`
/// boundary, and far beyond it.
const SEQ_STARTS: [u64; 4] = [0, u32::MAX as u64 - 2, u32::MAX as u64 + 1, 1 << 40];

/// Reference model: a stable sort by timestamp. Stability is exactly
/// the FIFO-tie contract.
fn reference_order(times: &[u64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..times.len()).collect();
    idx.sort_by_key(|&i| times[i]);
    idx
}

proptest! {
    /// Bulk schedule, then drain: pops must match a stable sort by
    /// timestamp, for every sequence-counter start.
    #[test]
    fn fifo_ties_hold_at_and_beyond_u32_seq(
        times in proptest::collection::vec(0u64..50, 1..300),
    ) {
        let expected = reference_order(&times);
        for start in SEQ_STARTS {
            let mut q = EventQueue::new();
            q.start_seq_at(start);
            for (i, &t) in times.iter().enumerate() {
                q.schedule_at(SimTime::from_nanos(t), i);
            }
            let popped: Vec<usize> =
                std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            prop_assert_eq!(&popped, &expected, "seq start {}", start);
        }
    }

    /// Interleaved schedule/pop against an executable model: after each
    /// round of relative schedules, pop a few events. The model pops the
    /// pending event with the smallest `(timestamp, arrival index)` —
    /// the definition of FIFO tie-breaking — and the queue must agree
    /// event for event, regardless of where the counter started.
    #[test]
    fn interleaved_ops_match_model_across_u32_boundary(
        rounds in proptest::collection::vec(
            (proptest::collection::vec(0u64..40, 0..8), 0usize..4),
            1..40,
        ),
    ) {
        for start in SEQ_STARTS {
            let mut q = EventQueue::new();
            q.start_seq_at(start);
            // Model state: (absolute time, arrival index) per pending event.
            let mut pending: Vec<(u64, usize)> = Vec::new();
            let mut arrivals = 0usize;
            let mut now = 0u64;
            fn drain(
                q: &mut EventQueue<usize>,
                pending: &mut Vec<(u64, usize)>,
                now: &mut u64,
                count: usize,
            ) {
                for _ in 0..count {
                    let model = pending
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &(at, arrival))| (at, arrival))
                        .map(|(slot, _)| slot);
                    match (model, q.pop()) {
                        (Some(slot), Some((t, id))) => {
                            let (at, arrival) = pending.remove(slot);
                            assert_eq!(t.as_nanos(), at);
                            assert_eq!(id, arrival);
                            *now = at;
                        }
                        (None, None) => break,
                        (model, real) => panic!("model {model:?} vs queue {real:?}"),
                    }
                }
            }
            for (delays, pops) in &rounds {
                for &dt in delays {
                    q.schedule_after(Duration::from_nanos(dt), arrivals);
                    pending.push((now + dt, arrivals));
                    arrivals += 1;
                }
                drain(&mut q, &mut pending, &mut now, *pops);
            }
            drain(&mut q, &mut pending, &mut now, usize::MAX);
            prop_assert!(q.is_empty());
            prop_assert_eq!(q.events_processed(), arrivals as u64);
        }
    }
}

/// The counter refuses to wrap: scheduling past `u64::MAX` sequence
/// numbers fails loudly instead of silently reordering ties.
#[test]
#[should_panic(expected = "event sequence counter wrapped")]
fn seq_exhaustion_panics_instead_of_wrapping() {
    let mut q = EventQueue::new();
    q.start_seq_at(u64::MAX);
    q.schedule_at(SimTime::from_nanos(1), 0); // takes seq u64::MAX
    q.schedule_at(SimTime::from_nanos(1), 1); // would wrap
}

/// `start_seq_at` is only a fresh-queue hook; used mid-run it could
/// break monotonicity, so it must refuse.
#[test]
#[should_panic(expected = "fresh queue")]
fn start_seq_at_rejects_used_queues() {
    let mut q = EventQueue::new();
    q.schedule_at(SimTime::from_nanos(1), 0);
    q.start_seq_at(7);
}
