//! Seeded randomness for simulations.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A deterministic random source for simulation runs.
///
/// All stochastic choices in a simulation (purification successes, tie
/// randomisation, workload shuffles) must flow through one `SimRng`, so a
/// run is a pure function of its seed.
///
/// # Example
///
/// ```
/// use qic_des::rng::SimRng;
///
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.f64(), b.f64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
    seed: u64,
    draws: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
            seed,
            draws: 0,
        }
    }

    /// The seed this generator was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of draws made so far (useful in failure reports).
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// A uniform sample in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.draws += 1;
        self.inner.random::<f64>()
    }

    /// Bernoulli trial: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
        self.f64() < p
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "range must be non-empty");
        self.draws += 1;
        self.inner.random_range(0..n)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Splits off an independent generator (seeded from this one), for
    /// subsystems that need their own stream.
    pub fn split(&mut self) -> SimRng {
        let seed = (self.f64().to_bits()) ^ self.seed.rotate_left(17);
        SimRng::seed_from(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::seed_from(42);
        let mut b = SimRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.f64().to_bits(), b.f64().to_bits());
        }
        assert_eq!(a.draws(), 100);
        assert_eq!(a.seed(), 42);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32)
            .filter(|_| a.f64().to_bits() == b.f64().to_bits())
            .count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::seed_from(7);
        for _ in 0..1000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(7);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn below_bounds() {
        let mut r = SimRng::seed_from(7);
        for _ in 0..100 {
            assert!(r.below(5) < 5);
        }
        assert_eq!(r.below(1), 0);
    }

    #[test]
    fn chance_frequency_is_plausible() {
        let mut r = SimRng::seed_from(123);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::seed_from(9);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..50).collect::<Vec<_>>(),
            "50 elements shuffle away from identity"
        );
    }

    #[test]
    fn split_streams_are_independent_but_deterministic() {
        let mut a1 = SimRng::seed_from(5);
        let mut a2 = SimRng::seed_from(5);
        let mut s1 = a1.split();
        let mut s2 = a2.split();
        assert_eq!(s1.f64().to_bits(), s2.f64().to_bits());
        // Parent and child streams differ.
        let mut p = SimRng::seed_from(5);
        let _ = p.f64();
        assert_ne!(
            p.f64().to_bits(),
            SimRng::seed_from(5).split().f64().to_bits()
        );
    }
}
