//! Deterministic discrete-event simulation engine.
//!
//! This is the Rust counterpart of the Java event-driven simulator the
//! paper built for Section 5. It is deliberately generic: the engine knows
//! nothing about qubits — `qic-net` supplies the event type and world
//! state.
//!
//! Design properties:
//!
//! * **Determinism** — ties in time are broken by insertion sequence
//!   (FIFO), and all randomness flows through a seedable [`rng::SimRng`],
//!   so a simulation is a pure function of its seed.
//! * **Exact time** — simulated time is integer nanoseconds
//!   ([`time::SimTime`], offset by the workspace-wide
//!   [`qic_physics::time::Duration`]); no floating-point drift can reorder
//!   events.
//! * **Measurements built in** — [`stats`] provides counters, tallies,
//!   time-weighted averages and log histograms used by the network
//!   simulator's reports.
//!
//! # Example
//!
//! ```
//! use qic_des::prelude::*;
//! use qic_physics::time::Duration;
//!
//! #[derive(Debug)]
//! enum Ev { Ping(u32) }
//!
//! let mut q = EventQueue::new();
//! q.schedule_after(Duration::from_micros(10), Ev::Ping(1));
//! q.schedule_after(Duration::from_micros(5), Ev::Ping(2));
//! let mut order = Vec::new();
//! while let Some((t, Ev::Ping(n))) = q.pop() {
//!     order.push((t.as_duration().as_us_f64(), n));
//! }
//! assert_eq!(order, vec![(5.0, 2), (10.0, 1)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

/// Convenient glob-import surface: `use qic_des::prelude::*;`.
pub mod prelude {
    pub use crate::metrics::Metrics;
    pub use crate::queue::EventQueue;
    pub use crate::rng::SimRng;
    pub use crate::stats::{Counter, LogHistogram, Percentiles, Tally, TimeWeighted, Utilization};
    pub use crate::time::SimTime;
}

pub use queue::EventQueue;
pub use rng::SimRng;
pub use time::SimTime;
