//! Measurement collectors for simulations.

use serde::{Deserialize, Serialize};

use qic_physics::time::Duration;

use crate::time::SimTime;

/// A monotone event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn bump(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn count(&self) -> u64 {
        self.0
    }
}

/// Running min/max/mean/count over `f64` samples (Welford-free: sums are
/// enough for the simulator's reporting needs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Tally {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Tally {
    /// An empty tally.
    pub fn new() -> Self {
        Tally {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records a sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Records a duration sample in microseconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_us_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

/// Time-weighted average of a piecewise-constant signal (e.g. queue
/// occupancy over simulated time).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeWeighted {
    value: f64,
    since: SimTime,
    integral: f64,
    start: SimTime,
}

impl TimeWeighted {
    /// Starts tracking a signal with initial `value` at time `start`.
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeighted {
            value,
            since: start,
            integral: 0.0,
            start,
        }
    }

    /// Updates the signal to `value` at time `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        self.integral += self.value * now.since(self.since).as_us_f64();
        self.value = value;
        self.since = now;
    }

    /// Adds `delta` to the signal at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// The current signal value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Time-weighted mean over `[start, now]`.
    pub fn mean(&self, now: SimTime) -> f64 {
        let total = now.since(self.start).as_us_f64();
        if total == 0.0 {
            return self.value;
        }
        let integral = self.integral + self.value * now.since(self.since).as_us_f64();
        integral / total
    }
}

/// Busy-fraction tracker for a pool of `capacity` servers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Utilization {
    busy: TimeWeighted,
    capacity: f64,
}

impl Utilization {
    /// Tracks a pool of `capacity` servers, all idle at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(start: SimTime, capacity: u32) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Utilization {
            busy: TimeWeighted::new(start, 0.0),
            capacity: f64::from(capacity),
        }
    }

    /// Marks one more server busy.
    pub fn acquire(&mut self, now: SimTime) {
        self.busy.add(now, 1.0);
        debug_assert!(self.busy.value() <= self.capacity + 1e-9, "over-acquired");
    }

    /// Marks one server idle again.
    pub fn release(&mut self, now: SimTime) {
        self.busy.add(now, -1.0);
        debug_assert!(self.busy.value() >= -1e-9, "released more than acquired");
    }

    /// Mean utilization in `[0, 1]` over the run so far.
    pub fn mean(&self, now: SimTime) -> f64 {
        self.busy.mean(now) / self.capacity
    }

    /// Servers currently busy.
    pub fn busy_now(&self) -> f64 {
        self.busy.value()
    }
}

/// A base-2 logarithmic histogram of positive values (latencies, counts).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// `buckets[i]` counts samples in `[2^i, 2^(i+1))` (bucket 0 also takes
    /// everything below 1).
    buckets: Vec<u64>,
    count: u64,
}

impl LogHistogram {
    /// A histogram with `2^n`-width buckets up to `2^max_exp`.
    pub fn new(max_exp: u32) -> Self {
        LogHistogram {
            buckets: vec![0; max_exp as usize + 1],
            count: 0,
        }
    }

    /// Records a sample (values < 1 land in bucket 0; overflow lands in the
    /// last bucket).
    pub fn record(&mut self, x: f64) {
        let idx = if x < 2.0 {
            0
        } else {
            (x.log2() as usize).min(self.buckets.len() - 1)
        };
        self.buckets[idx] += 1;
        self.count += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Bucket counts (`[2^i, 2^(i+1))`).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// An approximate quantile (bucket upper edge), `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            acc += b;
            if acc >= target.max(1) {
                return Some(2f64.powi(i as i32 + 1));
            }
        }
        Some(2f64.powi(self.buckets.len() as i32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.bump();
        c.add(4);
        assert_eq!(c.count(), 5);
    }

    #[test]
    fn tally_stats() {
        let mut t = Tally::new();
        assert_eq!(t.mean(), None);
        for x in [2.0, 4.0, 6.0] {
            t.record(x);
        }
        assert_eq!(t.mean(), Some(4.0));
        assert_eq!(t.min(), Some(2.0));
        assert_eq!(t.max(), Some(6.0));
        assert_eq!(t.count(), 3);
        assert_eq!(t.sum(), 12.0);
        t.record_duration(Duration::from_micros(8));
        assert_eq!(t.max(), Some(8.0));
    }

    #[test]
    fn time_weighted_mean() {
        let mut w = TimeWeighted::new(SimTime::ZERO, 0.0);
        // 0 for 10µs, then 2 for 10µs → mean 1.
        w.set(SimTime::from_nanos(10_000), 2.0);
        let mean = w.mean(SimTime::from_nanos(20_000));
        assert!((mean - 1.0).abs() < 1e-12);
        assert_eq!(w.value(), 2.0);
    }

    #[test]
    fn time_weighted_empty_interval() {
        let w = TimeWeighted::new(SimTime::ZERO, 3.0);
        assert_eq!(w.mean(SimTime::ZERO), 3.0);
    }

    #[test]
    fn utilization_half_busy() {
        let mut u = Utilization::new(SimTime::ZERO, 2);
        u.acquire(SimTime::ZERO);
        // One of two servers busy the whole time → 50%.
        let m = u.mean(SimTime::from_nanos(1_000));
        assert!((m - 0.5).abs() < 1e-12);
        u.release(SimTime::from_nanos(1_000));
        assert_eq!(u.busy_now(), 0.0);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = LogHistogram::new(10);
        for x in [0.5, 1.0, 3.0, 5.0, 100.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.buckets()[0], 2); // 0.5 and 1.0
        assert_eq!(h.buckets()[1], 1); // 3.0
        assert_eq!(h.buckets()[2], 1); // 5.0
        assert_eq!(h.buckets()[6], 1); // 100.0
        assert!(h.quantile(0.5).unwrap() <= 8.0);
        assert!(h.quantile(1.0).unwrap() >= 128.0);
        assert_eq!(LogHistogram::new(3).quantile(0.5), None);
    }

    #[test]
    fn histogram_overflow_clamps() {
        let mut h = LogHistogram::new(3);
        h.record(1e30);
        assert_eq!(*h.buckets().last().unwrap(), 1);
    }
}
