//! Measurement collectors for simulations.

use serde::{Deserialize, Serialize};

use qic_physics::time::Duration;

use crate::time::SimTime;

/// A monotone event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn bump(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn count(&self) -> u64 {
        self.0
    }
}

/// Running min/max/mean/variance/count over `f64` samples.
///
/// Variance uses Welford's online algorithm (a running mean and a
/// centred second moment), which stays accurate for large-magnitude
/// samples with small spread — e.g. microsecond jitter on a `1e8` µs
/// makespan — where a naive sum-of-squares accumulator would cancel
/// catastrophically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tally {
    count: u64,
    sum: f64,
    /// Running (Welford) mean.
    mean: f64,
    /// Sum of squared deviations from the running mean.
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Tally {
    /// Same as [`Tally::new`] (the min/max accumulators start at
    /// `±∞`, not zero).
    fn default() -> Self {
        Tally::new()
    }
}

impl Tally {
    /// An empty tally.
    pub fn new() -> Self {
        Tally {
            count: 0,
            sum: 0.0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records a sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Records a duration sample in microseconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_us_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples (`None` when empty). Uses the running
    /// (Welford) mean, which shares its conditioning with
    /// [`Tally::variance`].
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Unbiased sample variance (`n-1` denominator); `None` with fewer
    /// than two samples.
    pub fn variance(&self) -> Option<f64> {
        if self.count < 2 {
            return None;
        }
        // Welford's m2 is non-negative by construction.
        Some(self.m2 / (self.count as f64 - 1.0))
    }

    /// Sample standard deviation; `None` with fewer than two samples.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Standard error of the mean; `None` with fewer than two samples.
    pub fn std_err(&self) -> Option<f64> {
        self.std_dev().map(|s| s / (self.count as f64).sqrt())
    }

    /// Half-width of the 95% confidence interval on the mean (normal
    /// approximation, `1.96·SE`); `None` with fewer than two samples.
    pub fn ci95_half_width(&self) -> Option<f64> {
        self.std_err().map(|se| 1.96 * se)
    }

    /// Folds another tally into this one (Chan's parallel Welford
    /// merge), as if this tally had also recorded every sample `other`
    /// recorded.
    ///
    /// Count, sum, min and max combine exactly. Mean and variance
    /// combine by the pairwise update
    /// `m2 = m2_a + m2_b + δ²·n_a·n_b/n`, which matches a sequential
    /// fold of the same samples to floating-point rounding (tests pin
    /// `1e-12` relative agreement) but **not necessarily bit-for-bit**
    /// — paths that promise byte-identical reports must fold samples
    /// in a fixed order instead of merging partial tallies.
    ///
    /// Merging an empty tally (either side) is an exact identity:
    /// `a.merge(empty)` leaves `a` bitwise untouched, and
    /// `empty.merge(b)` makes `empty` a bitwise copy of `b`.
    pub fn merge(&mut self, other: &Tally) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let count = self.count + other.count;
        let delta = other.mean - self.mean;
        let n_a = self.count as f64;
        let n_b = other.count as f64;
        let n = count as f64;
        self.mean += delta * (n_b / n);
        self.m2 += other.m2 + delta * delta * (n_a * n_b / n);
        self.count = count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact p50/p95/p99 estimates over a recorded sample set.
///
/// Percentiles use the **nearest-rank** definition: the `q`-th
/// percentile of `n` sorted samples is the sample at rank
/// `⌈q·n⌉` (1-based), so every reported value is an actual sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Percentiles {
    /// Computes p50/p95/p99 of `samples` (order irrelevant); `None`
    /// when empty.
    ///
    /// Nearest-rank (see the type docs): with one sample all three
    /// percentiles are that sample; with two, `p50` is the smaller
    /// (rank `⌈0.5·2⌉ = 1`) and `p95`/`p99` the larger. Those two cases
    /// take an allocation-free fast path — single-communication runs
    /// hit this on the simulator's report path.
    pub fn from_samples(samples: &[f64]) -> Option<Percentiles> {
        match samples {
            [] => None,
            [x] => Some(Percentiles {
                p50: *x,
                p95: *x,
                p99: *x,
            }),
            [a, b] => {
                let (lo, hi) = if a.total_cmp(b).is_le() {
                    (*a, *b)
                } else {
                    (*b, *a)
                };
                Some(Percentiles {
                    p50: lo,
                    p95: hi,
                    p99: hi,
                })
            }
            _ => {
                let mut sorted = samples.to_vec();
                sorted.sort_by(f64::total_cmp);
                Some(Percentiles {
                    p50: percentile_of_sorted(&sorted, 0.50).expect("non-empty"),
                    p95: percentile_of_sorted(&sorted, 0.95).expect("non-empty"),
                    p99: percentile_of_sorted(&sorted, 0.99).expect("non-empty"),
                })
            }
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted slice; `None` when
/// empty. `q` is clamped to `[0, 1]`.
pub fn percentile_of_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.max(1) - 1])
}

/// Time-weighted average of a piecewise-constant signal (e.g. queue
/// occupancy over simulated time).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeWeighted {
    value: f64,
    since: SimTime,
    integral: f64,
    start: SimTime,
}

impl TimeWeighted {
    /// Starts tracking a signal with initial `value` at time `start`.
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeighted {
            value,
            since: start,
            integral: 0.0,
            start,
        }
    }

    /// Updates the signal to `value` at time `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        self.integral += self.value * now.since(self.since).as_us_f64();
        self.value = value;
        self.since = now;
    }

    /// Adds `delta` to the signal at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// The current signal value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Time-weighted mean over `[start, now]`.
    pub fn mean(&self, now: SimTime) -> f64 {
        let total = now.since(self.start).as_us_f64();
        if total == 0.0 {
            return self.value;
        }
        let integral = self.integral + self.value * now.since(self.since).as_us_f64();
        integral / total
    }
}

/// Busy-fraction tracker for a pool of `capacity` servers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Utilization {
    busy: TimeWeighted,
    capacity: f64,
}

impl Utilization {
    /// Tracks a pool of `capacity` servers, all idle at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(start: SimTime, capacity: u32) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Utilization {
            busy: TimeWeighted::new(start, 0.0),
            capacity: f64::from(capacity),
        }
    }

    /// Marks one more server busy.
    pub fn acquire(&mut self, now: SimTime) {
        self.busy.add(now, 1.0);
        debug_assert!(self.busy.value() <= self.capacity + 1e-9, "over-acquired");
    }

    /// Marks one server idle again.
    pub fn release(&mut self, now: SimTime) {
        self.busy.add(now, -1.0);
        debug_assert!(self.busy.value() >= -1e-9, "released more than acquired");
    }

    /// Mean utilization in `[0, 1]` over the run so far.
    pub fn mean(&self, now: SimTime) -> f64 {
        self.busy.mean(now) / self.capacity
    }

    /// Servers currently busy.
    pub fn busy_now(&self) -> f64 {
        self.busy.value()
    }
}

/// A base-2 logarithmic histogram of positive values (latencies, counts).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// `buckets[i]` counts samples in `[2^i, 2^(i+1))` (bucket 0 also takes
    /// everything below 1).
    buckets: Vec<u64>,
    count: u64,
}

impl LogHistogram {
    /// A histogram with `2^n`-width buckets up to `2^max_exp`.
    pub fn new(max_exp: u32) -> Self {
        LogHistogram {
            buckets: vec![0; max_exp as usize + 1],
            count: 0,
        }
    }

    /// Records a sample (values < 1 land in bucket 0; overflow lands in the
    /// last bucket).
    pub fn record(&mut self, x: f64) {
        let idx = if x < 2.0 {
            0
        } else {
            (x.log2() as usize).min(self.buckets.len() - 1)
        };
        self.buckets[idx] += 1;
        self.count += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Bucket counts (`[2^i, 2^(i+1))`).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// An approximate quantile (bucket upper edge), `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            acc += b;
            if acc >= target.max(1) {
                return Some(2f64.powi(i as i32 + 1));
            }
        }
        Some(2f64.powi(self.buckets.len() as i32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.bump();
        c.add(4);
        assert_eq!(c.count(), 5);
    }

    #[test]
    fn tally_stats() {
        let mut t = Tally::new();
        assert_eq!(t.mean(), None);
        for x in [2.0, 4.0, 6.0] {
            t.record(x);
        }
        assert_eq!(t.mean(), Some(4.0));
        assert_eq!(t.min(), Some(2.0));
        assert_eq!(t.max(), Some(6.0));
        assert_eq!(t.count(), 3);
        assert_eq!(t.sum(), 12.0);
        t.record_duration(Duration::from_micros(8));
        assert_eq!(t.max(), Some(8.0));
    }

    #[test]
    fn tally_variance_and_ci() {
        let mut t = Tally::new();
        assert_eq!(t.variance(), None);
        t.record(4.0);
        assert_eq!(t.variance(), None, "one sample has no variance");
        for x in [6.0, 8.0] {
            t.record(x);
        }
        // Samples 4, 6, 8: mean 6, sample variance 4, std dev 2.
        assert!((t.variance().unwrap() - 4.0).abs() < 1e-9);
        assert!((t.std_dev().unwrap() - 2.0).abs() < 1e-9);
        let se = 2.0 / 3f64.sqrt();
        assert!((t.std_err().unwrap() - se).abs() < 1e-9);
        assert!((t.ci95_half_width().unwrap() - 1.96 * se).abs() < 1e-9);
    }

    #[test]
    fn tally_zero_variance_for_constant_samples() {
        let mut t = Tally::new();
        for _ in 0..5 {
            t.record(0.1);
        }
        assert!(t.variance().unwrap() >= 0.0);
        assert!(t.variance().unwrap() < 1e-12);
    }

    #[test]
    fn tally_default_matches_new() {
        let mut t = Tally::default();
        t.record(5.0);
        assert_eq!(t.min(), Some(5.0), "no phantom 0 minimum");
        let mut neg = Tally::default();
        neg.record(-3.0);
        assert_eq!(neg.max(), Some(-3.0));
    }

    #[test]
    fn tally_variance_survives_large_offsets() {
        // Welford regression test: µs-scale jitter on a 1e8 µs base.
        // A naive sum-of-squares accumulator cancels to garbage here.
        let mut t = Tally::new();
        for x in [1e8, 1e8 + 1.0, 1e8 + 2.0] {
            t.record(x);
        }
        assert!((t.variance().unwrap() - 1.0).abs() < 1e-6);
        assert!((t.mean().unwrap() - (1e8 + 1.0)).abs() < 1e-6);
    }

    #[test]
    fn tally_merge_of_splits_matches_whole() {
        let samples: Vec<f64> = (0..40).map(|i| 1e8 + (i as f64) * 0.25).collect();
        let mut whole = Tally::new();
        for &x in &samples {
            whole.record(x);
        }
        for split in [1, 7, 20, 39] {
            let (left, right) = samples.split_at(split);
            let mut a = Tally::new();
            let mut b = Tally::new();
            left.iter().for_each(|&x| a.record(x));
            right.iter().for_each(|&x| b.record(x));
            a.merge(&b);
            assert_eq!(a.count(), whole.count());
            assert_eq!(a.min(), whole.min());
            assert_eq!(a.max(), whole.max());
            let rel = |got: f64, want: f64| ((got - want) / want).abs();
            assert!(rel(a.mean().unwrap(), whole.mean().unwrap()) < 1e-12);
            assert!(
                rel(a.variance().unwrap(), whole.variance().unwrap()) < 1e-12,
                "split at {split}: {} vs {}",
                a.variance().unwrap(),
                whole.variance().unwrap()
            );
        }
    }

    #[test]
    fn tally_merge_empty_is_bitwise_identity() {
        let mut a = Tally::new();
        a.record(3.0);
        a.record(-1.5);
        let before = a;
        a.merge(&Tally::new());
        assert_eq!(a, before, "merging an empty tally must be a no-op");
        let mut empty = Tally::new();
        empty.merge(&before);
        assert_eq!(empty, before, "empty.merge(b) must copy b exactly");
        let mut both = Tally::new();
        both.merge(&Tally::new());
        assert_eq!(both, Tally::new());
        assert_eq!(both.mean(), None);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let p = Percentiles::from_samples(&samples).unwrap();
        assert_eq!(p.p50, 50.0);
        assert_eq!(p.p95, 95.0);
        assert_eq!(p.p99, 99.0);
        // Order must not matter.
        let mut reversed = samples.clone();
        reversed.reverse();
        assert_eq!(Percentiles::from_samples(&reversed), Some(p));
    }

    #[test]
    fn percentiles_small_sets() {
        assert_eq!(Percentiles::from_samples(&[]), None);
        let one = Percentiles::from_samples(&[7.5]).unwrap();
        assert_eq!((one.p50, one.p95, one.p99), (7.5, 7.5, 7.5));
        let two = Percentiles::from_samples(&[10.0, 20.0]).unwrap();
        assert_eq!(two.p50, 10.0, "nearest rank: ceil(0.5*2)=1st sample");
        assert_eq!(two.p99, 20.0);
        // The two-sample fast path must order its inputs itself.
        assert_eq!(Percentiles::from_samples(&[20.0, 10.0]), Some(two));
    }

    #[test]
    fn percentiles_duplicate_heavy_sets() {
        // All-identical samples: every percentile is that value.
        let flat = Percentiles::from_samples(&[3.0; 64]).unwrap();
        assert_eq!((flat.p50, flat.p95, flat.p99), (3.0, 3.0, 3.0));
        // 99 copies of 1.0 and a single outlier: nearest rank keeps
        // p50/p95 on the duplicates and p99 lands exactly on rank 99 —
        // still a duplicate, never an interpolated value.
        let mut samples = vec![1.0; 99];
        samples.push(1000.0);
        let p = Percentiles::from_samples(&samples).unwrap();
        assert_eq!((p.p50, p.p95, p.p99), (1.0, 1.0, 1.0));
        // Two duplicate blocks: the p95/p99 ranks (ceil(.95·10)=10,
        // ceil(.99·10)=10) fall in the upper block, p50 (rank 5) in the
        // lower.
        let blocks = [2.0, 2.0, 2.0, 2.0, 2.0, 9.0, 9.0, 9.0, 9.0, 9.0];
        let p = Percentiles::from_samples(&blocks).unwrap();
        assert_eq!((p.p50, p.p95, p.p99), (2.0, 9.0, 9.0));
    }

    #[test]
    fn percentile_of_sorted_edges() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_of_sorted(&sorted, 0.0), Some(1.0));
        assert_eq!(percentile_of_sorted(&sorted, 1.0), Some(4.0));
        assert_eq!(percentile_of_sorted(&sorted, 0.5), Some(2.0));
        assert_eq!(percentile_of_sorted(&[], 0.5), None);
    }

    #[test]
    fn time_weighted_mean() {
        let mut w = TimeWeighted::new(SimTime::ZERO, 0.0);
        // 0 for 10µs, then 2 for 10µs → mean 1.
        w.set(SimTime::from_nanos(10_000), 2.0);
        let mean = w.mean(SimTime::from_nanos(20_000));
        assert!((mean - 1.0).abs() < 1e-12);
        assert_eq!(w.value(), 2.0);
    }

    #[test]
    fn time_weighted_empty_interval() {
        let w = TimeWeighted::new(SimTime::ZERO, 3.0);
        assert_eq!(w.mean(SimTime::ZERO), 3.0);
    }

    #[test]
    fn utilization_half_busy() {
        let mut u = Utilization::new(SimTime::ZERO, 2);
        u.acquire(SimTime::ZERO);
        // One of two servers busy the whole time → 50%.
        let m = u.mean(SimTime::from_nanos(1_000));
        assert!((m - 0.5).abs() < 1e-12);
        u.release(SimTime::from_nanos(1_000));
        assert_eq!(u.busy_now(), 0.0);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = LogHistogram::new(10);
        for x in [0.5, 1.0, 3.0, 5.0, 100.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.buckets()[0], 2); // 0.5 and 1.0
        assert_eq!(h.buckets()[1], 1); // 3.0
        assert_eq!(h.buckets()[2], 1); // 5.0
        assert_eq!(h.buckets()[6], 1); // 100.0
        assert!(h.quantile(0.5).unwrap() <= 8.0);
        assert!(h.quantile(1.0).unwrap() >= 128.0);
        assert_eq!(LogHistogram::new(3).quantile(0.5), None);
    }

    #[test]
    fn histogram_overflow_clamps() {
        let mut h = LogHistogram::new(3);
        h.record(1e30);
        assert_eq!(*h.buckets().last().unwrap(), 1);
    }
}
