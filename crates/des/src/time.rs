//! Absolute simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

use qic_physics::time::Duration;

/// An absolute instant on the simulation clock (nanoseconds since start).
///
/// `SimTime` and [`Duration`] form an affine pair: instants differ by
/// durations, durations add to instants, and instants cannot be added to
/// each other.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant ("never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant as an offset from simulation start.
    pub const fn as_duration(self) -> Duration {
        Duration::from_nanos(self.0)
    }

    /// Saturating advance by a duration.
    #[inline]
    pub fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(d.as_nanos()))
    }

    /// Time elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0 - earlier.0)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    #[inline]
    fn add(self, d: Duration) -> SimTime {
        SimTime(self.0 + d.as_nanos())
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.as_nanos();
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    #[inline]
    fn sub(self, rhs: SimTime) -> Duration {
        Duration::from_nanos(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.as_duration())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + Duration::from_micros(5);
        assert_eq!(t1.as_nanos(), 5_000);
        assert_eq!(t1 - t0, Duration::from_micros(5));
        assert_eq!(t1.since(t0), Duration::from_micros(5));
        let mut t = t1;
        t += Duration::from_micros(5);
        assert_eq!(t.as_duration(), Duration::from_micros(10));
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimTime::MAX > SimTime::from_nanos(u64::MAX - 1));
    }

    #[test]
    fn saturating() {
        let t = SimTime::MAX.saturating_add(Duration::from_micros(1));
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_nanos(5_000).to_string(), "t=5.000µs");
    }
}
