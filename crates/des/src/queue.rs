//! The event queue: a time-ordered heap with FIFO tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use qic_physics::time::Duration;

use crate::time::SimTime;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

// Order entries so the *earliest* (and, within a time, the first-scheduled)
// pops first from a max-heap.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: smaller (at, seq) = greater priority.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic future-event list.
///
/// Events scheduled for the same instant pop in the order they were
/// scheduled, which makes simulations reproducible regardless of heap
/// internals.
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// The current simulation time: the timestamp of the last popped event
    /// (time zero initially).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events popped so far (a progress measure for run loops).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before [`EventQueue::now`]); a
    /// simulation that schedules into the past is broken, and failing fast
    /// beats silently reordering history.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedules `event` at `now + delay`.
    pub fn schedule_after(&mut self, delay: Duration, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Schedules `event` at the current instant (after all events already
    /// scheduled for this instant).
    pub fn schedule_now(&mut self, event: E) {
        self.schedule_at(self.now, event);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.at;
        self.popped += 1;
        Some((entry.at, entry.event))
    }

    /// The timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Discards all pending events (the clock is left where it is).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("processed", &self.popped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_after(Duration::from_micros(30), "c");
        q.schedule_after(Duration::from_micros(10), "a");
        q.schedule_after(Duration::from_micros(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(SimTime::from_nanos(42), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule_after(Duration::from_micros(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7_000)));
        let (t, ()) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_nanos(7_000));
        assert_eq!(q.now(), t);
        assert_eq!(q.events_processed(), 1);
    }

    #[test]
    fn schedule_now_runs_after_peers_at_same_instant() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(5), 1);
        q.schedule_at(SimTime::from_nanos(5), 2);
        let (_, first) = q.pop().unwrap();
        assert_eq!(first, 1);
        q.schedule_now(3); // lands at t=5 too, but after 2
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, [2, 3]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(100), ());
        let _ = q.pop();
        q.schedule_at(SimTime::from_nanos(50), ());
    }

    #[test]
    fn clear_keeps_clock() {
        let mut q = EventQueue::new();
        q.schedule_after(Duration::from_micros(1), 1);
        let _ = q.pop();
        q.schedule_after(Duration::from_micros(1), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_nanos(1_000));
    }

    #[test]
    fn debug_is_informative() {
        let q: EventQueue<()> = EventQueue::new();
        let s = format!("{q:?}");
        assert!(s.contains("pending"));
    }
}
