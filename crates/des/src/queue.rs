//! The event queue: a time-ordered heap with FIFO tie-breaking.
//!
//! Internally this is an index-addressed 4-ary min-heap over a slab
//! arena: the heap orders packed `(at, seq)` keys (one `u128` compare)
//! in an array kept separate from the arena slot indices, so a sift's
//! child scan reads a single cache line of four keys; the events
//! themselves sit still in an arena `Vec` and are moved exactly twice
//! (in on schedule, out on pop). Events scheduled for the instant the
//! clock already shows bypass the heap and the arena entirely through a
//! FIFO "now-lane", which makes the self-scheduling cascades a
//! simulation step produces O(1) instead of O(log n).
//!
//! The FIFO tie-break rests on a strictly monotone `u64` sequence
//! counter. It is incremented once per scheduled event and never
//! reused, so it cannot collide, and at one event per nanosecond it
//! would take ~585 years of wall-clock scheduling to wrap — the
//! property test in `tests/queue_prop.rs` pins the ordering, including
//! from seeds above `u32::MAX`.

use std::collections::VecDeque;

use qic_physics::time::Duration;

use crate::time::SimTime;

/// Heap order key: `(at << 64) | seq`, so strict `(at, seq)` order is
/// one native 128-bit comparison.
type Ord128 = u128;

/// The tail of the intrusive free list (and the "no entry" sentinel).
const FREE_END: u32 = u32::MAX;

/// An arena slot: a live event, or a link in the free list.
enum Slot<E> {
    Full(E),
    Free(u32),
}

/// A deterministic future-event list.
///
/// Events scheduled for the same instant pop in the order they were
/// scheduled, which makes simulations reproducible regardless of heap
/// internals.
pub struct EventQueue<E> {
    /// 4-ary min-heap order keys; kept apart from the slots so a sift's
    /// child scan reads one 64-byte line of four keys and touches the
    /// slot array only on an actual move.
    heap_ord: Vec<Ord128>,
    /// Arena slot of each heap entry, parallel to `heap_ord`.
    heap_slot: Vec<u32>,
    /// Event arena: heap/lane entries hold indices into this slab; free
    /// slots chain through [`Slot::Free`] starting at `free_head`.
    slots: Vec<Slot<E>>,
    free_head: u32,
    /// Events scheduled for exactly `now`, in FIFO order. Every entry
    /// here was scheduled *after* the clock reached `now`, so it comes
    /// after any heap entry at `now` in `(at, seq)` order — the heap
    /// drains first at each instant, then the lane, preserving global
    /// FIFO order without heap (or arena) traffic.
    lane: VecDeque<E>,
    seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue::with_capacity(0)
    }

    /// An empty queue at time zero with room for `capacity` pending
    /// events before the heap or arena reallocates.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap_ord: Vec::with_capacity(capacity),
            heap_slot: Vec::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free_head: FREE_END,
            lane: VecDeque::new(),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// The current simulation time: the timestamp of the last popped event
    /// (time zero initially).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap_ord.len() + self.lane.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap_ord.is_empty() && self.lane.is_empty()
    }

    /// Total events popped so far (a progress measure for run loops).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Stores an event in the arena and returns its slot.
    #[inline]
    fn alloc(&mut self, event: E) -> u32 {
        let slot = self.free_head;
        if slot == FREE_END {
            let slot =
                u32::try_from(self.slots.len()).expect("event arena exceeds u32::MAX live events");
            assert!(slot != FREE_END, "event arena exceeds u32::MAX live events");
            self.slots.push(Slot::Full(event));
            slot
        } else {
            let cell = &mut self.slots[slot as usize];
            match std::mem::replace(cell, Slot::Full(event)) {
                Slot::Free(next) => self.free_head = next,
                Slot::Full(_) => unreachable!("free list points at a live slot"),
            }
            slot
        }
    }

    /// Removes an event from the arena, recycling its slot.
    #[inline]
    fn take(&mut self, slot: u32) -> E {
        let cell = &mut self.slots[slot as usize];
        match std::mem::replace(cell, Slot::Free(self.free_head)) {
            Slot::Full(event) => {
                self.free_head = slot;
                event
            }
            Slot::Free(_) => unreachable!("popped slot holds an event"),
        }
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before [`EventQueue::now`]); a
    /// simulation that schedules into the past is broken, and failing fast
    /// beats silently reordering history.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        if at == self.now {
            // Same-instant fast lane: FIFO by construction, and every
            // earlier-scheduled event at this instant lives in the heap
            // with a smaller sequence number, so draining heap-then-lane
            // preserves exact schedule order with no heap or arena
            // traffic at all.
            self.lane.push_back(event);
        } else {
            let seq = self.seq;
            self.seq = seq.checked_add(1).expect("event sequence counter wrapped");
            let slot = self.alloc(event);
            self.heap_push((u128::from(at.as_nanos()) << 64) | u128::from(seq), slot);
        }
    }

    /// Schedules `event` at `now + delay`.
    pub fn schedule_after(&mut self, delay: Duration, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Schedules `event` at the current instant (after all events already
    /// scheduled for this instant).
    pub fn schedule_now(&mut self, event: E) {
        self.schedule_at(self.now, event);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        // Heap entries at `now` predate everything in the lane; lane
        // entries precede any strictly later heap entry.
        let event = match self.heap_ord.first() {
            Some(&top) if self.lane.is_empty() || (top >> 64) as u64 == self.now.as_nanos() => {
                self.now = SimTime::from_nanos((top >> 64) as u64);
                let slot = self.heap_pop_top();
                self.take(slot)
            }
            _ => self.lane.pop_front()?,
        };
        self.popped += 1;
        Some((self.now, event))
    }

    /// Pops **every** event scheduled for the earliest pending instant
    /// into `out` (cleared first), in exact [`EventQueue::pop`] order,
    /// advancing the clock; returns that instant.
    ///
    /// Batching amortizes heap traffic across a whole simulation step;
    /// events the caller schedules *while handling* the batch land at or
    /// after the returned instant and are picked up by later calls, so
    /// the interleaving matches a pop-one-at-a-time loop exactly.
    pub fn pop_batch(&mut self, out: &mut Vec<E>) -> Option<SimTime> {
        out.clear();
        let (at, first) = self.pop()?;
        out.push(first);
        let at_ns = at.as_nanos();
        loop {
            // Same-instant peers: heap first (smaller seqs), then lane.
            let event = match self.heap_ord.first() {
                Some(&top) if (top >> 64) as u64 == at_ns => {
                    let slot = self.heap_pop_top();
                    self.take(slot)
                }
                _ => match self.lane.pop_front() {
                    Some(event) => event,
                    None => break,
                },
            };
            self.popped += 1;
            out.push(event);
        }
        Some(at)
    }

    /// The timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.lane.is_empty() {
            self.heap_ord
                .first()
                .map(|&ord| SimTime::from_nanos((ord >> 64) as u64))
        } else {
            Some(self.now)
        }
    }

    /// Discards all pending events (the clock is left where it is).
    pub fn clear(&mut self) {
        self.heap_ord.clear();
        self.heap_slot.clear();
        self.lane.clear();
        self.slots.clear();
        self.free_head = FREE_END;
    }

    /// Starts the sequence counter at `seq` — a test hook for exercising
    /// FIFO ordering near and beyond `u32::MAX` without scheduling four
    /// billion events first.
    ///
    /// # Panics
    ///
    /// Panics if events were already scheduled (the counter must stay
    /// strictly monotone).
    #[doc(hidden)]
    pub fn start_seq_at(&mut self, seq: u64) {
        assert!(
            self.seq == 0 && self.is_empty(),
            "start_seq_at is only valid on a fresh queue"
        );
        self.seq = seq;
    }

    /// Pushes an order key + slot onto the 4-ary heap. Hole-based sift:
    /// parents slide down into the hole and the entry is written exactly
    /// once, halving the memory traffic of a swap-per-level sift.
    #[inline]
    fn heap_push(&mut self, ord: Ord128, slot: u32) {
        let mut i = self.heap_ord.len();
        self.heap_ord.push(ord);
        self.heap_slot.push(slot);
        while i > 0 {
            let parent = (i - 1) / 4;
            let p = self.heap_ord[parent];
            if ord < p {
                self.heap_ord[i] = p;
                self.heap_slot[i] = self.heap_slot[parent];
                i = parent;
            } else {
                break;
            }
        }
        self.heap_ord[i] = ord;
        self.heap_slot[i] = slot;
    }

    /// Removes and returns the slot of the minimum heap key.
    #[inline]
    fn heap_pop_top(&mut self) -> u32 {
        let top = self.heap_slot[0];
        let last_ord = self.heap_ord.pop().expect("heap is non-empty");
        let last_slot = self.heap_slot.pop().expect("heap is non-empty");
        if !self.heap_ord.is_empty() {
            self.sift_down(0, last_ord, last_slot);
        }
        top
    }

    /// Sifts an entry down from the hole at `i`, writing it exactly
    /// once. The child scan touches only the contiguous order keys (all
    /// four fit in one 64-byte line); the slot array is read on moves.
    fn sift_down(&mut self, mut i: usize, ord: Ord128, slot: u32) {
        let len = self.heap_ord.len();
        loop {
            let first_child = 4 * i + 1;
            if first_child >= len {
                break;
            }
            let mut min = first_child;
            let mut min_ord = self.heap_ord[first_child];
            let end = (first_child + 4).min(len);
            for c in first_child + 1..end {
                let k = self.heap_ord[c];
                if k < min_ord {
                    min = c;
                    min_ord = k;
                }
            }
            if min_ord < ord {
                self.heap_ord[i] = min_ord;
                self.heap_slot[i] = self.heap_slot[min];
                i = min;
            } else {
                break;
            }
        }
        self.heap_ord[i] = ord;
        self.heap_slot[i] = slot;
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.len())
            .field("processed", &self.popped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_after(Duration::from_micros(30), "c");
        q.schedule_after(Duration::from_micros(10), "a");
        q.schedule_after(Duration::from_micros(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(SimTime::from_nanos(42), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule_after(Duration::from_micros(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7_000)));
        let (t, ()) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_nanos(7_000));
        assert_eq!(q.now(), t);
        assert_eq!(q.events_processed(), 1);
    }

    #[test]
    fn schedule_now_runs_after_peers_at_same_instant() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(5), 1);
        q.schedule_at(SimTime::from_nanos(5), 2);
        let (_, first) = q.pop().unwrap();
        assert_eq!(first, 1);
        q.schedule_now(3); // lands at t=5 too, but after 2
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, [2, 3]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(100), ());
        let _ = q.pop();
        q.schedule_at(SimTime::from_nanos(50), ());
    }

    #[test]
    fn clear_keeps_clock() {
        let mut q = EventQueue::new();
        q.schedule_after(Duration::from_micros(1), 1);
        let _ = q.pop();
        q.schedule_after(Duration::from_micros(1), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_nanos(1_000));
    }

    #[test]
    fn debug_is_informative() {
        let q: EventQueue<()> = EventQueue::new();
        let s = format!("{q:?}");
        assert!(s.contains("pending"));
    }

    #[test]
    fn pop_batch_collects_one_instant_in_pop_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(10), 1);
        q.schedule_at(SimTime::from_nanos(10), 2);
        q.schedule_at(SimTime::from_nanos(20), 4);
        let mut batch = Vec::new();
        assert_eq!(q.pop_batch(&mut batch), Some(SimTime::from_nanos(10)));
        assert_eq!(batch, [1, 2]);
        assert_eq!(q.events_processed(), 2);
        // Same-instant events scheduled mid-handling arrive in the next
        // batch — at the same timestamp, after their already-queued peers.
        q.schedule_now(3);
        assert_eq!(q.pop_batch(&mut batch), Some(SimTime::from_nanos(10)));
        assert_eq!(batch, [3]);
        assert_eq!(q.pop_batch(&mut batch), Some(SimTime::from_nanos(20)));
        assert_eq!(batch, [4]);
        assert_eq!(q.pop_batch(&mut batch), None);
        assert!(batch.is_empty());
        assert_eq!(q.events_processed(), 4);
    }

    #[test]
    fn lane_and_heap_interleave_in_seq_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(5), 1);
        let _ = q.pop(); // now = 5
        q.schedule_now(10); // lane
        q.schedule_at(SimTime::from_nanos(9), 20); // heap, later time
        q.schedule_now(11); // lane again
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, [10, 11, 20], "lane (t=5) drains before t=9");
    }

    #[test]
    fn arena_slots_are_recycled() {
        let mut q = EventQueue::new();
        for round in 0..10 {
            for i in 0..50u64 {
                q.schedule_after(Duration::from_nanos(i + 1), (round, i));
            }
            while q.pop().is_some() {}
        }
        assert!(q.slots.len() <= 50, "arena grew to {}", q.slots.len());
        assert_eq!(q.events_processed(), 500);
    }

    #[test]
    fn start_seq_at_preserves_fifo_across_u32_boundary() {
        let mut q = EventQueue::new();
        q.start_seq_at(u64::from(u32::MAX) - 1);
        for i in 0..10 {
            q.schedule_at(SimTime::from_nanos(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }
}
