//! Named scalar measurement sets.

use serde::{Deserialize, Serialize};

/// An insertion-ordered set of named `f64` metrics — the flat result
/// record of one simulation run or sweep-point evaluation.
///
/// Producers (e.g. a simulator report) flatten themselves into one of
/// these; consumers (e.g. the `qic-sweep` campaign engine, which
/// re-exports this type) aggregate them name-by-name.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Metrics {
    entries: Vec<(String, f64)>,
}

impl Metrics {
    /// An empty metric set.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Records a metric (builder style).
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name — metric sets are flat, not multi-maps.
    pub fn with(mut self, name: impl Into<String>, value: f64) -> Metrics {
        self.push(name, value);
        self
    }

    /// Records a metric.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name.
    pub fn push(&mut self, name: impl Into<String>, value: f64) {
        let name = name.into();
        if let Some(existing) = self.get(&name) {
            panic!(
                "duplicate metric name {name:?}: already recorded as {existing}, \
                 attempted to record {value}"
            );
        }
        self.entries.push((name, value));
    }

    /// Merges every metric of `other` under a dotted namespace:
    /// `extend("trace", m)` records `m`'s `"bins"` as `"trace.bins"`.
    /// Namespacing is what makes merging safe — two reports can both
    /// have a `"bins"` as long as their prefixes differ.
    ///
    /// # Panics
    ///
    /// Panics if a prefixed name still collides with an existing metric.
    pub fn extend(&mut self, prefix: &str, other: &Metrics) {
        for (name, value) in other.iter() {
            self.push(format!("{prefix}.{name}"), value);
        }
    }

    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Metric names in insertion order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(n, _)| n.as_str())
    }

    /// `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Number of metrics recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no metrics were recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_order() {
        let m = Metrics::new().with("b", 2.0).with("a", 1.0);
        assert_eq!(m.get("a"), Some(1.0));
        assert_eq!(m.get("b"), Some(2.0));
        assert_eq!(m.get("c"), None);
        assert_eq!(m.names().collect::<Vec<_>>(), vec!["b", "a"]);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
        assert_eq!(m.iter().next(), Some(("b", 2.0)));
    }

    #[test]
    #[should_panic(
        expected = "duplicate metric name \"x\": already recorded as 1, attempted to record 2"
    )]
    fn duplicate_name_rejected_with_both_values() {
        let _ = Metrics::new().with("x", 1.0).with("x", 2.0);
    }

    #[test]
    fn extend_namespaces_the_merged_set() {
        let inner = Metrics::new().with("bins", 64.0).with("peak", 0.5);
        let mut m = Metrics::new().with("bins", 1.0);
        m.extend("trace", &inner);
        assert_eq!(m.get("bins"), Some(1.0));
        assert_eq!(m.get("trace.bins"), Some(64.0));
        assert_eq!(m.get("trace.peak"), Some(0.5));
        assert_eq!(
            m.names().collect::<Vec<_>>(),
            vec!["bins", "trace.bins", "trace.peak"]
        );
    }

    #[test]
    #[should_panic(expected = "duplicate metric name \"trace.bins\"")]
    fn extend_still_rejects_prefixed_collisions() {
        let inner = Metrics::new().with("bins", 64.0);
        let mut m = Metrics::new().with("trace.bins", 1.0);
        m.extend("trace", &inner);
    }
}
