//! Property tests for the Scenario API: every spec — arbitrary
//! topology × routing × workload × scale — round-trips losslessly
//! through JSON, and valid specs stay valid across the round trip.

use proptest::prelude::*;

use qic_analytic::figures::PairMetric;
use qic_analytic::strategy::PurifyPlacement;
use qic_core::scenario::{MachineSpec, NetPreset, ScenarioAxis, ScenarioSpec, WorkloadSpec};
use qic_core::Layout;
use qic_net::routing::RoutingPolicy;
use qic_net::topology::TopologyKind;

const PRESETS: [NetPreset; 3] = [NetPreset::Paper, NetPreset::Reduced, NetPreset::SmallTest];
const PLACEMENTS: [PurifyPlacement; 5] = PurifyPlacement::FIGURE_SET;

fn workload_from(kind: u8, a: u32, b: u32, seed: u64) -> WorkloadSpec {
    // Parameters stay in range for validation-minded cases but are NOT
    // clamped to "sensible" — round-trip must hold for any encodable
    // value.
    match kind % 6 {
        0 => WorkloadSpec::Qft { qubits: 2 + a % 30 },
        1 => WorkloadSpec::ModMul {
            register: 1 + a % 15,
        },
        2 => WorkloadSpec::ModExp {
            register: 2 + a % 14,
            steps: 1 + b % 4,
        },
        3 => WorkloadSpec::Shor {
            register: 2 + a % 14,
            steps: 1 + b % 3,
        },
        4 => WorkloadSpec::Synthetic {
            qubits: 2 + a % 30,
            comms: 1 + b % 64,
            seed,
        },
        _ => WorkloadSpec::Batch {
            comms: vec![
                (
                    (a as u16 % 7, b as u16 % 7),
                    (1 + a as u16 % 6, 1 + b as u16 % 6),
                ),
                ((0, b as u16 % 4), (a as u16 % 4, 7)),
            ],
        },
    }
}

fn machine_axis_from(kind: u8, x: u32, y: u32, seed: u64) -> ScenarioAxis {
    match kind % 11 {
        0 => ScenarioAxis::ResourceRatio {
            area: 10 + x % 100,
            ratios: vec![0, 1 + i64::from(y % 7)],
        },
        1 => ScenarioAxis::Layouts {
            layouts: Layout::ALL.to_vec(),
        },
        2 => ScenarioAxis::Topologies {
            kinds: TopologyKind::ALL[..1 + (x as usize % 3)].to_vec(),
        },
        3 => ScenarioAxis::Routings {
            policies: RoutingPolicy::ALL.to_vec(),
        },
        4 => ScenarioAxis::GridEdges {
            edges: vec![4 + (x % 5) as u16, 4 + (y % 5) as u16],
        },
        5 => ScenarioAxis::PurifyDepths {
            depths: vec![1 + x % 4, 1 + y % 4],
        },
        6 => ScenarioAxis::Units {
            units: vec![2 + x % 16, 2 + y % 16],
        },
        7 => ScenarioAxis::Teleporters {
            values: vec![2 + x % 16],
        },
        8 => ScenarioAxis::Generators {
            values: vec![1 + x % 16],
        },
        9 => ScenarioAxis::Purifiers {
            values: vec![1 + x % 16],
        },
        _ => ScenarioAxis::Workloads {
            workloads: vec![
                workload_from(x as u8, x, y, seed),
                workload_from(x as u8 + 1, y, x, seed ^ 0xabcd),
            ],
        },
    }
}

fn channel_axis_from(kind: u8, x: u32, y: u32) -> ScenarioAxis {
    match kind % 3 {
        0 => ScenarioAxis::Placements {
            placements: PLACEMENTS[..1 + (x as usize % 5)].to_vec(),
        },
        1 => ScenarioAxis::Hops {
            hops: vec![1 + x % 60, 1 + y % 60],
        },
        _ => ScenarioAxis::ErrorRateLog {
            start_exp: -9 + (x % 3) as i32,
            stop_exp: -4 + (y % 3) as i32,
            per_decade: 1 + x % 4,
        },
    }
}

fn machine_spec_from(sel: u32) -> MachineSpec {
    let preset = PRESETS[sel as usize % 3];
    MachineSpec::preset(preset)
        .with_grid(2 + (sel % 7) as u16, 2 + (sel / 7 % 7) as u16)
        .with_topology(TopologyKind::ALL[sel as usize % 3])
        .with_routing(RoutingPolicy::ALL[sel as usize % 2])
        .with_layout(Layout::ALL[sel as usize / 2 % 2])
        .with_resources(1 + sel % 9, 1 + sel / 3 % 9, 1 + sel / 5 % 9)
        .with_purify_depth(1 + sel % 5)
        .with_outputs_per_comm(1 + sel % 8)
}

fn spec_from(
    family: u8,
    sel: u32,
    axis_kinds: (u8, u8),
    axis_params: (u32, u32),
    seed: u64,
) -> ScenarioSpec {
    let (k1, k2) = axis_kinds;
    let (x, y) = axis_params;
    if family % 2 == 0 {
        let machine = machine_spec_from(sel);
        let workload = workload_from(sel as u8, x, y, seed);
        let mut spec = ScenarioSpec::machine(format!("prop_machine_{sel}"), machine, workload)
            .with_seed(seed)
            .with_replicates(1 + sel % 3)
            .with_workers(sel as usize % 5)
            .with_axis(machine_axis_from(k1, x, y, seed));
        // A second axis of a different kind (duplicates are a
        // validation concern, not a serialization one).
        if k2 % 11 != k1 % 11 {
            spec = spec.with_axis(machine_axis_from(k2, y, x, seed));
        }
        spec
    } else {
        let mut spec = ScenarioSpec::channel(
            format!("prop_channel_{sel}"),
            PLACEMENTS[sel as usize % 5],
            1 + sel % 60,
            if sel % 2 == 0 {
                PairMetric::TotalPairs
            } else {
                PairMetric::TeleportedPairs
            },
        )
        .with_seed(seed)
        .with_axis(channel_axis_from(k1, x, y));
        if k2 % 3 != k1 % 3 {
            spec = spec.with_axis(channel_axis_from(k2, y, x));
        }
        spec
    }
}

proptest! {
    #[test]
    fn any_spec_round_trips_losslessly(
        family in 0u8..2,
        sel in 0u32..10_000,
        kinds in (0u8..32, 0u8..32),
        params in (0u32..1_000, 0u32..1_000),
        seed in 0u64..u64::MAX,
    ) {
        let spec = spec_from(family, sel, kinds, params, seed);
        let json = spec.to_json();
        let back = ScenarioSpec::from_json(&json)
            .unwrap_or_else(|e| panic!("{e}\n{json}"));
        prop_assert_eq!(&spec, &back, "round trip changed the spec");
        // Emission is deterministic: a second trip is byte-identical.
        prop_assert_eq!(json, back.to_json());
    }

    #[test]
    fn validation_survives_the_round_trip(
        family in 0u8..2,
        sel in 0u32..10_000,
        kinds in (0u8..32, 0u8..32),
        params in (0u32..1_000, 0u32..1_000),
        seed in 0u64..1_000_000,
    ) {
        // Whatever validate() says about a spec, it must say the same
        // about its JSON round trip (no information loss that flips
        // validity either way).
        let spec = spec_from(family, sel, kinds, params, seed);
        let back = ScenarioSpec::from_json(&spec.to_json()).expect("round trip parses");
        prop_assert_eq!(
            spec.validate().is_ok(),
            back.validate().is_ok(),
            "round trip changed validity"
        );
    }
}
