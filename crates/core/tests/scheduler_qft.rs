//! Integration: the logical scheduler drives a small QFT workload to
//! completion on a 4×4 mesh under both layouts, with sane accounting.

use qic_core::prelude::*;
use qic_workload::Program;

fn four_by_four(layout: Layout) -> Machine {
    let mut b = Machine::builder();
    b.grid(4, 4)
        .resources(6, 6, 3)
        .outputs_per_comm(2)
        .purify_depth(1)
        .layout(layout)
        .seed(2006);
    b.build().expect("4x4 machine is valid")
}

#[test]
fn qft_completes_on_4x4_mesh_under_both_layouts() {
    let program = Program::qft(8);
    for layout in Layout::ALL {
        let report = four_by_four(layout).run(&program);
        assert_eq!(
            report.instructions as usize,
            program.len(),
            "{layout}: every QFT instruction must retire"
        );
        assert_eq!(report.layout, layout);
        assert!(report.makespan > qic_physics::time::Duration::ZERO);
        // Every instruction needs at least one completed communication,
        // and communications consume teleported pairs.
        assert!(report.net.comms_completed >= report.instructions);
        assert!(report.net.pairs_consumed > 0);
    }
}

#[test]
fn scheduler_is_deterministic_for_a_fixed_seed() {
    let program = Program::qft(6);
    let a = four_by_four(Layout::HomeBase).run(&program);
    let b = four_by_four(Layout::HomeBase).run(&program);
    assert_eq!(a, b);
}

#[test]
fn more_qubits_mean_more_work_on_the_same_mesh() {
    let small = four_by_four(Layout::HomeBase).run(&Program::qft(4));
    let large = four_by_four(Layout::HomeBase).run(&Program::qft(10));
    assert!(large.makespan > small.makespan);
    assert!(large.net.teleport_ops > small.net.teleport_ops);
}

#[test]
fn snake_placement_covers_the_mesh_without_collisions() {
    let placement = Placement::snake(4, 4, 16).expect("16 qubits fit a 4x4 grid");
    assert_eq!(placement.len(), 16);
    let mut seen = std::collections::HashSet::new();
    for q in 0..16 {
        let home = placement.home(qic_workload::LogicalQubit(q));
        assert!(seen.insert(home), "qubit {q} shares a home site");
    }
    // One more qubit than sites must be rejected.
    assert!(Placement::snake(4, 4, 17).is_err());
}

#[test]
fn report_normalization_is_relative_makespan() {
    let base = four_by_four(Layout::HomeBase).run(&Program::qft(8));
    assert!((base.normalized_to(&base) - 1.0).abs() < 1e-12);
    let slower = four_by_four(Layout::HomeBase).run(&Program::qft(12));
    assert!(slower.normalized_to(&base) > 1.0);
}
