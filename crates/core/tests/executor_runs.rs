//! `run_on` (shared executor) versus `run` (transient pool): the report
//! must be byte-identical — the service layer's cache keys on a spec
//! digest and then serves `run_on` output as if it were `run` output.

use std::sync::Arc;

use qic_core::scenario::{
    self, CheckpointSpec, ScenarioRegistry, ScenarioScale, ScenarioSpec, SpecDigest,
};
use qic_sweep::{CancelToken, Executor, JsonlProgress};

fn preset(name: &str) -> ScenarioSpec {
    ScenarioRegistry::builtin()
        .spec(name, ScenarioScale::SmallTest)
        .unwrap_or_else(|| panic!("{name} is registered"))
}

#[test]
fn run_on_matches_run_byte_for_byte() {
    let exec = Executor::new(2);
    // One machine preset (simulator path) and one channel spec
    // (closed-form path) — both families go through the executor.
    for spec in [
        preset("design_space"),
        preset("topology_faceoff"),
        preset("fig12"),
    ] {
        let direct = scenario::run(&spec).expect("direct run");
        let shared = scenario::run_on(&spec, &exec).expect("executor run");
        assert_eq!(shared, direct, "{}", spec.name);
        assert_eq!(
            shared.report.to_json(),
            direct.report.to_json(),
            "{}",
            spec.name
        );
        assert_eq!(
            shared.report.to_csv(),
            direct.report.to_csv(),
            "{}",
            spec.name
        );
        assert_eq!(
            shared.report.to_record_json(),
            direct.report.to_record_json(),
            "{}",
            spec.name
        );
    }
}

#[test]
fn run_on_ignores_the_workers_hint() {
    let exec = Executor::new(1);
    let spec = preset("design_space");
    let hinted = spec.clone().with_workers(6);
    assert_eq!(
        SpecDigest::of(&hinted),
        SpecDigest::of(&spec),
        "workers is not identity"
    );
    assert_eq!(
        scenario::run_on(&hinted, &exec).unwrap().report.to_json(),
        scenario::run(&spec).unwrap().report.to_json()
    );
}

#[test]
fn run_on_rejects_checkpointed_specs() {
    let exec = Executor::new(1);
    let spec = preset("design_space").with_checkpoint(CheckpointSpec::to_dir("target/run_on_ckpt"));
    let err = scenario::run_on(&spec, &exec).unwrap_err();
    assert!(err.to_string().contains("checkpoint"), "{err}");
    assert!(
        !std::path::Path::new("target/run_on_ckpt").exists(),
        "rejection must not touch the manifest directory"
    );
}

#[test]
fn run_on_cancellable_streams_progress_and_stops() {
    let exec = Executor::new(2);
    let spec = preset("design_space");
    // Uncancelled: completes, and the sink hears one finish per point.
    let sink = Arc::new(JsonlProgress::new(Vec::new(), 8));
    let report =
        scenario::run_on_cancellable(&spec, &exec, Arc::clone(&sink) as _, &CancelToken::new())
            .expect("valid spec")
            .expect("uncancelled runs complete");
    assert_eq!(sink.done(), report.report.points.len());
    // Pre-cancelled: no points run, no report.
    let token = CancelToken::new();
    token.cancel();
    let cancelled =
        scenario::run_on_cancellable(&spec, &exec, Arc::new(qic_sweep::NoProgress), &token)
            .expect("valid spec");
    assert!(cancelled.is_none(), "cancelled runs yield no report");
}
