//! The classical logical-level scheduler — **Section 5**.
//!
//! "The logical instruction stream is processed by a control unit which
//! determines a path for each logical communication … The scheduler
//! attempts to execute as many logical instructions in parallel as
//! possible while maintaining instruction order dependencies."
//!
//! [`LayoutScheduler`] implements the `qic-net` [`Driver`] trait: it
//! issues an instruction as soon as it is at the head of both operands'
//! program-order queues and the layout's placement rules allow it, turns
//! it into channel set-ups, models the logical gate latency, and (layout
//! depending) sends qubits home afterwards.

use std::collections::VecDeque;

use qic_net::sim::{CommDone, Driver, SimApi};
use qic_net::topology::Coord;
use qic_physics::time::Duration;
use qic_workload::{LogicalQubit, Program};

use crate::layout::{CapacityError, Layout, Placement};

/// Tag phases (low two bits of a comm/notify tag).
const PHASE_OUTBOUND: u64 = 0;
const PHASE_RETURN: u64 = 1;
const PHASE_RETURN_HOME: u64 = 2;
const PHASE_GATE_END: u64 = 3;

fn tag(payload: u64, phase: u64) -> u64 {
    (payload << 2) | phase
}

fn untag(t: u64) -> (u64, u64) {
    (t >> 2, t & 3)
}

/// The layout-aware scheduler driving the network simulator.
#[derive(Debug)]
pub struct LayoutScheduler {
    layout: Layout,
    placement: Placement,
    gate_time: Duration,
    instr: Vec<(u32, u32)>,
    /// Per-qubit program-order queues of instruction indices.
    queues: Vec<VecDeque<u32>>,
    busy: Vec<bool>,
    /// Current site of each logical qubit.
    loc: Vec<Coord>,
    /// Site where the qubit currently holds a visitor slot, if any.
    visitor_slot: Vec<Option<Coord>>,
    /// Visitors currently hosted per site (dense by node index).
    visitors_used: Vec<u32>,
    visitor_cap: u32,
    width: u16,
    issued: Vec<bool>,
    /// Instructions ready to issue but blocked on a visitor slot.
    blocked: Vec<u32>,
    /// Logical instructions completed (gate finished).
    pub completed: u64,
}

impl LayoutScheduler {
    /// Builds a scheduler for `program` under the given layout.
    pub fn new(
        program: &Program,
        layout: Layout,
        placement: Placement,
        gate_time: Duration,
    ) -> Self {
        let n = program.n_qubits() as usize;
        let mut queues = vec![VecDeque::new(); n];
        let instr: Vec<(u32, u32)> = program.iter().map(|i| (i.a.index(), i.b.index())).collect();
        for (k, &(a, b)) in instr.iter().enumerate() {
            queues[a as usize].push_back(k as u32);
            queues[b as usize].push_back(k as u32);
        }
        let loc: Vec<Coord> = (0..n)
            .map(|q| placement.home(LogicalQubit(q as u32)))
            .collect();
        let sites = usize::from(placement.width()) * usize::from(placement.height());
        let width = placement.width();
        LayoutScheduler {
            layout,
            placement,
            gate_time,
            queues,
            busy: vec![false; n],
            loc,
            visitor_slot: vec![None; n],
            visitors_used: vec![0; sites],
            visitor_cap: 1,
            width,
            issued: vec![false; instr.len()],
            instr,
            blocked: Vec::new(),
            completed: 0,
        }
    }

    fn site_index(&self, c: Coord) -> usize {
        usize::from(c.y) * usize::from(self.width) + usize::from(c.x)
    }

    fn home(&self, q: u32) -> Coord {
        self.placement.home(LogicalQubit(q))
    }

    /// Whether instruction `k` heads both operands' queues.
    fn is_head_of_both(&self, k: u32) -> bool {
        let (a, b) = self.instr[k as usize];
        self.queues[a as usize].front() == Some(&k) && self.queues[b as usize].front() == Some(&k)
    }

    fn try_issue(&mut self, k: u32, api: &mut SimApi<'_>) {
        if self.issued[k as usize] || !self.is_head_of_both(k) {
            return;
        }
        let (a, b) = self.instr[k as usize];
        if self.busy[a as usize] || self.busy[b as usize] {
            return;
        }
        match self.layout {
            Layout::HomeBase => {
                // b teleports to a's home.
                let src = self.home(b);
                let dst = self.home(a);
                self.issued[k as usize] = true;
                self.busy[a as usize] = true;
                self.busy[b as usize] = true;
                self.loc[b as usize] = dst;
                api.submit_now(src, dst, tag(u64::from(k), PHASE_OUTBOUND));
            }
            Layout::MobileQubit => {
                // a walks to b's current site and stays.
                let src = self.loc[a as usize];
                let dst = self.loc[b as usize];
                let needs_slot = dst != self.home(a) && self.visitor_slot[a as usize] != Some(dst);
                if needs_slot {
                    let s = self.site_index(dst);
                    if self.visitors_used[s] >= self.visitor_cap {
                        if !self.blocked.contains(&k) {
                            self.blocked.push(k);
                        }
                        // Cycle breaking. Two camping patterns can wedge
                        // the walk: (1) the blocked walker itself holds a
                        // slot elsewhere, and (2) an *idle* visitor camps
                        // on `dst` while its own next instruction waits on
                        // this one. Send both kinds home; the op re-issues
                        // once the slot frees.
                        self.send_home_if_camping(a, api);
                        let campers: Vec<u32> = (0..self.loc.len() as u32)
                            .filter(|&q| {
                                self.visitor_slot[q as usize] == Some(dst) && !self.busy[q as usize]
                            })
                            .collect();
                        for q in campers {
                            self.send_home_if_camping(q, api);
                        }
                        return;
                    }
                    self.visitors_used[s] += 1;
                }
                self.issued[k as usize] = true;
                self.busy[a as usize] = true;
                self.busy[b as usize] = true;
                api.submit_now(src, dst, tag(u64::from(k), PHASE_OUTBOUND));
            }
        }
    }

    fn retry_blocked(&mut self, api: &mut SimApi<'_>) {
        let blocked = std::mem::take(&mut self.blocked);
        for k in blocked {
            self.try_issue(k, api);
            // Still unissued (e.g. an operand is mid-flight): keep it
            // parked so a later wake retries it.
            if !self.issued[k as usize] && !self.blocked.contains(&k) {
                self.blocked.push(k);
            }
        }
    }

    /// Pops `k` from qubit `q`'s queue and tries to issue the successor.
    fn advance_queue(&mut self, q: u32, k: u32, api: &mut SimApi<'_>) {
        let head = self.queues[q as usize].pop_front();
        debug_assert_eq!(head, Some(k), "queue discipline violated for q{q}");
        self.busy[q as usize] = false;
        if let Some(&next) = self.queues[q as usize].front() {
            self.try_issue(next, api);
        } else if self.layout == Layout::MobileQubit {
            // Stream finished: walk home if away.
            let home = self.home(q);
            if self.loc[q as usize] != home {
                self.busy[q as usize] = true;
                let src = self.loc[q as usize];
                api.submit_now(src, home, tag(u64::from(q), PHASE_RETURN_HOME));
            }
        }
    }

    /// Sends an idle, slot-holding qubit back to its home site.
    fn send_home_if_camping(&mut self, q: u32, api: &mut SimApi<'_>) {
        if !self.busy[q as usize] && self.visitor_slot[q as usize].is_some() {
            self.busy[q as usize] = true;
            let src = self.loc[q as usize];
            let home = self.home(q);
            api.submit_now(src, home, tag(u64::from(q), PHASE_RETURN_HOME));
        }
    }

    fn release_visitor_slot(&mut self, q: u32) {
        if let Some(site) = self.visitor_slot[q as usize].take() {
            let s = self.site_index(site);
            debug_assert!(self.visitors_used[s] > 0);
            self.visitors_used[s] -= 1;
        }
    }
}

impl Driver for LayoutScheduler {
    fn start(&mut self, api: &mut SimApi<'_>) {
        let heads: Vec<u32> = self
            .queues
            .iter()
            .filter_map(|q| q.front().copied())
            .collect();
        for k in heads {
            self.try_issue(k, api);
        }
    }

    fn on_complete(&mut self, done: CommDone, api: &mut SimApi<'_>) {
        let (payload, phase) = untag(done.tag);
        match phase {
            PHASE_OUTBOUND => {
                let k = payload as u32;
                if self.layout == Layout::MobileQubit {
                    let (a, _) = self.instr[k as usize];
                    // The walker's data has left its previous site.
                    self.release_visitor_slot(a);
                    self.loc[a as usize] = done.dst;
                    if done.dst != self.home(a) {
                        self.visitor_slot[a as usize] = Some(done.dst);
                    }
                    self.retry_blocked(api);
                }
                api.notify_after(self.gate_time, tag(payload, PHASE_GATE_END));
            }
            PHASE_RETURN => {
                // Home-Base: b is home again.
                let k = payload as u32;
                let (_, b) = self.instr[k as usize];
                self.loc[b as usize] = self.home(b);
                self.advance_queue(b, k, api);
            }
            PHASE_RETURN_HOME => {
                // Mobile: the walker reached home (end of its stream, or
                // evicted while camping on a contested site).
                let q = payload as u32;
                self.release_visitor_slot(q);
                self.loc[q as usize] = self.home(q);
                self.busy[q as usize] = false;
                // An evicted qubit may still have work: retry its head.
                if let Some(&next) = self.queues[q as usize].front() {
                    self.try_issue(next, api);
                }
                self.retry_blocked(api);
            }
            _ => unreachable!("comm tags only use outbound/return phases"),
        }
    }

    fn on_notify(&mut self, t: u64, api: &mut SimApi<'_>) {
        let (payload, phase) = untag(t);
        debug_assert_eq!(phase, PHASE_GATE_END);
        let k = payload as u32;
        let (a, b) = self.instr[k as usize];
        self.completed += 1;
        match self.layout {
            Layout::HomeBase => {
                // a's side of the instruction is done; b must teleport
                // home before its next instruction.
                self.advance_queue(a, k, api);
                let src = self.home(a);
                let dst = self.home(b);
                api.submit_now(src, dst, tag(u64::from(k), PHASE_RETURN));
            }
            Layout::MobileQubit => {
                self.advance_queue(a, k, api);
                self.advance_queue(b, k, api);
                self.retry_blocked(api);
            }
        }
    }
}

impl LayoutScheduler {
    /// Debug dump of the scheduler's stuck state (for development tools).
    pub fn debug_state(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (q, queue) in self.queues.iter().enumerate() {
            if queue.is_empty() && !self.busy[q] {
                continue;
            }
            let _ = writeln!(
                s,
                "q{q}: busy={} head={:?} loc={} slot={:?}",
                self.busy[q],
                queue.front().map(|&k| self.instr[k as usize]),
                self.loc[q],
                self.visitor_slot[q]
            );
        }
        let _ = writeln!(s, "blocked: {:?}", self.blocked);
        s
    }
}

/// A ready-to-run [`Driver`] for a logical [`Program`] — the
/// `Program → Driver` adapter that lets `qic-workload` programs drive
/// [`qic_net::sim::NetworkSim`] directly.
///
/// The adapter picks the fabric-appropriate placement (the snake for
/// mesh/torus grids, the Gray-code walk for hypercubes), builds the
/// layout scheduler, and tracks completion, so callers that do not want
/// a full `Machine` can still run programs:
///
/// ```
/// use qic_core::scheduler::ProgramDriver;
/// use qic_core::Layout;
/// use qic_net::config::NetConfig;
/// use qic_net::sim::NetworkSim;
/// use qic_workload::Program;
///
/// let net = NetConfig::small_test();
/// let program = Program::qft(4);
/// let mut driver = ProgramDriver::new(&net, Layout::HomeBase, &program)?;
/// let report = NetworkSim::new(net).run(&mut driver);
/// assert!(driver.is_finished());
/// assert!(report.comms_completed > 0);
/// # Ok::<(), qic_core::layout::CapacityError>(())
/// ```
#[derive(Debug)]
pub struct ProgramDriver {
    scheduler: LayoutScheduler,
    expected: u64,
}

impl ProgramDriver {
    /// The default logical gate latency charged between a channel's
    /// completion and the follow-up movement (20 µs).
    pub fn default_gate_time() -> Duration {
        Duration::from_micros(20)
    }

    /// Builds a driver with the default gate time.
    ///
    /// # Errors
    ///
    /// [`CapacityError`] if the program needs more qubits than the
    /// config's grid has sites.
    pub fn new(
        net: &qic_net::config::NetConfig,
        layout: Layout,
        program: &Program,
    ) -> Result<Self, CapacityError> {
        Self::with_gate_time(net, layout, program, Self::default_gate_time())
    }

    /// Builds a driver with an explicit gate time.
    ///
    /// # Errors
    ///
    /// [`CapacityError`] if the program needs more qubits than the
    /// config's grid has sites.
    pub fn with_gate_time(
        net: &qic_net::config::NetConfig,
        layout: Layout,
        program: &Program,
        gate_time: Duration,
    ) -> Result<Self, CapacityError> {
        // Placement follows the fabric: the snake keeps consecutive
        // qubits one mesh/torus hop apart; its hypercube analogue is the
        // Gray-code walk (one address bit between consecutive qubits).
        let place = if net.topology == qic_net::topology::TopologyKind::Hypercube {
            Placement::gray
        } else {
            Placement::snake
        };
        let placement = place(net.mesh_width, net.mesh_height, program.n_qubits())?;
        Ok(ProgramDriver {
            scheduler: LayoutScheduler::new(program, layout, placement, gate_time),
            expected: program.len() as u64,
        })
    }

    /// Logical instructions completed so far.
    pub fn completed(&self) -> u64 {
        self.scheduler.completed
    }

    /// Whether every instruction of the program has completed.
    pub fn is_finished(&self) -> bool {
        self.scheduler.completed == self.expected
    }

    /// Panics with the scheduler's stuck-state dump unless the program
    /// ran to completion — the invariant every simulation asserts after
    /// [`qic_net::sim::NetworkSim::run`] returns.
    ///
    /// # Panics
    ///
    /// Panics if any instruction failed to complete.
    pub fn assert_finished(&self) {
        assert!(
            self.is_finished(),
            "scheduler wedged: {} of {} instructions completed\n{}",
            self.scheduler.completed,
            self.expected,
            self.scheduler.debug_state()
        );
    }
}

impl Driver for ProgramDriver {
    fn start(&mut self, api: &mut SimApi<'_>) {
        self.scheduler.start(api);
    }

    fn on_complete(&mut self, done: CommDone, api: &mut SimApi<'_>) {
        self.scheduler.on_complete(done, api);
    }

    fn on_notify(&mut self, tag: u64, api: &mut SimApi<'_>) {
        self.scheduler.on_notify(tag, api);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qic_net::config::NetConfig;
    use qic_net::sim::NetworkSim;

    fn run(program: &Program, layout: Layout) -> (qic_net::report::NetReport, u64) {
        let cfg = NetConfig::small_test();
        let placement =
            Placement::snake(cfg.mesh_width, cfg.mesh_height, program.n_qubits()).unwrap();
        let mut driver =
            LayoutScheduler::new(program, layout, placement, Duration::from_micros(20));
        let report = NetworkSim::new(cfg).run(&mut driver);
        (report, driver.completed)
    }

    #[test]
    fn qft_completes_under_both_layouts() {
        let program = Program::qft(8);
        for layout in Layout::ALL {
            let (report, completed) = run(&program, layout);
            assert_eq!(completed as usize, program.len(), "{layout}");
            assert!(report.makespan.as_us_f64() > 0.0);
        }
    }

    #[test]
    fn home_base_makes_two_channels_per_instruction() {
        // Every instruction = outbound + return; qubits 0 and 1 are
        // adjacent on the snake, so each channel is 1 hop.
        let program = Program::new(2, vec![qic_workload::Instruction::interact(0, 1)]).unwrap();
        let (report, _) = run(&program, Layout::HomeBase);
        assert_eq!(report.comms_completed, 2);
    }

    #[test]
    fn mobile_returns_walkers_home() {
        // One instruction: walker 0 visits 1's site, then returns home
        // because its stream is empty → 2 comms.
        let program = Program::new(2, vec![qic_workload::Instruction::interact(0, 1)]).unwrap();
        let (report, _) = run(&program, Layout::MobileQubit);
        assert_eq!(report.comms_completed, 2);
    }

    #[test]
    fn mobile_walker_stays_for_consecutive_ops() {
        // Walker 0 interacts with 1 then 2: channels are 0→1 (1 hop),
        // then 1's site→2's site (1 hop), then home return (2 hops):
        // 3 comms, not 4.
        let program = Program::new(
            3,
            vec![
                qic_workload::Instruction::interact(0, 1),
                qic_workload::Instruction::interact(0, 2),
            ],
        )
        .unwrap();
        let (report, _) = run(&program, Layout::MobileQubit);
        assert_eq!(report.comms_completed, 3);
    }

    #[test]
    fn mobile_is_faster_than_home_base_for_qft() {
        // The Mobile layout turns QFT's all-to-all into mostly one-hop
        // walks — the whole point of Figure 15.
        let program = Program::qft(12);
        let (hb, _) = run(&program, Layout::HomeBase);
        let (mb, _) = run(&program, Layout::MobileQubit);
        assert!(
            mb.makespan < hb.makespan,
            "mobile {} vs home-base {}",
            mb.makespan,
            hb.makespan
        );
        // And it teleports far fewer pairs.
        assert!(mb.teleport_ops < hb.teleport_ops);
    }

    #[test]
    fn dependency_order_is_respected() {
        // A serial chain must take at least 3 × (channel + gate) time.
        let program = Program::new(
            3,
            vec![
                qic_workload::Instruction::interact(0, 1),
                qic_workload::Instruction::interact(1, 2),
                qic_workload::Instruction::interact(0, 2),
            ],
        )
        .unwrap();
        let (serial, completed) = run(&program, Layout::HomeBase);
        assert_eq!(completed, 3);
        let parallel_program = Program::new(
            6,
            vec![
                qic_workload::Instruction::interact(0, 1),
                qic_workload::Instruction::interact(2, 3),
                qic_workload::Instruction::interact(4, 5),
            ],
        )
        .unwrap();
        let (parallel, _) = run(&parallel_program, Layout::HomeBase);
        assert!(serial.makespan > parallel.makespan);
    }

    #[test]
    fn modular_multiplication_completes() {
        let program = Program::modular_multiplication(4);
        for layout in Layout::ALL {
            let (_, completed) = run(&program, layout);
            assert_eq!(completed as usize, program.len(), "{layout}");
        }
    }
}
