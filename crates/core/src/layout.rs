//! Logical-qubit layouts — **Figure 15 and Section 5**.

use std::fmt;

use serde::{Deserialize, Serialize};

use qic_net::topology::Coord;
use qic_workload::LogicalQubit;

/// The two machine organisations the paper simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Layout {
    /// Each LQ node is a *home base* for one logical qubit, "requiring
    /// each logical qubit to teleport home after each logical operation".
    HomeBase,
    /// LQ nodes can error-correct two logical qubits, so a qubit can stay
    /// where it interacted — "capitalizes on the sequential nature of
    /// QFT" (Figure 15, right).
    MobileQubit,
}

impl Layout {
    /// Both layouts, for sweeps.
    pub const ALL: [Layout; 2] = [Layout::HomeBase, Layout::MobileQubit];

    /// Parses a campaign label (`"Home Base"` / `"Mobile Qubit"`, as
    /// produced by the `Display` impl).
    pub fn parse(label: &str) -> Option<Layout> {
        match label {
            "Home Base" => Some(Layout::HomeBase),
            "Mobile Qubit" => Some(Layout::MobileQubit),
            _ => None,
        }
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Layout::HomeBase => f.write_str("Home Base"),
            Layout::MobileQubit => f.write_str("Mobile Qubit"),
        }
    }
}

/// Error raised when a program needs more qubits than the grid has sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityError {
    /// Qubits the program declares.
    pub qubits: u32,
    /// Sites the grid provides.
    pub sites: u32,
}

impl fmt::Display for CapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program needs {} logical qubits but the grid has {} sites",
            self.qubits, self.sites
        )
    }
}

impl std::error::Error for CapacityError {}

/// The assignment of logical qubits to home sites.
///
/// Qubits are laid out along a serpentine ("snake") path through the
/// grid — row 0 left-to-right, row 1 right-to-left, and so on — so that
/// consecutively numbered qubits are physically adjacent. This is exactly
/// the structure the Mobile-Qubit QFT walk exploits (Figure 15).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    width: u16,
    height: u16,
    homes: Vec<Coord>,
}

impl Placement {
    /// Snake placement of `n_qubits` on a `width × height` grid.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if the grid is too small.
    pub fn snake(width: u16, height: u16, n_qubits: u32) -> Result<Self, CapacityError> {
        let sites = u32::from(width) * u32::from(height);
        if n_qubits > sites {
            return Err(CapacityError {
                qubits: n_qubits,
                sites,
            });
        }
        let homes = (0..n_qubits)
            .map(|q| {
                let row = (q / u32::from(width)) as u16;
                let col = (q % u32::from(width)) as u16;
                let x = if row % 2 == 0 { col } else { width - 1 - col };
                Coord::new(x, row)
            })
            .collect();
        Ok(Placement {
            width,
            height,
            homes,
        })
    }

    /// Gray-code placement of `n_qubits` on a `width × height` grid whose
    /// node count is a power of two — the hypercube analogue of the snake:
    /// qubit `q` homes at node index `q ^ (q >> 1)`, so consecutively
    /// numbered qubits sit one **hypercube hop** apart (one address bit),
    /// exactly as the snake keeps them one mesh hop apart.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if the grid is too small.
    ///
    /// # Panics
    ///
    /// Panics if `width × height` is not a power of two (no Gray cycle).
    pub fn gray(width: u16, height: u16, n_qubits: u32) -> Result<Self, CapacityError> {
        let sites = u32::from(width) * u32::from(height);
        assert!(
            sites.is_power_of_two(),
            "gray placement needs a power-of-two site count"
        );
        if n_qubits > sites {
            return Err(CapacityError {
                qubits: n_qubits,
                sites,
            });
        }
        let homes = (0..n_qubits)
            .map(|q| {
                let node = q ^ (q >> 1);
                Coord::new(
                    (node % u32::from(width)) as u16,
                    (node / u32::from(width)) as u16,
                )
            })
            .collect();
        Ok(Placement {
            width,
            height,
            homes,
        })
    }

    /// The home site of a logical qubit.
    ///
    /// # Panics
    ///
    /// Panics if the qubit is outside the placement.
    pub fn home(&self, q: LogicalQubit) -> Coord {
        self.homes[q.index() as usize]
    }

    /// Number of placed qubits.
    pub fn len(&self) -> usize {
        self.homes.len()
    }

    /// Whether the placement is empty.
    pub fn is_empty(&self) -> bool {
        self.homes.is_empty()
    }

    /// Grid width.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Grid height.
    pub fn height(&self) -> u16 {
        self.height
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snake_adjacency() {
        // Consecutive qubits are Manhattan-adjacent along the snake.
        let p = Placement::snake(4, 4, 16).unwrap();
        for q in 0..15u32 {
            let a = p.home(LogicalQubit(q));
            let b = p.home(LogicalQubit(q + 1));
            assert_eq!(a.manhattan(b), 1, "q{q} at {a} vs q{} at {b}", q + 1);
        }
    }

    #[test]
    fn snake_reverses_odd_rows() {
        let p = Placement::snake(4, 2, 8).unwrap();
        assert_eq!(p.home(LogicalQubit(0)), Coord::new(0, 0));
        assert_eq!(p.home(LogicalQubit(3)), Coord::new(3, 0));
        assert_eq!(p.home(LogicalQubit(4)), Coord::new(3, 1));
        assert_eq!(p.home(LogicalQubit(7)), Coord::new(0, 1));
    }

    #[test]
    fn homes_are_unique() {
        let p = Placement::snake(5, 5, 25).unwrap();
        let mut seen = std::collections::HashSet::new();
        for q in 0..25 {
            assert!(seen.insert(p.home(LogicalQubit(q))));
        }
        assert_eq!(p.len(), 25);
        assert!(!p.is_empty());
        assert_eq!(p.width(), 5);
        assert_eq!(p.height(), 5);
    }

    #[test]
    fn gray_neighbours_are_one_hypercube_hop_apart() {
        let p = Placement::gray(4, 4, 16).unwrap();
        let node = |q: u32| {
            let c = p.home(LogicalQubit(q));
            u32::from(c.y) * 4 + u32::from(c.x)
        };
        let mut seen = std::collections::HashSet::new();
        for q in 0..16u32 {
            assert!(seen.insert(node(q)), "gray homes are unique");
            if q > 0 {
                let diff = node(q) ^ node(q - 1);
                assert_eq!(diff.count_ones(), 1, "q{q}: {:#b}", diff);
            }
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn gray_rejects_non_power_grids() {
        let _ = Placement::gray(3, 4, 4);
    }

    #[test]
    fn capacity_checked() {
        let err = Placement::snake(2, 2, 5).unwrap_err();
        assert_eq!(
            err,
            CapacityError {
                qubits: 5,
                sites: 4
            }
        );
        assert!(err.to_string().contains("4 sites"));
    }

    #[test]
    fn layout_display() {
        assert_eq!(Layout::HomeBase.to_string(), "Home Base");
        assert_eq!(Layout::MobileQubit.to_string(), "Mobile Qubit");
        assert_eq!(Layout::ALL.len(), 2);
    }
}
