//! Machine-level layer of the `qic` quantum-interconnect simulator.
//!
//! This crate binds the workload generators (`qic-workload`) to the
//! event-driven network (`qic-net`) the way Section 5 of Isailovic et al.
//! does: a classical scheduler issues two-logical-qubit instructions in
//! dependency order, each instruction becomes one or more channel
//! set-ups on the mesh, and the chosen **layout** decides who moves:
//!
//! * [`layout::Layout::HomeBase`] — every logical qubit owns a home site;
//!   the second operand teleports in, interacts, and teleports home.
//! * [`layout::Layout::MobileQubit`] — operands walk: the first operand
//!   teleports to the second's site and *stays* (Figure 15's optimisation
//!   for QFT's sequential structure), returning home only when its
//!   instruction stream ends.
//!
//! [`machine::Machine`] wraps the whole stack behind a builder;
//! [`experiment`] packages the Figure 16 resource-allocation sweep.
//!
//! # Example
//!
//! ```
//! use qic_core::prelude::*;
//! use qic_workload::Program;
//!
//! let machine = Machine::builder()
//!     .grid(4, 4)
//!     .resources(4, 4, 2)
//!     .outputs_per_comm(2)
//!     .purify_depth(1)
//!     .layout(Layout::HomeBase)
//!     .build()?;
//! let report = machine.run(&Program::qft(4));
//! assert_eq!(report.instructions, 6);
//! # Ok::<(), qic_core::machine::MachineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod layout;
pub mod machine;
pub mod scheduler;

/// Convenient glob-import surface: `use qic_core::prelude::*;`.
pub mod prelude {
    pub use crate::experiment::{
        figure16, figure16_campaign, figure16_from_campaign, topology_faceoff_campaign,
        topology_faceoff_campaign_on, FaceoffScale, Fig16Point, Fig16Result, Fig16Scale,
    };
    pub use crate::layout::{Layout, Placement};
    pub use crate::machine::{Machine, MachineBuilder, MachineError, RunReport};
}

pub use layout::{Layout, Placement};
pub use machine::{Machine, MachineBuilder, MachineError, RunReport};
