//! Machine-level layer of the `qic` quantum-interconnect simulator.
//!
//! This crate binds the workload generators (`qic-workload`) to the
//! event-driven network (`qic-net`) the way Section 5 of Isailovic et al.
//! does: a classical scheduler issues two-logical-qubit instructions in
//! dependency order, each instruction becomes one or more channel
//! set-ups on the mesh, and the chosen **layout** decides who moves:
//!
//! * [`layout::Layout::HomeBase`] — every logical qubit owns a home site;
//!   the second operand teleports in, interacts, and teleports home.
//! * [`layout::Layout::MobileQubit`] — operands walk: the first operand
//!   teleports to the second's site and *stays* (Figure 15's optimisation
//!   for QFT's sequential structure), returning home only when its
//!   instruction stream ends.
//!
//! [`machine::Machine`] wraps the whole stack behind a builder;
//! [`scenario`] is the declarative layer on top: one serializable
//! [`scenario::ScenarioSpec`] describes any experiment (machine ×
//! fabric × routing × workload × purification strategy, swept), runs
//! through [`scenario::run`] (re-exported as `qic::run` by the facade),
//! and the named figure presets live in the
//! [`scenario::ScenarioRegistry`]. [`experiment`] keeps the figure
//! datatypes (`Fig16Result` & friends) that unpack registry reports.
//!
//! # Example
//!
//! ```
//! use qic_core::prelude::*;
//! use qic_workload::Program;
//!
//! let machine = Machine::builder()
//!     .grid(4, 4)
//!     .resources(4, 4, 2)
//!     .outputs_per_comm(2)
//!     .purify_depth(1)
//!     .layout(Layout::HomeBase)
//!     .build()?;
//! let report = machine.run(&Program::qft(4));
//! assert_eq!(report.instructions, 6);
//! # Ok::<(), qic_core::machine::MachineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod layout;
pub mod machine;
pub mod scenario;
pub mod scheduler;

/// Convenient glob-import surface: `use qic_core::prelude::*;`.
pub mod prelude {
    pub use crate::experiment::{
        figure16_from_campaign, FaceoffScale, Fig16Point, Fig16Result, Fig16Scale,
    };
    pub use crate::layout::{Layout, Placement};
    pub use crate::machine::{Machine, MachineBuilder, MachineError, RunReport};
    pub use crate::scenario::{
        faceoff_spec, fig16_spec, CheckpointSpec, ExperimentSpec, MachineSpec, NetPreset,
        ObserveSpec, ScenarioAxis, ScenarioError, ScenarioProgress, ScenarioRegistry,
        ScenarioReport, ScenarioScale, ScenarioSpec, WorkloadSpec,
    };
    pub use crate::scheduler::ProgramDriver;
    pub use qic_fault::{DegradedFabric, FaultPlan, Hotspot};
}

pub use layout::{Layout, Placement};
pub use machine::{Machine, MachineBuilder, MachineError, RunReport};
pub use scenario::{ScenarioReport, ScenarioSpec};
