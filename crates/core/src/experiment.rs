//! Experiment presets: the Figure 16 resource sweep and the
//! multi-topology faceoff campaign.
//!
//! **Figure 16** — "By fixing the area dedicated to the interconnection
//! network (T', G, and P nodes) and varying the size of T' and G nodes
//! relative to P nodes, we can demonstrate where the bottlenecks in the
//! system arise." The sweep holds `t + g + p` (in unit-area terms)
//! constant while varying the ratio `t = g = R·p` for `R ∈ {1, 2, 4, 8}`,
//! runs the QFT benchmark under both layouts, and normalises every
//! execution time to the `t = g = p = 1024` run ("a close approximation
//! of unlimited resources").
//!
//! **Topology faceoff** — the question the paper could not ask: the same
//! workload on the same node count across mesh, torus and hypercube
//! fabrics under both routing policies.
//!
//! Since the Scenario API redesign both presets are **declarative
//! specs** — [`crate::scenario::fig16_spec`] and
//! [`crate::scenario::faceoff_spec`], registered as `fig16` and
//! `topology_faceoff` in the [`crate::scenario::ScenarioRegistry`] —
//! and run through the single `qic::run` entry point (the deprecated
//! `figure16*`/`topology_faceoff*` shims are gone; the registry specs
//! are the only entry points, byte-identical to the pre-redesign
//! campaigns — golden tests hold the line).
//! [`figure16_from_campaign`] remains the supported way to unpack a
//! Figure 16 campaign report into the paper's normalized dataset.

use serde::{Deserialize, Serialize};

use qic_sweep::CampaignReport;

use crate::layout::Layout;
use crate::scenario::ratio_resources;

/// Scale of the Figure 16 reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fig16Scale {
    /// The paper's configuration: QFT-256 on a 16×16 grid, 49 qubits per
    /// logical qubit, depth-3 purifiers. Minutes of wall-clock time.
    Paper,
    /// QFT-64 on an 8×8 grid with a level-1 code (7 qubits per logical
    /// qubit). Seconds of wall-clock time; same contention shape.
    Reduced,
    /// QFT-16 on a 4×4 grid, for tests.
    Tiny,
}

impl Fig16Scale {
    /// The QFT size the sweep runs at this scale.
    pub(crate) fn qft_size(self) -> u32 {
        match self {
            Fig16Scale::Paper => 256,
            Fig16Scale::Reduced => 64,
            Fig16Scale::Tiny => 16,
        }
    }

    /// Interconnect area budget (unit-area resource slots per node group).
    /// Large enough that every ratio in the sweep changes `p`:
    /// at 90, `t=g=R·p` gives (30,30), (36,18), (40,10), (40,5); at 36 it
    /// gives (12,12), (14,7), (16,4), (16,2).
    pub(crate) fn area(self) -> u32 {
        match self {
            Fig16Scale::Paper | Fig16Scale::Reduced => 90,
            Fig16Scale::Tiny => 36,
        }
    }
}

/// One x-axis point of Figure 16.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig16Point {
    /// Human-readable configuration label (e.g. `"t=g=4p"`).
    pub label: String,
    /// Teleporters per T' node.
    pub t: u32,
    /// Generators per G node.
    pub g: u32,
    /// Queue purifiers per P node.
    pub p: u32,
    /// Home-Base execution time normalized to the unlimited baseline.
    pub home_base: f64,
    /// Mobile-Qubit execution time normalized to the unlimited baseline.
    pub mobile: f64,
}

/// The full Figure 16 dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig16Result {
    /// Scale the sweep ran at.
    pub scale: Fig16Scale,
    /// Baseline (t=g=p=1024) makespans in microseconds, per layout
    /// `[home_base, mobile]`.
    pub baseline_us: [f64; 2],
    /// Sweep points in increasing `t:p` ratio.
    pub points: Vec<Fig16Point>,
}

/// The `t:p` ratios of the Figure 16 x-axis; `0` encodes the unlimited
/// `t = g = p = 1024` baseline point.
pub(crate) const RATIOS: [i64; 5] = [0, 1, 2, 4, 8];

/// Extracts the paper's normalized Figure 16 dataset from an
/// already-run campaign (the report of
/// [`crate::scenario::fig16_spec`] through `qic::run`).
///
/// # Panics
///
/// Panics if `report` is not a Figure 16 campaign run at `scale`
/// (campaign name or shape mismatch).
pub fn figure16_from_campaign(scale: Fig16Scale, report: &CampaignReport) -> Fig16Result {
    let n_layouts = Layout::ALL.len();
    assert_eq!(
        report.name,
        format!("figure16:{scale:?}"),
        "not a Figure 16 campaign for this scale"
    );
    assert_eq!(
        report.points.len(),
        RATIOS.len() * n_layouts,
        "campaign shape mismatch"
    );
    let makespan = |ratio_idx: usize, layout_idx: usize| {
        report
            .mean_at(ratio_idx * n_layouts + layout_idx, "makespan_us")
            .expect("every point reports a makespan")
    };
    let baseline = [makespan(0, 0), makespan(0, 1)];
    let area = scale.area();
    let points = RATIOS[1..]
        .iter()
        .enumerate()
        .map(|(i, &ratio)| {
            let (t, g, p) = ratio_resources(ratio, area);
            Fig16Point {
                label: format!("t=g={}p", ratio),
                t,
                g,
                p,
                home_base: makespan(i + 1, 0) / baseline[0],
                mobile: makespan(i + 1, 1) / baseline[1],
            }
        })
        .collect();
    Fig16Result {
        scale,
        baseline_us: baseline,
        points,
    }
}

/// Scale of the topology faceoff campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaceoffScale {
    /// 64 nodes (8×8 grid / dimension-6 hypercube), QFT-64, level-1
    /// code. Seconds of wall-clock time.
    Full,
    /// 16 nodes (4×4 grid / dimension-4 hypercube), QFT-16, for tests.
    Tiny,
}

impl FaceoffScale {
    /// The QFT size the faceoff runs at this scale.
    pub(crate) fn qft_size(self) -> u32 {
        match self {
            FaceoffScale::Full => 64,
            FaceoffScale::Tiny => 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{faceoff_spec, fig16_spec, run};
    use qic_net::routing::RoutingPolicy;
    use qic_net::topology::TopologyKind;

    fn fig16_report(scale: Fig16Scale) -> CampaignReport {
        run(&fig16_spec(scale)).expect("preset validates").report
    }

    fn faceoff_report(scale: FaceoffScale) -> CampaignReport {
        run(&faceoff_spec(scale)).expect("preset validates").report
    }

    #[test]
    fn campaign_shape_and_metrics() {
        let report = fig16_report(Fig16Scale::Tiny);
        assert_eq!(report.name, "figure16:Tiny");
        assert_eq!(report.points.len(), RATIOS.len() * Layout::ALL.len());
        for p in &report.points {
            assert!(p.mean("makespan_us").unwrap() > 0.0);
            assert!(p.mean("comms_completed").unwrap() > 0.0);
            assert!(p.mean("latency_p95_us").unwrap() >= p.mean("latency_p50_us").unwrap());
        }
        let csv = report.to_csv();
        assert!(csv.starts_with("index,ratio,layout,makespan_us.mean"));
        assert_eq!(csv.lines().count(), report.points.len() + 1);
    }

    #[test]
    #[should_panic(expected = "not a Figure 16 campaign for this scale")]
    fn mismatched_scale_is_rejected() {
        let report = fig16_report(Fig16Scale::Tiny);
        let _ = figure16_from_campaign(Fig16Scale::Reduced, &report);
    }

    #[test]
    fn tiny_sweep_shape() {
        let result = figure16_from_campaign(Fig16Scale::Tiny, &fig16_report(Fig16Scale::Tiny));
        assert_eq!(result.points.len(), 4);
        for pt in &result.points {
            assert!(pt.home_base >= 0.99, "{}: constrained ≥ baseline", pt.label);
            assert!(pt.mobile >= 0.99, "{}", pt.label);
            assert_eq!(
                pt.t, pt.g,
                "paper matches generator and teleporter bandwidth"
            );
            assert!(pt.t >= pt.p || pt.label == "t=g=1p");
        }
        assert!(result.baseline_us[0] > 0.0);
        assert!(result.baseline_us[1] > 0.0);
        // Mobile baseline beats Home-Base baseline (mostly 1-hop walks).
        assert!(result.baseline_us[1] < result.baseline_us[0]);
    }

    #[test]
    fn faceoff_covers_every_fabric_and_policy() {
        let report = faceoff_report(FaceoffScale::Tiny);
        assert_eq!(report.name, "topology_faceoff:Tiny");
        assert_eq!(
            report.points.len(),
            TopologyKind::ALL.len() * RoutingPolicy::ALL.len()
        );
        let csv = report.to_csv();
        assert!(csv.starts_with("index,topology,routing,makespan_us.mean"));
        for p in &report.points {
            assert!(p.mean("makespan_us").unwrap() > 0.0);
            assert!(p.mean("comms_completed").unwrap() > 0.0);
            // The label axes round-trip onto domain types.
            let kind = p.param("topology").as_text().unwrap();
            assert!(TopologyKind::parse(kind).is_some(), "{kind}");
            let routing = p.param("routing").as_text().unwrap();
            assert!(RoutingPolicy::parse(routing).is_some(), "{routing}");
        }
    }

    #[test]
    fn faceoff_orders_fabrics_by_connectivity() {
        let report = faceoff_report(FaceoffScale::Tiny);
        let metric = |topo: &str, name: &str| {
            report
                .points
                .iter()
                .find(|p| {
                    p.param("topology").as_text() == Some(topo)
                        && p.param("routing").as_text() == Some("dor")
                })
                .and_then(|p| p.mean(name))
                .expect("point exists")
        };
        // Shorter routes mean strictly less teleport work on identical
        // traffic: wrap links and Hamming routes both beat the mesh.
        let ops = |t: &str| metric(t, "teleport_ops");
        assert!(
            ops("torus") < ops("mesh"),
            "{} vs {}",
            ops("torus"),
            ops("mesh")
        );
        assert!(ops("hypercube") < ops("mesh"));
        // The torus converts that into wall-clock wins; the hypercube
        // does not necessarily (its higher radix splits the same t
        // teleporters across more dimension sets — at small t each set
        // serialises, which is exactly the trade the faceoff surfaces).
        let makespan = |t: &str| metric(t, "makespan_us");
        assert!(
            makespan("torus") <= makespan("mesh"),
            "torus {} vs mesh {}",
            makespan("torus"),
            makespan("mesh")
        );
    }

    #[test]
    fn faceoff_is_worker_count_independent() {
        // The acceptance gate: the real faceoff campaign sweeps
        // topology × routing and emits byte-identical reports for 1 and
        // 4 workers.
        let serial = run(&faceoff_spec(FaceoffScale::Tiny).with_workers(1))
            .unwrap()
            .report;
        let parallel = run(&faceoff_spec(FaceoffScale::Tiny).with_workers(4))
            .unwrap()
            .report;
        assert_eq!(serial.to_csv(), parallel.to_csv());
        assert_eq!(serial.to_json(), parallel.to_json());
    }

    #[test]
    fn mobile_suffers_at_extreme_purifier_starvation() {
        // The paper's key Mobile observation: taking resources away from
        // P nodes eventually hurts (t=g=8p worse than t=g=4p).
        let result = figure16_from_campaign(Fig16Scale::Tiny, &fig16_report(Fig16Scale::Tiny));
        let at = |label: &str| {
            result
                .points
                .iter()
                .find(|p| p.label == label)
                .unwrap_or_else(|| panic!("{label} missing"))
        };
        let r4 = at("t=g=4p");
        let r8 = at("t=g=8p");
        assert!(
            r8.mobile >= r4.mobile,
            "mobile at 8p ({}) should not beat 4p ({})",
            r8.mobile,
            r4.mobile
        );
    }
}
