//! Named scenario presets: the paper's figures plus the studies the
//! legacy API could not express without new code.

use std::sync::OnceLock;

use qic_analytic::figures::PairMetric;
use qic_analytic::strategy::PurifyPlacement;
use qic_fault::{FaultPlan, Hotspot};
use qic_modular::ModularSpec;
use qic_net::routing::RoutingPolicy;
use qic_net::topology::TopologyKind;

use crate::layout::Layout;
use crate::scenario::spec::{MachineSpec, NetPreset, ScenarioAxis, ScenarioSpec, WorkloadSpec};

/// The scale a registry entry is instantiated at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioScale {
    /// The figure-faithful scale (seconds of wall-clock for simulator
    /// scenarios; the paper's own Figure 16 scale stays reachable via
    /// [`crate::scenario::fig16_spec`]).
    Full,
    /// The `small_test` scale used by unit tests and the CI scenario
    /// smoke: every spec runs in well under a second.
    SmallTest,
}

/// One named preset: a constructor from scale plus gallery metadata.
#[derive(Clone)]
pub struct ScenarioEntry {
    /// Registry name (stable; scripts and docs key on it).
    pub name: &'static str,
    /// The paper figure it reproduces, or `"—"` for new studies.
    pub figure: &'static str,
    /// One-line description for the gallery.
    pub summary: &'static str,
    build: fn(ScenarioScale) -> ScenarioSpec,
}

impl ScenarioEntry {
    /// Instantiates the preset at a scale.
    pub fn spec(&self, scale: ScenarioScale) -> ScenarioSpec {
        (self.build)(scale)
    }
}

impl std::fmt::Debug for ScenarioEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioEntry")
            .field("name", &self.name)
            .field("figure", &self.figure)
            .finish_non_exhaustive()
    }
}

/// The registry of named scenarios.
///
/// Every entry covers the shape "machine × fabric × routing × workload
/// × purification strategy, swept and measured"; together they span all
/// three fabrics and both routing policies.
#[derive(Debug)]
pub struct ScenarioRegistry {
    entries: Vec<ScenarioEntry>,
}

impl ScenarioRegistry {
    /// The built-in registry.
    pub fn builtin() -> &'static ScenarioRegistry {
        static REGISTRY: OnceLock<ScenarioRegistry> = OnceLock::new();
        REGISTRY.get_or_init(|| ScenarioRegistry {
            entries: builtin_entries(),
        })
    }

    /// Every entry, in gallery order.
    pub fn entries(&self) -> &[ScenarioEntry] {
        &self.entries
    }

    /// Looks an entry up by name.
    pub fn get(&self, name: &str) -> Option<&ScenarioEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Instantiates a named preset at a scale.
    pub fn spec(&self, name: &str, scale: ScenarioScale) -> Option<ScenarioSpec> {
        self.get(name).map(|e| e.spec(scale))
    }
}

/// The Figure 16 spec for an explicit experiment scale — the one knob
/// the registry's `fig16` entry does not expose (its `Full` scale is
/// the CI-friendly `Reduced`; pass [`crate::experiment::Fig16Scale::Paper`]
/// here for the minutes-long paper configuration).
pub fn fig16_spec(scale: crate::experiment::Fig16Scale) -> ScenarioSpec {
    use crate::experiment::Fig16Scale;
    let machine = match scale {
        Fig16Scale::Paper => MachineSpec::preset(NetPreset::Paper),
        Fig16Scale::Reduced => MachineSpec::preset(NetPreset::Reduced),
        Fig16Scale::Tiny => small_machine(),
    };
    ScenarioSpec::machine(
        format!("figure16:{scale:?}"),
        machine,
        WorkloadSpec::Qft {
            qubits: scale.qft_size(),
        },
    )
    .with_axis(ScenarioAxis::ResourceRatio {
        area: scale.area(),
        ratios: vec![0, 1, 2, 4, 8],
    })
    .with_axis(ScenarioAxis::Layouts {
        layouts: Layout::ALL.to_vec(),
    })
}

/// The topology-faceoff spec for an explicit scale.
pub fn faceoff_spec(scale: crate::experiment::FaceoffScale) -> ScenarioSpec {
    use crate::experiment::FaceoffScale;
    let machine = match scale {
        // Keep the faceoff CI-friendly: the contention shape is set by
        // the fabric, not the purifier depth.
        FaceoffScale::Full => MachineSpec::preset(NetPreset::Reduced).with_purify_depth(2),
        FaceoffScale::Tiny => small_machine(),
    };
    ScenarioSpec::machine(
        format!("topology_faceoff:{scale:?}"),
        machine,
        WorkloadSpec::Qft {
            qubits: scale.qft_size(),
        },
    )
    .with_axis(ScenarioAxis::Topologies {
        kinds: TopologyKind::ALL.to_vec(),
    })
    .with_axis(ScenarioAxis::Routings {
        policies: RoutingPolicy::ALL.to_vec(),
    })
}

fn small_machine() -> MachineSpec {
    MachineSpec::preset(NetPreset::SmallTest)
        .with_purify_depth(2)
        .with_outputs_per_comm(3)
}

fn builtin_entries() -> Vec<ScenarioEntry> {
    vec![
        ScenarioEntry {
            name: "fig10",
            figure: "Figure 10",
            summary: "Total EPR pairs vs distance for the five purification placements",
            build: |scale| channel_figure(scale, "figure10", PairMetric::TotalPairs),
        },
        ScenarioEntry {
            name: "fig11",
            figure: "Figure 11",
            summary: "Teleported EPR pairs vs distance for the same placements",
            build: |scale| channel_figure(scale, "figure11", PairMetric::TeleportedPairs),
        },
        ScenarioEntry {
            name: "fig12",
            figure: "Figure 12",
            summary: "Teleported pairs vs uniform error rate; curves end near 1e-5",
            build: |scale| {
                let per_decade = match scale {
                    ScenarioScale::Full => 4,
                    ScenarioScale::SmallTest => 2,
                };
                ScenarioSpec::channel(
                    "figure12",
                    PurifyPlacement::EndpointsOnly,
                    16,
                    PairMetric::TeleportedPairs,
                )
                .with_axis(ScenarioAxis::Placements {
                    placements: PurifyPlacement::FIGURE_SET.to_vec(),
                })
                .with_axis(ScenarioAxis::ErrorRateLog {
                    start_exp: -9,
                    stop_exp: -4,
                    per_decade,
                })
            },
        },
        ScenarioEntry {
            name: "fig16",
            figure: "Figure 16",
            summary: "QFT makespan vs t:g:p split at fixed interconnect area, both layouts",
            build: |scale| {
                fig16_spec(match scale {
                    ScenarioScale::Full => crate::experiment::Fig16Scale::Reduced,
                    ScenarioScale::SmallTest => crate::experiment::Fig16Scale::Tiny,
                })
            },
        },
        ScenarioEntry {
            name: "topology_faceoff",
            figure: "—",
            summary: "Same QFT on mesh/torus/hypercube under both routing policies",
            build: |scale| {
                faceoff_spec(match scale {
                    ScenarioScale::Full => crate::experiment::FaceoffScale::Full,
                    ScenarioScale::SmallTest => crate::experiment::FaceoffScale::Tiny,
                })
            },
        },
        ScenarioEntry {
            name: "qft_torus",
            figure: "—",
            summary: "Figure 16's resource sweep on the wrap-around torus, both layouts",
            build: |scale| {
                let (machine, qft, area) = match scale {
                    ScenarioScale::Full => (
                        MachineSpec::preset(NetPreset::Reduced).with_purify_depth(2),
                        64,
                        90,
                    ),
                    ScenarioScale::SmallTest => (small_machine(), 16, 36),
                };
                ScenarioSpec::machine(
                    "qft_torus",
                    machine.with_topology(TopologyKind::Torus),
                    WorkloadSpec::Qft { qubits: qft },
                )
                .with_axis(ScenarioAxis::ResourceRatio {
                    area,
                    ratios: vec![0, 1, 2, 4, 8],
                })
                .with_axis(ScenarioAxis::Layouts {
                    layouts: Layout::ALL.to_vec(),
                })
            },
        },
        ScenarioEntry {
            name: "qft_hypercube",
            figure: "—",
            summary: "QFT on the binary hypercube: layout × routing at matched node count",
            build: |scale| {
                let (machine, qft) = match scale {
                    ScenarioScale::Full => (
                        MachineSpec::preset(NetPreset::Reduced)
                            .with_purify_depth(2)
                            .with_resources(12, 12, 6),
                        64,
                    ),
                    ScenarioScale::SmallTest => (small_machine(), 16),
                };
                ScenarioSpec::machine(
                    "qft_hypercube",
                    machine.with_topology(TopologyKind::Hypercube),
                    WorkloadSpec::Qft { qubits: qft },
                )
                .with_axis(ScenarioAxis::Layouts {
                    layouts: Layout::ALL.to_vec(),
                })
                .with_axis(ScenarioAxis::Routings {
                    policies: RoutingPolicy::ALL.to_vec(),
                })
            },
        },
        ScenarioEntry {
            name: "shor_kernel",
            figure: "Section 5.2",
            summary: "The Shor pipeline (QFT, MM, ME, composed kernel) per layout",
            build: |scale| {
                let (machine, register) = match scale {
                    ScenarioScale::Full => (
                        MachineSpec::preset(NetPreset::Reduced)
                            .with_grid(6, 6)
                            .with_resources(12, 12, 6)
                            .with_purify_depth(2),
                        8,
                    ),
                    ScenarioScale::SmallTest => (small_machine(), 4),
                };
                ScenarioSpec::machine(
                    "shor_kernel",
                    machine,
                    WorkloadSpec::Qft { qubits: register },
                )
                .with_axis(ScenarioAxis::Layouts {
                    layouts: Layout::ALL.to_vec(),
                })
                .with_axis(ScenarioAxis::Workloads {
                    workloads: vec![
                        WorkloadSpec::Qft { qubits: register },
                        WorkloadSpec::ModMul { register },
                        WorkloadSpec::ModExp { register, steps: 2 },
                        WorkloadSpec::Shor { register, steps: 1 },
                    ],
                })
            },
        },
        ScenarioEntry {
            name: "synthetic_stress",
            figure: "—",
            summary: "Seeded random traffic across all three fabrics (no locality to exploit)",
            build: |scale| {
                let (machine, qubits, comms) = match scale {
                    ScenarioScale::Full => (
                        MachineSpec::preset(NetPreset::Reduced).with_purify_depth(2),
                        16,
                        64,
                    ),
                    ScenarioScale::SmallTest => (small_machine(), 8, 16),
                };
                ScenarioSpec::machine(
                    "synthetic_stress",
                    machine,
                    WorkloadSpec::Synthetic {
                        qubits,
                        comms,
                        seed: 2006,
                    },
                )
                .with_axis(ScenarioAxis::Topologies {
                    kinds: TopologyKind::ALL.to_vec(),
                })
            },
        },
        ScenarioEntry {
            name: "resilience_sweep",
            figure: "—",
            summary: "Graceful-degradation curves: fault rate × fabric under adaptive routing",
            build: |scale| {
                // The synthetic traffic spans every site of the grid, so
                // any dead link or node is in somebody's path.
                let (machine, qubits, comms, rates) = match scale {
                    ScenarioScale::Full => (
                        MachineSpec::preset(NetPreset::Reduced).with_purify_depth(2),
                        64,
                        96,
                        vec![0.0, 0.05, 0.1, 0.15, 0.2],
                    ),
                    ScenarioScale::SmallTest => (small_machine(), 16, 24, vec![0.0, 0.08, 0.15]),
                };
                ScenarioSpec::machine(
                    "resilience_sweep",
                    machine
                        .with_routing(RoutingPolicy::MinimalAdaptive)
                        // Seed 42 damages all three fabrics even at the
                        // tiny 4×4 scale (seed 2006 happens to spare the
                        // 24-link mesh entirely).
                        .with_fault(FaultPlan::healthy().with_seed(42)),
                    WorkloadSpec::Synthetic {
                        qubits,
                        comms,
                        seed: 2006,
                    },
                )
                .with_axis(ScenarioAxis::FaultRate { rates })
                .with_axis(ScenarioAxis::Topologies {
                    kinds: TopologyKind::ALL.to_vec(),
                })
            },
        },
        ScenarioEntry {
            name: "degraded_faceoff",
            figure: "—",
            summary: "The topology faceoff on a damaged machine: dead links/nodes, degraded pools, a hot spot",
            build: |scale| {
                let (machine, qft, fault) = match scale {
                    ScenarioScale::Full => (
                        MachineSpec::preset(NetPreset::Reduced).with_purify_depth(2),
                        64,
                        FaultPlan::healthy()
                            .with_seed(2006)
                            .with_link_kill(0.08)
                            .with_node_loss(0.03)
                            .with_teleporter_loss(0.1)
                            .with_hotspot(Hotspot {
                                link: 0,
                                start_ns: 0,
                                end_ns: 2_000_000,
                                penalty_ns: 50_000,
                            }),
                    ),
                    ScenarioScale::SmallTest => (
                        small_machine(),
                        16,
                        FaultPlan::healthy()
                            .with_seed(2006)
                            .with_link_kill(0.1)
                            .with_node_loss(0.05)
                            .with_teleporter_loss(0.25)
                            .with_hotspot(Hotspot {
                                link: 0,
                                start_ns: 0,
                                end_ns: 1_000_000,
                                penalty_ns: 25_000,
                            }),
                    ),
                };
                ScenarioSpec::machine(
                    "degraded_faceoff",
                    machine.with_fault(fault),
                    WorkloadSpec::Qft { qubits: qft },
                )
                .with_axis(ScenarioAxis::Topologies {
                    kinds: TopologyKind::ALL.to_vec(),
                })
                .with_axis(ScenarioAxis::Routings {
                    policies: RoutingPolicy::ALL.to_vec(),
                })
            },
        },
        ScenarioEntry {
            name: "modular_faceoff",
            figure: "—",
            summary: "The topology faceoff on multi-module machines: 1/2/4 modules over an optical switch",
            build: |scale| {
                let (machine, qft) = match scale {
                    ScenarioScale::Full => (
                        MachineSpec::preset(NetPreset::Reduced)
                            .with_purify_depth(2)
                            .with_resources(12, 12, 6),
                        64,
                    ),
                    // The uplink port class needs one extra teleporter
                    // set over the flat small machine.
                    ScenarioScale::SmallTest => (small_machine().with_resources(6, 4, 2), 16),
                };
                ScenarioSpec::machine(
                    "modular_faceoff",
                    machine.with_modular(
                        ModularSpec::single()
                            .with_latency_ns(500)
                            .with_teleporter_slots(2)
                            .with_inter_fidelity(0.985),
                    ),
                    WorkloadSpec::Qft { qubits: qft },
                )
                .with_axis(ScenarioAxis::Topologies {
                    kinds: TopologyKind::ALL.to_vec(),
                })
                .with_axis(ScenarioAxis::Modules {
                    counts: vec![1, 2, 4],
                })
            },
        },
        ScenarioEntry {
            name: "cost_fidelity_pareto",
            figure: "—",
            summary: "Cost-fidelity Pareto sweep: fabric × module count × inter-tier unit cost",
            build: |scale| {
                let (machine, qubits, comms) = match scale {
                    ScenarioScale::Full => (
                        MachineSpec::preset(NetPreset::Reduced)
                            .with_purify_depth(2)
                            .with_resources(12, 12, 6),
                        16,
                        64,
                    ),
                    ScenarioScale::SmallTest => (small_machine().with_resources(6, 4, 2), 8, 16),
                };
                ScenarioSpec::machine(
                    "cost_fidelity_pareto",
                    machine.with_modular(
                        ModularSpec::single()
                            .with_latency_ns(800)
                            .with_teleporter_slots(2)
                            .with_inter_fidelity(0.98),
                    ),
                    WorkloadSpec::Synthetic {
                        qubits,
                        comms,
                        seed: 2006,
                    },
                )
                .with_axis(ScenarioAxis::Topologies {
                    kinds: TopologyKind::ALL.to_vec(),
                })
                .with_axis(ScenarioAxis::Modules { counts: vec![2, 4] })
                .with_axis(ScenarioAxis::InterTierCost {
                    costs: vec![1.0, 4.0, 16.0],
                })
            },
        },
        ScenarioEntry {
            name: "design_space",
            figure: "—",
            summary: "Grid × purifier depth × resource units over the simulator",
            build: |scale| {
                let (edges, depths, units): (Vec<u16>, Vec<u32>, Vec<u32>) = match scale {
                    ScenarioScale::Full => (vec![4, 5, 6, 8], vec![1, 2, 3, 4], vec![2, 4, 8, 16]),
                    ScenarioScale::SmallTest => (vec![4, 5], vec![1, 2], vec![2, 4]),
                };
                ScenarioSpec::machine(
                    "design_space",
                    MachineSpec::preset(NetPreset::SmallTest),
                    WorkloadSpec::Qft { qubits: 16 },
                )
                .with_seed(2006)
                .with_axis(ScenarioAxis::GridEdges { edges })
                .with_axis(ScenarioAxis::PurifyDepths { depths })
                .with_axis(ScenarioAxis::Units { units })
            },
        },
    ]
}

fn channel_figure(scale: ScenarioScale, name: &str, metric: PairMetric) -> ScenarioSpec {
    let max_hops = match scale {
        ScenarioScale::Full => 60,
        ScenarioScale::SmallTest => 24,
    };
    ScenarioSpec::channel(name, PurifyPlacement::EndpointsOnly, 16, metric)
        .with_axis(ScenarioAxis::Placements {
            placements: PurifyPlacement::FIGURE_SET.to_vec(),
        })
        .with_axis(ScenarioAxis::Hops {
            hops: (10..=max_hops).step_by(2).collect(),
        })
}
