//! The **Scenario API**: one declarative, serializable entry point for
//! every experiment.
//!
//! The paper's results are all instances of one shape — *machine ×
//! fabric × routing × workload × purification strategy, swept and
//! measured*. This module makes that shape data instead of code:
//!
//! * [`ScenarioSpec`] describes an experiment completely — machine
//!   scale and placement, [`qic_net::topology::TopologyKind`] +
//!   [`qic_net::routing::RoutingPolicy`], workload (QFT / MM / ME /
//!   Shor / synthetic or raw batch traffic), purification strategy,
//!   sweep axes, replicates and seeding — and round-trips through JSON
//!   ([`ScenarioSpec::to_json`] / [`ScenarioSpec::from_json`]);
//! * [`run`] is the single entry point: validate, build the campaign,
//!   evaluate deterministically, return a [`ScenarioReport`];
//! * [`ScenarioRegistry`] names the presets (`fig10`…`fig16`,
//!   `topology_faceoff`, and studies the legacy per-figure functions
//!   could not express, like the Figure 16 sweep on a torus).
//!
//! Figure presets reproduce the legacy campaign outputs **byte for
//! byte** (golden-file tests in the workspace root hold the line).
//!
//! # Example
//!
//! ```
//! use qic_core::scenario::{self, ScenarioRegistry, ScenarioScale};
//!
//! let spec = ScenarioRegistry::builtin()
//!     .spec("topology_faceoff", ScenarioScale::SmallTest)
//!     .expect("registered");
//! // The spec is data: serialize it, ship it, edit it, rerun it.
//! let same = scenario::ScenarioSpec::from_json(&spec.to_json())?;
//! assert_eq!(spec, same);
//! let report = scenario::run(&same)?;
//! assert_eq!(report.report.points.len(), 6); // 3 fabrics × 2 policies
//! # Ok::<(), qic_core::scenario::ScenarioError>(())
//! ```

mod digest;
mod registry;
mod runner;
mod spec;

// The strict JSON model the spec codec is built on lives in `qic-sweep`
// (`qic_sweep::json`), where the campaign record and checkpoint codecs
// share it; the error type stays re-exported here so `ScenarioError::Json`
// keeps its established path.
pub use digest::SpecDigest;
pub use qic_sweep::json::JsonError;
pub use registry::{faceoff_spec, fig16_spec, ScenarioEntry, ScenarioRegistry, ScenarioScale};
pub use runner::{
    run, run_budgeted, run_on, run_on_cancellable, run_shard, ScenarioProgress, ScenarioReport,
};
pub use spec::{
    ratio_resources, CheckpointSpec, ExperimentSpec, MachineSpec, NetPreset, ObserveSpec,
    ScenarioAxis, ScenarioError, ScenarioSpec, WorkloadSpec,
};

#[cfg(test)]
mod tests {
    use super::*;
    use qic_analytic::figures::PairMetric;
    use qic_analytic::strategy::PurifyPlacement;
    use qic_net::routing::RoutingPolicy;
    use qic_net::topology::TopologyKind;

    use crate::layout::Layout;

    #[test]
    fn registry_has_the_promised_coverage() {
        let registry = ScenarioRegistry::builtin();
        assert!(registry.entries().len() >= 8);
        let mut fabrics = std::collections::HashSet::new();
        let mut routings = std::collections::HashSet::new();
        for entry in registry.entries() {
            for scale in [ScenarioScale::Full, ScenarioScale::SmallTest] {
                let spec = entry.spec(scale);
                spec.validate()
                    .unwrap_or_else(|e| panic!("{} at {scale:?}: {e}", entry.name));
                if let ExperimentSpec::Machine { machine, .. } = &spec.experiment {
                    fabrics.insert(machine.topology);
                    routings.insert(machine.routing);
                }
                for axis in &spec.axes {
                    match axis {
                        ScenarioAxis::Topologies { kinds } => fabrics.extend(kinds.iter()),
                        ScenarioAxis::Routings { policies } => routings.extend(policies.iter()),
                        _ => {}
                    }
                }
            }
        }
        assert_eq!(fabrics.len(), TopologyKind::ALL.len(), "{fabrics:?}");
        assert_eq!(routings.len(), RoutingPolicy::ALL.len(), "{routings:?}");
    }

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let registry = ScenarioRegistry::builtin();
        for entry in registry.entries() {
            assert!(registry.get(entry.name).is_some());
            assert_eq!(
                registry
                    .entries()
                    .iter()
                    .filter(|e| e.name == entry.name)
                    .count(),
                1,
                "duplicate registry name {}",
                entry.name
            );
        }
        assert!(registry.get("nope").is_none());
        assert!(registry.spec("nope", ScenarioScale::Full).is_none());
    }

    #[test]
    fn every_registry_spec_round_trips_json() {
        for entry in ScenarioRegistry::builtin().entries() {
            for scale in [ScenarioScale::Full, ScenarioScale::SmallTest] {
                let spec = entry.spec(scale);
                let json = spec.to_json();
                let back = ScenarioSpec::from_json(&json)
                    .unwrap_or_else(|e| panic!("{} at {scale:?}: {e}\n{json}", entry.name));
                assert_eq!(spec, back, "{} at {scale:?}", entry.name);
            }
        }
    }

    #[test]
    fn observe_blocks_round_trip_and_validate() {
        let spec = ScenarioRegistry::builtin()
            .spec("synthetic_stress", ScenarioScale::SmallTest)
            .unwrap()
            .with_observe(ObserveSpec::to_dir("target/observe_codec").with_bins(16));
        spec.validate().unwrap();
        let json = spec.to_json();
        assert!(json.contains("\"observe\""));
        assert_eq!(ScenarioSpec::from_json(&json).unwrap(), spec);

        // Unobserved documents never mention the field.
        let plain = ScenarioRegistry::builtin()
            .spec("synthetic_stress", ScenarioScale::SmallTest)
            .unwrap();
        assert!(!plain.to_json().contains("observe"));

        // Validation rejects the degenerate settings.
        let mut bad = spec.clone();
        bad.observe.as_mut().unwrap().dir.clear();
        assert!(bad.validate().is_err(), "empty dir must fail");
        let mut bad = spec.clone();
        bad.observe.as_mut().unwrap().bins = 0;
        assert!(bad.validate().is_err(), "zero bins must fail");
        let channel = ScenarioSpec::channel(
            "ch",
            PurifyPlacement::VirtualWire { rounds: 1 },
            20,
            PairMetric::TotalPairs,
        )
        .with_observe(ObserveSpec::to_dir("target/observe_codec"));
        assert!(
            channel.validate().is_err(),
            "channel scenarios have nothing to trace"
        );
    }

    #[test]
    fn checkpoint_blocks_round_trip_and_validate() {
        let spec = ScenarioRegistry::builtin()
            .spec("synthetic_stress", ScenarioScale::SmallTest)
            .unwrap()
            .with_checkpoint(CheckpointSpec::to_dir("target/ckpt_codec").with_every(4));
        spec.validate().unwrap();
        let json = spec.to_json();
        assert!(json.contains("\"checkpoint\""));
        assert_eq!(ScenarioSpec::from_json(&json).unwrap(), spec);

        // Uncheckpointed documents never mention the field.
        let plain = ScenarioRegistry::builtin()
            .spec("synthetic_stress", ScenarioScale::SmallTest)
            .unwrap();
        assert!(!plain.to_json().contains("checkpoint"));

        // Unknown fields inside the block are rejected, not ignored.
        let doctored = json.replacen("\"every\"", "\"evry\"", 1);
        assert!(ScenarioSpec::from_json(&doctored).is_err());

        // Validation rejects the degenerate settings.
        let mut bad = spec.clone();
        bad.checkpoint.as_mut().unwrap().dir.clear();
        assert!(bad.validate().is_err(), "empty dir must fail");
        let mut bad = spec.clone();
        bad.checkpoint.as_mut().unwrap().every = 0;
        assert!(bad.validate().is_err(), "zero interval must fail");

        // Channel scenarios checkpoint too — the closed-form model is
        // cheap, but resumability is a property of the campaign, not of
        // what a point evaluates.
        let channel = ScenarioSpec::channel(
            "ch",
            PurifyPlacement::VirtualWire { rounds: 1 },
            20,
            PairMetric::TotalPairs,
        )
        .with_checkpoint(CheckpointSpec::to_dir("target/ckpt_codec"));
        channel.validate().unwrap();
    }

    #[test]
    fn run_is_the_single_entry_point_for_both_families() {
        // A machine scenario …
        let machine = ScenarioRegistry::builtin()
            .spec("synthetic_stress", ScenarioScale::SmallTest)
            .unwrap();
        let report = run(&machine).unwrap();
        assert_eq!(report.report.points.len(), 3);
        for p in &report.report.points {
            assert!(p.mean("makespan_us").unwrap() > 0.0);
        }
        // … and an analytic channel scenario go through the same door.
        let channel = ScenarioSpec::channel(
            "one_point",
            PurifyPlacement::VirtualWire { rounds: 1 },
            20,
            PairMetric::TotalPairs,
        );
        let report = run(&channel).unwrap();
        assert_eq!(report.report.points.len(), 1);
        assert!(report.report.points[0].mean("pairs").unwrap() > 0.0);
        assert!(report.to_csv().starts_with("index,"));
        assert!(report.to_json().starts_with("{\n"));
    }

    #[test]
    fn batch_traffic_drives_the_simulator_directly() {
        let spec = ScenarioSpec::machine(
            "crossing_batch",
            MachineSpec::preset(NetPreset::SmallTest),
            WorkloadSpec::Batch {
                comms: vec![((0, 0), (3, 3)), ((3, 0), (0, 3))],
            },
        )
        .with_axis(ScenarioAxis::Topologies {
            kinds: vec![TopologyKind::Mesh, TopologyKind::Torus],
        });
        let report = run(&spec).unwrap();
        assert_eq!(report.report.points.len(), 2);
        for p in &report.report.points {
            assert_eq!(p.mean("comms_completed"), Some(2.0));
        }
    }

    #[test]
    fn validation_rejects_bad_specs_with_context() {
        // Channel axis on a machine experiment.
        let spec = ScenarioSpec::machine(
            "mixed",
            MachineSpec::preset(NetPreset::SmallTest),
            WorkloadSpec::Qft { qubits: 8 },
        )
        .with_axis(ScenarioAxis::Hops { hops: vec![4] });
        assert!(matches!(
            spec.validate().unwrap_err(),
            ScenarioError::Spec { .. }
        ));

        // A sweep point whose config fails qic-net validation: the
        // hypercube needs a power-of-two node count.
        let spec = ScenarioSpec::machine(
            "bad_grid",
            MachineSpec::preset(NetPreset::SmallTest).with_grid(5, 4),
            WorkloadSpec::Qft { qubits: 8 },
        )
        .with_axis(ScenarioAxis::Topologies {
            kinds: vec![TopologyKind::Mesh, TopologyKind::Hypercube],
        });
        let err = spec.validate().unwrap_err();
        match &err {
            ScenarioError::Config {
                scenario,
                point,
                source,
            } => {
                assert_eq!(scenario, "bad_grid");
                assert!(point.as_deref().unwrap().contains("hypercube"), "{point:?}");
                assert_eq!(source.field_name(), "topology");
            }
            other => panic!("expected config error, got {other}"),
        }
        assert!(err.to_string().contains("bad_grid"));
        assert!(std::error::Error::source(&err).is_some());

        // A workload that does not fit the grid.
        let spec = ScenarioSpec::machine(
            "too_big",
            MachineSpec::preset(NetPreset::SmallTest),
            WorkloadSpec::Qft { qubits: 64 },
        );
        let err = spec.validate().unwrap_err();
        assert!(err.to_string().contains("16 sites"), "{err}");

        // Batch traffic off the grid.
        let spec = ScenarioSpec::machine(
            "off_grid",
            MachineSpec::preset(NetPreset::SmallTest),
            WorkloadSpec::Batch {
                comms: vec![((0, 0), (9, 9))],
            },
        );
        assert!(spec.validate().is_err());

        // run() refuses invalid specs instead of panicking mid-campaign.
        assert!(run(&spec).is_err());

        // Ratios that would truncate in u32 arithmetic are rejected, not
        // silently wrapped.
        let spec = ScenarioSpec::machine(
            "huge_ratio",
            MachineSpec::preset(NetPreset::SmallTest),
            WorkloadSpec::Qft { qubits: 8 },
        )
        .with_axis(ScenarioAxis::ResourceRatio {
            area: 36,
            ratios: vec![0, 1i64 << 32],
        });
        assert!(spec.validate().unwrap_err().to_string().contains("u32"));

        // Zero-instruction synthetic traffic is as degenerate as an
        // empty batch.
        let spec = ScenarioSpec::machine(
            "empty_synthetic",
            MachineSpec::preset(NetPreset::SmallTest),
            WorkloadSpec::Synthetic {
                qubits: 8,
                comms: 0,
                seed: 1,
            },
        );
        assert!(spec.validate().is_err());

        // A degenerate error-rate axis gets the specific diagnosis, not
        // the generic "axis has no values".
        let spec = ScenarioSpec::channel(
            "bad_exponents",
            PurifyPlacement::EndpointsOnly,
            16,
            PairMetric::TeleportedPairs,
        )
        .with_axis(ScenarioAxis::ErrorRateLog {
            start_exp: -4,
            stop_exp: -9,
            per_decade: 4,
        });
        let err = spec.validate().unwrap_err().to_string();
        assert!(err.contains("stop_exp > start_exp"), "{err}");
    }

    #[test]
    fn json_rejects_unknown_fields_and_kinds() {
        let spec = ScenarioRegistry::builtin()
            .spec("fig12", ScenarioScale::SmallTest)
            .unwrap();
        let json = spec.to_json();
        let typo = json.replace("\"replicates\"", "\"replicants\"");
        assert!(matches!(
            ScenarioSpec::from_json(&typo),
            Err(ScenarioError::Json(_))
        ));
        let bad_kind = json.replace("\"channel\"", "\"chanel\"");
        assert!(ScenarioSpec::from_json(&bad_kind).is_err());
        assert!(ScenarioSpec::from_json("not json").is_err());
    }

    #[test]
    fn ratio_resources_matches_the_paper_axis() {
        assert_eq!(ratio_resources(0, 90), (1024, 1024, 1024));
        assert_eq!(ratio_resources(1, 90), (30, 30, 30));
        assert_eq!(ratio_resources(2, 90), (36, 36, 18));
        assert_eq!(ratio_resources(4, 90), (40, 40, 10));
        assert_eq!(ratio_resources(8, 90), (40, 40, 5));
        assert_eq!(ratio_resources(1, 36), (12, 12, 12));
        assert_eq!(ratio_resources(8, 36), (16, 16, 2));
    }

    #[test]
    fn workload_axis_changes_the_program_per_point() {
        let spec = ScenarioRegistry::builtin()
            .spec("shor_kernel", ScenarioScale::SmallTest)
            .unwrap();
        let report = run(&spec).unwrap();
        // 2 layouts × 4 workloads.
        assert_eq!(report.report.points.len(), 8);
        let comms = |idx: usize| report.report.points[idx].mean("comms_completed").unwrap();
        // QFT-4 (6 instructions) completes fewer comms than the Shor
        // kernel (ME + QFT), whatever the layout.
        assert!(comms(0) < comms(3));
    }

    #[test]
    fn specs_with_explicit_layouts_round_trip_behaviour() {
        // The same spec, serialized and re-run, produces the identical
        // report (the whole point of a declarative scenario).
        let spec = ScenarioRegistry::builtin()
            .spec("fig16", ScenarioScale::SmallTest)
            .unwrap();
        let direct = run(&spec).unwrap();
        let reloaded = run(&ScenarioSpec::from_json(&spec.to_json()).unwrap()).unwrap();
        assert_eq!(direct.report.to_json(), reloaded.report.to_json());
        assert_eq!(direct.report.to_csv(), reloaded.report.to_csv());
    }

    #[test]
    fn fault_scenarios_report_resilience_metrics() {
        let spec = ScenarioRegistry::builtin()
            .spec("resilience_sweep", ScenarioScale::SmallTest)
            .unwrap();
        let report = run(&spec).unwrap();
        assert_eq!(report.report.points.len(), 9, "3 rates × 3 fabrics");
        for p in &report.report.points {
            // Every point (including rate 0) reports the fault columns,
            // and the accounting always closes.
            let delivered = p.mean("comms_delivered").unwrap();
            let dropped = p.mean("comms_dropped").unwrap();
            assert_eq!(delivered + dropped, p.mean("comms_completed").unwrap());
            assert!(p.mean("route_inflation").unwrap() >= 0.0);
        }
        // The rate-0 column is the healthy machine: nothing drops,
        // nothing detours.
        let p0 = &report.report.points[0];
        assert_eq!(p0.param("fault_rate").as_f64(), Some(0.0));
        assert_eq!(p0.mean("comms_dropped"), Some(0.0));
        assert_eq!(p0.mean("comms_rerouted"), Some(0.0));
        assert_eq!(p0.mean("route_inflation"), Some(1.0));
    }

    #[test]
    fn degraded_faceoff_covers_every_fabric_and_policy() {
        let spec = ScenarioRegistry::builtin()
            .spec("degraded_faceoff", ScenarioScale::SmallTest)
            .unwrap();
        let report = run(&spec).unwrap();
        assert_eq!(report.report.points.len(), 6);
        // The damage is real: at least one point loses communications
        // or detours (the plan kills 10% of links and 5% of nodes).
        let damaged = report.report.points.iter().any(|p| {
            p.mean("comms_dropped").unwrap_or(0.0) > 0.0
                || p.mean("comms_rerouted").unwrap_or(0.0) > 0.0
        });
        assert!(damaged, "the degraded faceoff must show damage");
    }

    #[test]
    fn fault_specs_round_trip_json_with_plans() {
        use qic_fault::{FaultPlan, Hotspot};
        let spec = ScenarioSpec::machine(
            "fault_round_trip",
            MachineSpec::preset(NetPreset::SmallTest).with_fault(
                FaultPlan::healthy()
                    .with_seed(99)
                    .with_link_kill(0.125)
                    .with_teleporter_loss(0.25)
                    .with_dead_node(3)
                    .with_hotspot(Hotspot {
                        link: 1,
                        start_ns: 100,
                        end_ns: 200_000,
                        penalty_ns: 1_500,
                    }),
            ),
            WorkloadSpec::Qft { qubits: 8 },
        )
        .with_axis(ScenarioAxis::FaultRate {
            rates: vec![0.0, 0.125, 0.5],
        });
        spec.validate().unwrap();
        let back = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, back, "fault plans survive the JSON codec");
    }

    #[test]
    fn fault_validation_rejects_bad_plans() {
        use qic_fault::FaultPlan;
        // Rates above 1 are not probabilities (axis and plan alike).
        let spec = ScenarioSpec::machine(
            "bad_rate",
            MachineSpec::preset(NetPreset::SmallTest),
            WorkloadSpec::Qft { qubits: 8 },
        )
        .with_axis(ScenarioAxis::FaultRate { rates: vec![1.5] });
        assert!(spec.validate().unwrap_err().to_string().contains("[0, 1]"));

        // Explicit components must exist on the point's fabric.
        let spec = ScenarioSpec::machine(
            "off_fabric",
            MachineSpec::preset(NetPreset::SmallTest)
                .with_fault(FaultPlan::healthy().with_dead_link(10_000)),
            WorkloadSpec::Qft { qubits: 8 },
        );
        let err = spec.validate().unwrap_err().to_string();
        assert!(err.contains("dead link 10000"), "{err}");

        // Masking plans need ≥ 2 teleporters (bubble flow control); a
        // single-teleporter machine is already rejected by the
        // port-class coverage rule, which subsumes it.
        let mut machine = MachineSpec::preset(NetPreset::SmallTest)
            .with_fault(FaultPlan::healthy().with_link_kill(0.1));
        machine.teleporters = 1;
        let spec = ScenarioSpec::machine("starved", machine, WorkloadSpec::Qft { qubits: 8 });
        assert!(spec.validate().is_err());

        // A FaultRate axis on a channel experiment is rejected.
        let spec = ScenarioSpec::channel(
            "channel_faults",
            PurifyPlacement::EndpointsOnly,
            16,
            PairMetric::TotalPairs,
        )
        .with_axis(ScenarioAxis::FaultRate { rates: vec![0.1] });
        assert!(spec.validate().is_err());
    }

    #[test]
    fn layout_labels_round_trip() {
        for layout in Layout::ALL {
            assert_eq!(Layout::parse(&layout.to_string()), Some(layout));
        }
        assert_eq!(Layout::parse("homebase"), None);
    }
}
