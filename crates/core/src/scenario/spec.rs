//! `ScenarioSpec`: the declarative, serializable experiment description.

use std::fmt;

use serde::{Deserialize, Serialize};

use qic_analytic::figures::PairMetric;
use qic_analytic::strategy::PurifyPlacement;
use qic_fault::{FaultPlan, Hotspot};
use qic_modular::{Interconnect, ModularSpec};
use qic_net::config::{ConfigError, NetConfig};
use qic_net::routing::RoutingPolicy;
use qic_net::topology::TopologyKind;
use qic_physics::error::ErrorRates;
use qic_sweep::{Axis, CheckpointError, ParamSpace};
use qic_workload::Program;

use crate::layout::Layout;
use qic_sweep::json::{check_fields, get, get_opt, ints, obj, Json, JsonError};

/// A named base network configuration a [`MachineSpec`] starts from.
///
/// The preset supplies the physics constants (operation times, error
/// rates, hop/turn cells, event budget); everything a scenario sweeps
/// or overrides is an explicit [`MachineSpec`] field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetPreset {
    /// [`NetConfig::paper_scale`] — the paper's 16×16, depth-3 setup.
    Paper,
    /// [`NetConfig::reduced`] — 8×8, level-1 code, fast benchmarking.
    Reduced,
    /// [`NetConfig::small_test`] — 4×4 deterministic test scale.
    SmallTest,
}

impl NetPreset {
    /// The preset's base configuration.
    pub fn net(self) -> NetConfig {
        match self {
            NetPreset::Paper => NetConfig::paper_scale(),
            NetPreset::Reduced => NetConfig::reduced(),
            NetPreset::SmallTest => NetConfig::small_test(),
        }
    }

    /// A compact label (`"paper"` / `"reduced"` / `"small_test"`).
    pub fn label(self) -> &'static str {
        match self {
            NetPreset::Paper => "paper",
            NetPreset::Reduced => "reduced",
            NetPreset::SmallTest => "small_test",
        }
    }

    /// Parses a [`NetPreset::label`].
    pub fn parse(label: &str) -> Option<NetPreset> {
        match label {
            "paper" => Some(NetPreset::Paper),
            "reduced" => Some(NetPreset::Reduced),
            "small_test" => Some(NetPreset::SmallTest),
            _ => None,
        }
    }
}

/// The machine side of a simulation scenario: scale, fabric, routing,
/// layout and the Section 5.3 resource knobs, all as data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Base preset supplying physics constants.
    pub preset: NetPreset,
    /// Grid width in sites.
    pub width: u16,
    /// Grid height in sites.
    pub height: u16,
    /// Interconnect fabric.
    pub topology: TopologyKind,
    /// Channel routing policy.
    pub routing: RoutingPolicy,
    /// Logical-qubit layout.
    pub layout: Layout,
    /// Teleporters per T' node (`t`).
    pub teleporters: u32,
    /// Generators per G node (`g`).
    pub generators: u32,
    /// Queue purifiers per P node (`p`).
    pub purifiers: u32,
    /// Purification rounds per delivered pair.
    pub purify_depth: u32,
    /// Purified pairs per logical communication.
    pub outputs_per_comm: u32,
    /// Optional fault model (`qic-fault`): when set, every point runs
    /// over the compiled `DegradedFabric` and reports resilience
    /// metrics. `None` (the default, and the only value the figure
    /// presets use) is the healthy machine — byte-identical to the
    /// pre-fault-layer simulator.
    pub fault: Option<FaultPlan>,
    /// Optional modular block (`qic-modular`): when set, `modules`
    /// copies of the `width`×`height` fabric are composed through the
    /// chosen inter-module tier and every point runs over the
    /// `ModularFabric`. `None` (the default; all pre-modular presets)
    /// is the flat machine — byte-identical to the single-tier
    /// simulator. (Boxed: the block only exists on modular machines,
    /// and every flat spec would otherwise carry its footprint.)
    pub modular: Option<Box<ModularSpec>>,
}

impl MachineSpec {
    /// A machine spec whose fields mirror `preset` exactly (Home-Base
    /// layout, the preset's grid and resources).
    pub fn preset(preset: NetPreset) -> MachineSpec {
        let net = preset.net();
        MachineSpec {
            preset,
            width: net.mesh_width,
            height: net.mesh_height,
            topology: net.topology,
            routing: net.routing,
            layout: Layout::HomeBase,
            teleporters: net.teleporters_per_node,
            generators: net.generators_per_edge,
            purifiers: net.purifiers_per_site,
            purify_depth: net.purify_depth,
            outputs_per_comm: net.outputs_per_comm,
            fault: None,
            modular: None,
        }
    }

    /// Sets the grid dimensions.
    pub fn with_grid(mut self, width: u16, height: u16) -> MachineSpec {
        self.width = width;
        self.height = height;
        self
    }

    /// Sets the fabric.
    pub fn with_topology(mut self, kind: TopologyKind) -> MachineSpec {
        self.topology = kind;
        self
    }

    /// Sets the routing policy.
    pub fn with_routing(mut self, routing: RoutingPolicy) -> MachineSpec {
        self.routing = routing;
        self
    }

    /// Sets the layout.
    pub fn with_layout(mut self, layout: Layout) -> MachineSpec {
        self.layout = layout;
        self
    }

    /// Sets `t`, `g`, `p` together.
    pub fn with_resources(mut self, t: u32, g: u32, p: u32) -> MachineSpec {
        self.teleporters = t;
        self.generators = g;
        self.purifiers = p;
        self
    }

    /// Sets the purifier depth.
    pub fn with_purify_depth(mut self, depth: u32) -> MachineSpec {
        self.purify_depth = depth;
        self
    }

    /// Sets purified pairs per communication.
    pub fn with_outputs_per_comm(mut self, outputs: u32) -> MachineSpec {
        self.outputs_per_comm = outputs;
        self
    }

    /// Attaches a fault model: the machine runs degraded by `plan`
    /// (a [`ScenarioAxis::FaultRate`] axis overrides its link-kill rate
    /// per point).
    pub fn with_fault(mut self, plan: FaultPlan) -> MachineSpec {
        self.fault = Some(plan);
        self
    }

    /// Attaches a modular block: the machine becomes `spec.modules`
    /// copies of its fabric joined through the block's inter-module
    /// tier (the `Modules` / `InterTierLatency` / `InterTierCost` axes
    /// override its knobs per point).
    pub fn with_modular(mut self, spec: ModularSpec) -> MachineSpec {
        self.modular = Some(Box::new(spec));
        self
    }

    /// Materialises the full [`NetConfig`]: the preset's physics
    /// constants with this spec's declarative fields applied. The
    /// config keeps the preset's seed; at run time the campaign
    /// engine's derived per-point seed replaces it (see
    /// [`ScenarioSpec::seed`]).
    pub fn net_config(&self) -> NetConfig {
        let mut net = self.preset.net();
        net.mesh_width = self.width;
        net.mesh_height = self.height;
        net.topology = self.topology;
        net.routing = self.routing;
        net.teleporters_per_node = self.teleporters;
        net.generators_per_edge = self.generators;
        net.purifiers_per_site = self.purifiers;
        net.purify_depth = self.purify_depth;
        net.outputs_per_comm = self.outputs_per_comm;
        net
    }
}

/// The workload a simulation scenario drives through the machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// The Quantum Fourier Transform on `qubits` logical qubits.
    Qft {
        /// Logical qubit count (≥ 2).
        qubits: u32,
    },
    /// Modular multiplication over two `register`-qubit registers.
    ModMul {
        /// Register width (≥ 1).
        register: u32,
    },
    /// Modular exponentiation: `steps` square-and-multiply iterations.
    ModExp {
        /// Register width (≥ 2).
        register: u32,
        /// Square-and-multiply steps (≥ 1).
        steps: u32,
    },
    /// The composed Shor kernel (ME then QFT over register A).
    Shor {
        /// Register width (≥ 2).
        register: u32,
        /// ME steps (≥ 1).
        steps: u32,
    },
    /// Seeded uniform-random two-qubit interactions
    /// ([`Program::synthetic`]).
    Synthetic {
        /// Logical qubit count (≥ 2).
        qubits: u32,
        /// Number of instructions.
        comms: u32,
        /// Traffic seed.
        seed: u64,
    },
    /// Raw batch traffic: `(src, dst)` site pairs submitted at time
    /// zero through [`qic_net::sim::BatchDriver`], bypassing the
    /// logical scheduler (layout is ignored).
    Batch {
        /// `(src, dst)` grid coordinates, as `((x, y), (x, y))`.
        comms: Vec<((u16, u16), (u16, u16))>,
    },
}

impl WorkloadSpec {
    /// The logical program this workload generates, or `None` for raw
    /// batch traffic (which has no program).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range parameters; [`ScenarioSpec::validate`]
    /// checks them first.
    pub fn program(&self) -> Option<Program> {
        match *self {
            WorkloadSpec::Qft { qubits } => Some(Program::qft(qubits)),
            WorkloadSpec::ModMul { register } => Some(Program::modular_multiplication(register)),
            WorkloadSpec::ModExp { register, steps } => {
                Some(Program::modular_exponentiation(register, steps))
            }
            WorkloadSpec::Shor { register, steps } => Some(Program::shor_kernel(register, steps)),
            WorkloadSpec::Synthetic {
                qubits,
                comms,
                seed,
            } => Some(Program::synthetic(qubits, comms as usize, seed)),
            WorkloadSpec::Batch { .. } => None,
        }
    }

    /// Logical qubits (grid sites) the workload needs.
    pub fn qubits(&self) -> u32 {
        match *self {
            WorkloadSpec::Qft { qubits } | WorkloadSpec::Synthetic { qubits, .. } => qubits,
            WorkloadSpec::ModMul { register }
            | WorkloadSpec::ModExp { register, .. }
            | WorkloadSpec::Shor { register, .. } => 2 * register,
            WorkloadSpec::Batch { .. } => 0,
        }
    }

    /// A compact label for sweep axes (`"qft:16"`, `"me:4x2"`, …).
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::Qft { qubits } => format!("qft:{qubits}"),
            WorkloadSpec::ModMul { register } => format!("mm:{register}"),
            WorkloadSpec::ModExp { register, steps } => format!("me:{register}x{steps}"),
            WorkloadSpec::Shor { register, steps } => format!("shor:{register}x{steps}"),
            WorkloadSpec::Synthetic { qubits, comms, .. } => {
                format!("synthetic:{qubits}x{comms}")
            }
            WorkloadSpec::Batch { comms } => format!("batch:{}", comms.len()),
        }
    }

    fn check(&self, scenario: &str) -> Result<(), ScenarioError> {
        let spec_err = |problem: String| ScenarioError::Spec {
            scenario: scenario.to_string(),
            problem,
        };
        match *self {
            WorkloadSpec::Qft { qubits } | WorkloadSpec::Synthetic { qubits, .. } if qubits < 2 => {
                Err(spec_err(format!(
                    "workload {} needs ≥ 2 qubits",
                    self.label()
                )))
            }
            WorkloadSpec::ModMul { register: 0 } => Err(spec_err(
                "modular multiplication needs a non-empty register".into(),
            )),
            WorkloadSpec::ModExp { register, steps } | WorkloadSpec::Shor { register, steps }
                if register < 2 || steps == 0 =>
            {
                Err(spec_err(format!(
                    "workload {} needs register ≥ 2 and steps ≥ 1",
                    self.label()
                )))
            }
            WorkloadSpec::Synthetic { comms: 0, .. } => Err(spec_err(
                "synthetic workloads need at least one instruction".into(),
            )),
            WorkloadSpec::Batch { ref comms } if comms.is_empty() => Err(spec_err(
                "batch workloads need at least one communication".into(),
            )),
            _ => Ok(()),
        }
    }
}

/// One sweep dimension of a scenario.
///
/// Each variant both defines a campaign axis (name + values, exactly as
/// the legacy per-figure campaigns built them) and a binding that
/// rewrites the per-point configuration before evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScenarioAxis {
    /// Figure 16's joint resource axis: `t = g = R·p` under a fixed
    /// interconnect area budget; ratio `0` encodes the unlimited
    /// `t = g = p = 1024` baseline. Campaign axis `ratio`.
    ResourceRatio {
        /// Unit-area resource budget shared by `t + g + p`.
        area: u32,
        /// The `t:p` ratios to sweep (`0` = unlimited baseline).
        ratios: Vec<i64>,
    },
    /// Sweeps the logical-qubit layout. Campaign axis `layout`.
    Layouts {
        /// Layouts in sweep order.
        layouts: Vec<Layout>,
    },
    /// Sweeps the interconnect fabric. Campaign axis `topology`.
    Topologies {
        /// Fabric kinds in sweep order.
        kinds: Vec<TopologyKind>,
    },
    /// Sweeps the routing policy. Campaign axis `routing`.
    Routings {
        /// Policies in sweep order.
        policies: Vec<RoutingPolicy>,
    },
    /// Sweeps a square grid edge (width = height). Campaign axis `mesh`.
    GridEdges {
        /// Edge lengths in sweep order.
        edges: Vec<u16>,
    },
    /// Sweeps the purifier depth. Campaign axis `depth`.
    PurifyDepths {
        /// Depths in sweep order.
        depths: Vec<u32>,
    },
    /// Sweeps `t = g = p` together. Campaign axis `units`.
    Units {
        /// Unit counts in sweep order.
        units: Vec<u32>,
    },
    /// Sweeps teleporters per node. Campaign axis `t`.
    Teleporters {
        /// Counts in sweep order.
        values: Vec<u32>,
    },
    /// Sweeps generators per edge. Campaign axis `g`.
    Generators {
        /// Counts in sweep order.
        values: Vec<u32>,
    },
    /// Sweeps purifiers per site. Campaign axis `p`.
    Purifiers {
        /// Counts in sweep order.
        values: Vec<u32>,
    },
    /// Sweeps the workload itself. Campaign axis `workload`.
    Workloads {
        /// Workloads in sweep order.
        workloads: Vec<WorkloadSpec>,
    },
    /// Sweeps the fault model's Bernoulli **link-kill rate** (the
    /// degradation curve axis). Overrides the machine's base
    /// [`FaultPlan`] per point, creating a healthy-default plan when
    /// the machine carries none, so a rate of `0.0` is the healthy
    /// fabric. Campaign axis `fault_rate`.
    FaultRate {
        /// Link-kill rates in sweep order (probabilities).
        rates: Vec<f64>,
    },
    /// Sweeps the module count of a modular machine. Overrides the
    /// machine's [`ModularSpec`] per point, creating a single-module
    /// default block when the machine carries none, so a count of `1`
    /// is the flat machine. Campaign axis `modules`.
    Modules {
        /// Module counts in sweep order.
        counts: Vec<u32>,
    },
    /// Sweeps the inter-module tier's per-stage latency (nanoseconds).
    /// Creates a default modular block when the machine carries none.
    /// Campaign axis `inter_latency`.
    InterTierLatency {
        /// Stage latencies in sweep order (nanoseconds).
        latencies_ns: Vec<u64>,
    },
    /// Sweeps the dollars per inter-module link (the cost knob of the
    /// Pareto front; only the report's cost column changes). Creates a
    /// default modular block when the machine carries none. Campaign
    /// axis `inter_cost`.
    InterTierCost {
        /// Per-link costs in sweep order.
        costs: Vec<f64>,
    },
    /// Sweeps the purification placement of a channel scenario
    /// (Figures 10–12's legend set). Campaign axis `placement`.
    Placements {
        /// Placements in sweep order.
        placements: Vec<PurifyPlacement>,
    },
    /// Sweeps the channel distance. Campaign axis `hops`.
    Hops {
        /// Teleport-hop counts in sweep order.
        hops: Vec<u32>,
    },
    /// Sweeps a log-spaced uniform operation error rate
    /// (`10^(start_exp + i/per_decade)`, Figure 12's x-axis). Campaign
    /// axis `error_rate`.
    ErrorRateLog {
        /// First decade exponent.
        start_exp: i32,
        /// Last decade exponent (exclusive bound is `stop_exp`
        /// inclusive, as [`Axis::log_spaced`]).
        stop_exp: i32,
        /// Grid points per decade.
        per_decade: u32,
    },
}

impl ScenarioAxis {
    /// The campaign axis this dimension sweeps (name + values), exactly
    /// as the legacy per-figure campaigns built it.
    pub fn axis(&self) -> Axis {
        match self {
            ScenarioAxis::ResourceRatio { ratios, .. } => Axis::ints("ratio", ratios.clone()),
            ScenarioAxis::Layouts { layouts } => {
                Axis::labels("layout", layouts.iter().map(Layout::to_string))
            }
            ScenarioAxis::Topologies { kinds } => {
                Axis::labels("topology", kinds.iter().map(TopologyKind::to_string))
            }
            ScenarioAxis::Routings { policies } => {
                Axis::labels("routing", policies.iter().map(RoutingPolicy::to_string))
            }
            ScenarioAxis::GridEdges { edges } => {
                Axis::ints("mesh", edges.iter().map(|&e| i64::from(e)))
            }
            ScenarioAxis::PurifyDepths { depths } => {
                Axis::ints("depth", depths.iter().map(|&d| i64::from(d)))
            }
            ScenarioAxis::Units { units } => {
                Axis::ints("units", units.iter().map(|&u| i64::from(u)))
            }
            ScenarioAxis::Teleporters { values } => {
                Axis::ints("t", values.iter().map(|&v| i64::from(v)))
            }
            ScenarioAxis::Generators { values } => {
                Axis::ints("g", values.iter().map(|&v| i64::from(v)))
            }
            ScenarioAxis::Purifiers { values } => {
                Axis::ints("p", values.iter().map(|&v| i64::from(v)))
            }
            ScenarioAxis::Workloads { workloads } => {
                Axis::labels("workload", workloads.iter().map(WorkloadSpec::label))
            }
            ScenarioAxis::FaultRate { rates } => Axis::f64s("fault_rate", rates.iter().copied()),
            ScenarioAxis::Modules { counts } => {
                Axis::ints("modules", counts.iter().map(|&c| i64::from(c)))
            }
            ScenarioAxis::InterTierLatency { latencies_ns } => Axis::ints(
                "inter_latency",
                latencies_ns
                    .iter()
                    .map(|&l| i64::try_from(l).expect("validated: inter-tier latencies fit i64")),
            ),
            ScenarioAxis::InterTierCost { costs } => {
                Axis::f64s("inter_cost", costs.iter().copied())
            }
            ScenarioAxis::Placements { placements } => {
                Axis::labels("placement", placements.iter().map(PurifyPlacement::legend))
            }
            ScenarioAxis::Hops { hops } => Axis::ints("hops", hops.iter().map(|&h| i64::from(h))),
            ScenarioAxis::ErrorRateLog {
                start_exp,
                stop_exp,
                per_decade,
            } => Axis::log_spaced("error_rate", *start_exp, *stop_exp, *per_decade),
        }
    }

    /// Number of values along this axis.
    pub fn len(&self) -> usize {
        match self {
            ScenarioAxis::ResourceRatio { ratios, .. } => ratios.len(),
            ScenarioAxis::Layouts { layouts } => layouts.len(),
            ScenarioAxis::Topologies { kinds } => kinds.len(),
            ScenarioAxis::Routings { policies } => policies.len(),
            ScenarioAxis::GridEdges { edges } => edges.len(),
            ScenarioAxis::PurifyDepths { depths } => depths.len(),
            ScenarioAxis::Units { units } => units.len(),
            ScenarioAxis::Teleporters { values }
            | ScenarioAxis::Generators { values }
            | ScenarioAxis::Purifiers { values } => values.len(),
            ScenarioAxis::Workloads { workloads } => workloads.len(),
            ScenarioAxis::FaultRate { rates } => rates.len(),
            ScenarioAxis::Modules { counts } => counts.len(),
            ScenarioAxis::InterTierLatency { latencies_ns } => latencies_ns.len(),
            ScenarioAxis::InterTierCost { costs } => costs.len(),
            ScenarioAxis::Placements { placements } => placements.len(),
            ScenarioAxis::Hops { hops } => hops.len(),
            ScenarioAxis::ErrorRateLog {
                start_exp,
                stop_exp,
                per_decade,
            } => {
                if stop_exp <= start_exp || *per_decade == 0 {
                    0
                } else {
                    ((stop_exp - start_exp) as usize * *per_decade as usize) + 1
                }
            }
        }
    }

    /// Whether the axis has no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this axis configures a machine experiment (as opposed to
    /// an analytic channel experiment).
    pub fn is_machine_axis(&self) -> bool {
        !matches!(
            self,
            ScenarioAxis::Placements { .. }
                | ScenarioAxis::Hops { .. }
                | ScenarioAxis::ErrorRateLog { .. }
        )
    }

    /// Applies value `coord` of this axis to a machine point.
    pub(crate) fn apply_machine(
        &self,
        coord: usize,
        net: &mut NetConfig,
        layout: &mut Layout,
        workload: &mut WorkloadSpec,
        fault: &mut Option<FaultPlan>,
        modular: &mut Option<Box<ModularSpec>>,
    ) {
        match self {
            ScenarioAxis::ResourceRatio { area, ratios } => {
                let (t, g, p) = ratio_resources(ratios[coord], *area);
                net.teleporters_per_node = t;
                net.generators_per_edge = g;
                net.purifiers_per_site = p;
            }
            ScenarioAxis::Layouts { layouts } => *layout = layouts[coord],
            ScenarioAxis::Topologies { kinds } => net.topology = kinds[coord],
            ScenarioAxis::Routings { policies } => net.routing = policies[coord],
            ScenarioAxis::GridEdges { edges } => {
                net.mesh_width = edges[coord];
                net.mesh_height = edges[coord];
            }
            ScenarioAxis::PurifyDepths { depths } => net.purify_depth = depths[coord],
            ScenarioAxis::Units { units } => {
                net.teleporters_per_node = units[coord];
                net.generators_per_edge = units[coord];
                net.purifiers_per_site = units[coord];
            }
            ScenarioAxis::Teleporters { values } => net.teleporters_per_node = values[coord],
            ScenarioAxis::Generators { values } => net.generators_per_edge = values[coord],
            ScenarioAxis::Purifiers { values } => net.purifiers_per_site = values[coord],
            ScenarioAxis::Workloads { workloads } => *workload = workloads[coord].clone(),
            ScenarioAxis::FaultRate { rates } => {
                fault.get_or_insert_with(FaultPlan::healthy).link_kill_rate = rates[coord];
            }
            ScenarioAxis::Modules { counts } => {
                modular.get_or_insert_with(default_modular).modules = counts[coord];
            }
            ScenarioAxis::InterTierLatency { latencies_ns } => {
                modular.get_or_insert_with(default_modular).inter.latency_ns = latencies_ns[coord];
            }
            ScenarioAxis::InterTierCost { costs } => {
                modular.get_or_insert_with(default_modular).inter_unit_cost = costs[coord];
            }
            _ => unreachable!("validated: channel axes never reach machine points"),
        }
    }

    /// Applies value `coord` of this axis to a channel point.
    pub(crate) fn apply_channel(
        &self,
        coord: usize,
        placement: &mut PurifyPlacement,
        hops: &mut u32,
        rates: &mut Option<ErrorRates>,
    ) {
        match self {
            ScenarioAxis::Placements { placements } => *placement = placements[coord],
            ScenarioAxis::Hops { hops: values } => *hops = values[coord],
            ScenarioAxis::ErrorRateLog {
                start_exp,
                per_decade,
                ..
            } => {
                // The same expression Axis::log_spaced evaluates, so the
                // applied rate equals the reported axis value bit-for-bit.
                let p = 10f64.powf(f64::from(*start_exp) + coord as f64 / f64::from(*per_decade));
                *rates = Some(ErrorRates::uniform(p).expect("validated: rates are probabilities"));
            }
            _ => unreachable!("validated: machine axes never reach channel points"),
        }
    }
}

/// The modular block a modular axis materialises on a machine that
/// carries none: the degenerate single-module composition.
fn default_modular() -> Box<ModularSpec> {
    Box::new(ModularSpec::single())
}

/// Resolves a Figure 16 ratio-axis value into the `(t, g, p)` resource
/// knobs: `t = g = ratio·p` with `t + g + p ≈ area`, or the unlimited
/// `(1024, 1024, 1024)` baseline for ratio `0`.
pub fn ratio_resources(ratio: i64, area: u32) -> (u32, u32, u32) {
    if ratio == 0 {
        return (1024, 1024, 1024);
    }
    let ratio = ratio as u32;
    let p = (area / (2 * ratio + 1)).max(1);
    let t = (ratio * p).max(2);
    (t, t, p)
}

/// Observability settings for a machine scenario: attach a
/// `qic_probe::RecordingProbe` to every simulated point and export the
/// structured traces under [`ObserveSpec::dir`].
///
/// Per `(point, replicate)` evaluation the runner writes
/// `{name}_p{index:04}_r{replicate}.events.jsonl` (the structured event
/// log) and the matching `.trace.json` (Chrome-trace / Perfetto), plus
/// one `{name}.progress.jsonl` campaign progress stream. Every exported
/// trace is deterministic — same spec, same bytes, any worker count —
/// while the progress stream is wall-clock by design. Scenarios without
/// an observe block never construct a probe, so their reports and
/// golden outputs stay byte-identical to the uninstrumented simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObserveSpec {
    /// Directory the trace files are written into (created if missing).
    pub dir: String,
    /// Write per-point `.events.jsonl` structured event logs.
    pub events: bool,
    /// Write per-point `.trace.json` Chrome-trace (Perfetto) files.
    pub chrome_trace: bool,
    /// Sampling-grid bins for the utilization/occupancy time series
    /// (≥ 1).
    pub bins: u32,
}

impl ObserveSpec {
    /// Full observability into `dir`: both exporters on, the default
    /// 64-bin sampling grid.
    pub fn to_dir(dir: impl Into<String>) -> ObserveSpec {
        ObserveSpec {
            dir: dir.into(),
            events: true,
            chrome_trace: true,
            bins: 64,
        }
    }

    /// Overrides the sampling-grid resolution.
    pub fn with_bins(mut self, bins: u32) -> ObserveSpec {
        self.bins = bins;
        self
    }
}

/// Checkpoint/resume settings for a scenario: run the campaign with
/// streaming aggregation and commit a versioned manifest of completed
/// points under [`CheckpointSpec::dir`], so a killed run resumes where
/// it stopped and still produces the byte-identical report.
///
/// The manifest lives at `{dir}/{name}.ckpt.json` (scenario name
/// sanitized the way trace files are) and is committed atomically —
/// write-temp, sync, rename — every [`CheckpointSpec::every`] completed
/// points and once at the end. Resume validates a spec fingerprint
/// (name, seed, replicates, axes), so editing the spec between runs
/// fails loudly instead of stitching incompatible halves together.
///
/// Checkpointed runs use the same streaming aggregation as campaign
/// sharding: summaries and CSV are byte-identical to a buffered run,
/// but raw replicate samples are not retained in the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointSpec {
    /// Directory the manifest is written into (created if missing).
    pub dir: String,
    /// Commit the manifest every this many newly completed points
    /// (≥ 1).
    pub every: u32,
}

impl CheckpointSpec {
    /// Checkpoints into `dir` with the default 16-point commit
    /// interval.
    pub fn to_dir(dir: impl Into<String>) -> CheckpointSpec {
        CheckpointSpec {
            dir: dir.into(),
            every: 16,
        }
    }

    /// Overrides the commit interval.
    pub fn with_every(mut self, every: u32) -> CheckpointSpec {
        self.every = every;
        self
    }
}

/// What a scenario measures: a full machine simulation or the
/// closed-form channel-resource model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExperimentSpec {
    /// Event-driven simulation: a machine runs a workload; every point
    /// reports the full `NetReport` metric set.
    Machine {
        /// The machine description (base values; axes override).
        machine: MachineSpec,
        /// The workload (base value; a workload axis overrides).
        workload: WorkloadSpec,
    },
    /// Closed-form channel model (Figures 10–12); every point reports
    /// the `pairs` metric.
    Channel {
        /// Base purification placement (a placement axis overrides).
        placement: PurifyPlacement,
        /// Base channel distance in teleport hops (a hops axis
        /// overrides).
        hops: u32,
        /// Which pair budget the scenario reports.
        metric: PairMetric,
    },
}

/// A fully declarative, serializable experiment: one spec describes
/// everything `qic::run` needs — machine, workload, purification
/// strategy, sweep axes, replication and seeding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Campaign name (also the report identity; figure presets use the
    /// legacy campaign names so reports stay byte-identical).
    pub name: String,
    /// Campaign-level seed per-point seeds derive from.
    pub seed: u64,
    /// Replicates per point (≥ 1).
    pub replicates: u32,
    /// Worker threads (`0` = engine default). Reports never depend on
    /// this — it is an execution hint, carried for reproducible runs.
    pub workers: usize,
    /// Sweep dimensions, slowest-varying first.
    pub axes: Vec<ScenarioAxis>,
    /// What each point evaluates.
    pub experiment: ExperimentSpec,
    /// Structured-trace export (machine scenarios only). `None` — the
    /// default everywhere, including every figure preset — runs the
    /// simulator unprobed: zero instrumentation cost, byte-identical
    /// reports and golden outputs.
    pub observe: Option<ObserveSpec>,
    /// Checkpoint/resume via an on-disk manifest (see
    /// [`CheckpointSpec`]). `None` — the default everywhere — runs the
    /// campaign in memory exactly as before.
    pub checkpoint: Option<CheckpointSpec>,
}

impl ScenarioSpec {
    /// A simulation scenario (no axes yet); the campaign seed defaults
    /// to the machine preset's base seed.
    pub fn machine(
        name: impl Into<String>,
        machine: MachineSpec,
        workload: WorkloadSpec,
    ) -> ScenarioSpec {
        let seed = machine.preset.net().seed;
        ScenarioSpec {
            name: name.into(),
            seed,
            replicates: 1,
            workers: 0,
            axes: Vec::new(),
            experiment: ExperimentSpec::Machine { machine, workload },
            observe: None,
            checkpoint: None,
        }
    }

    /// An analytic channel scenario (no axes yet), seed 0 like the
    /// legacy figure campaigns.
    pub fn channel(
        name: impl Into<String>,
        placement: PurifyPlacement,
        hops: u32,
        metric: PairMetric,
    ) -> ScenarioSpec {
        ScenarioSpec {
            name: name.into(),
            seed: 0,
            replicates: 1,
            workers: 0,
            axes: Vec::new(),
            experiment: ExperimentSpec::Channel {
                placement,
                hops,
                metric,
            },
            observe: None,
            checkpoint: None,
        }
    }

    /// Appends a sweep axis (row-major: later axes vary fastest).
    pub fn with_axis(mut self, axis: ScenarioAxis) -> ScenarioSpec {
        self.axes.push(axis);
        self
    }

    /// Overrides the campaign seed.
    pub fn with_seed(mut self, seed: u64) -> ScenarioSpec {
        self.seed = seed;
        self
    }

    /// Sets replicates per point.
    pub fn with_replicates(mut self, replicates: u32) -> ScenarioSpec {
        self.replicates = replicates;
        self
    }

    /// Pins the worker-thread count (`0` = engine default).
    pub fn with_workers(mut self, workers: usize) -> ScenarioSpec {
        self.workers = workers;
        self
    }

    /// Attaches structured-trace export (machine scenarios only; see
    /// [`ObserveSpec`]).
    pub fn with_observe(mut self, observe: ObserveSpec) -> ScenarioSpec {
        self.observe = Some(observe);
        self
    }

    /// Makes the scenario resumable: checkpoint the campaign to an
    /// on-disk manifest and resume from it on the next run (see
    /// [`CheckpointSpec`]). Works for machine and channel scenarios
    /// alike — any registry preset becomes resumable by adding this.
    pub fn with_checkpoint(mut self, checkpoint: CheckpointSpec) -> ScenarioSpec {
        self.checkpoint = Some(checkpoint);
        self
    }

    /// The campaign parameter space the axes span.
    pub fn param_space(&self) -> ParamSpace {
        self.axes
            .iter()
            .fold(ParamSpace::new(), |space, axis| space.axis(axis.axis()))
    }

    fn spec_err(&self, problem: impl Into<String>) -> ScenarioError {
        ScenarioError::Spec {
            scenario: self.name.clone(),
            problem: problem.into(),
        }
    }

    /// Checks the spec end to end: axis/experiment family consistency,
    /// workload invariants, and — for machine scenarios — `qic-net`
    /// validation of **every** sweep point's configuration, wrapped
    /// with scenario context.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Spec`] for spec-level problems,
    /// [`ScenarioError::Config`] when a point's [`NetConfig`] fails
    /// [`NetConfig::validate`].
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.name.is_empty() {
            return Err(self.spec_err("scenarios need a non-empty name"));
        }
        if self.replicates == 0 {
            return Err(self.spec_err("scenarios need at least one replicate"));
        }
        if let Some(obs) = &self.observe {
            if matches!(self.experiment, ExperimentSpec::Channel { .. }) {
                return Err(self.spec_err(
                    "observe applies only to machine scenarios (the channel model \
                     is closed-form; there is no simulation to trace)",
                ));
            }
            if obs.dir.is_empty() {
                return Err(self.spec_err("observe needs a non-empty output directory"));
            }
            if obs.bins == 0 {
                return Err(self.spec_err("observe needs at least one sampling bin"));
            }
        }
        if let Some(ckpt) = &self.checkpoint {
            if ckpt.dir.is_empty() {
                return Err(self.spec_err("checkpoint needs a non-empty manifest directory"));
            }
            if ckpt.every == 0 {
                return Err(
                    self.spec_err("checkpoint needs a commit interval of at least one point")
                );
            }
        }
        for (i, axis) in self.axes.iter().enumerate() {
            // The dedicated error-rate diagnosis must run before the
            // generic emptiness check (a degenerate exponent range is
            // exactly what makes the axis empty).
            if let ScenarioAxis::ErrorRateLog {
                start_exp,
                stop_exp,
                per_decade,
            } = axis
            {
                if stop_exp <= start_exp || *per_decade == 0 {
                    return Err(self
                        .spec_err("error-rate axes need stop_exp > start_exp and per_decade ≥ 1"));
                }
                if *stop_exp > 0 {
                    return Err(self.spec_err("error rates above 1.0 are not probabilities"));
                }
            }
            if axis.is_empty() {
                return Err(self.spec_err(format!("axis #{i} has no values")));
            }
            let machine_experiment = matches!(self.experiment, ExperimentSpec::Machine { .. });
            if axis.is_machine_axis() != machine_experiment {
                return Err(
                    self.spec_err(format!("axis #{i} does not apply to this experiment kind"))
                );
            }
            if let ScenarioAxis::ResourceRatio { ratios, .. } = axis {
                if ratios
                    .iter()
                    .any(|&r| !(0..=i64::from(u32::MAX)).contains(&r))
                {
                    return Err(
                        self.spec_err("resource ratios must be non-negative and fit in u32")
                    );
                }
            }
            if let ScenarioAxis::Hops { hops } = axis {
                if hops.contains(&0) {
                    return Err(self.spec_err("channels need at least one hop"));
                }
            }
            if let ScenarioAxis::Workloads { workloads } = axis {
                for w in workloads {
                    w.check(&self.name)?;
                }
            }
            if let ScenarioAxis::FaultRate { rates } = axis {
                if rates
                    .iter()
                    .any(|r| !(r.is_finite() && (0.0..=1.0).contains(r)))
                {
                    return Err(self.spec_err("fault rates must be probabilities in [0, 1]"));
                }
            }
            if let ScenarioAxis::InterTierLatency { latencies_ns } = axis {
                if latencies_ns.iter().any(|&l| i64::try_from(l).is_err()) {
                    return Err(self.spec_err("inter-tier latencies must fit i64 nanoseconds"));
                }
            }
        }
        let names: Vec<&str> = self.axes.iter().map(axis_name).collect();
        for (i, n) in names.iter().enumerate() {
            if names[..i].contains(n) {
                return Err(self.spec_err(format!("duplicate sweep axis {n:?}")));
            }
        }
        match &self.experiment {
            ExperimentSpec::Machine { machine, workload } => {
                workload.check(&self.name)?;
                let space = self.param_space();
                for index in 0..space.len() {
                    let point = space.point(index);
                    let mut net = machine.net_config();
                    let mut layout = machine.layout;
                    let mut wl = workload.clone();
                    let mut fault = machine.fault.clone();
                    let mut modular = machine.modular.clone();
                    for (a, axis) in self.axes.iter().enumerate() {
                        axis.apply_machine(
                            point.coord(a),
                            &mut net,
                            &mut layout,
                            &mut wl,
                            &mut fault,
                            &mut modular,
                        );
                    }
                    net.validate().map_err(|source| ScenarioError::Config {
                        scenario: self.name.clone(),
                        point: Some(point.to_string()),
                        source,
                    })?;
                    // How many modules this point composes; 1 for flat
                    // machines. Component-count checks below are against
                    // the composed fabric.
                    let modules_count = modular.as_ref().map_or(1, |m| m.modules as usize);
                    if let Some(m) = &modular {
                        m.validate().map_err(|problem| {
                            self.spec_err(format!("{point}: modular block: {problem}"))
                        })?;
                        if m.modules > 1 {
                            let composed_w = u32::from(net.mesh_width) * m.modules;
                            if composed_w > u32::from(u16::MAX) {
                                return Err(self.spec_err(format!(
                                    "{point}: {} modules of width {} overflow the u16 \
                                     addressing grid",
                                    m.modules, net.mesh_width
                                )));
                            }
                            let base = net.fabric();
                            let need = (qic_net::topology::Topology::port_classes(&base) as u32
                                + 1)
                            .max(2);
                            if net.teleporters_per_node < need {
                                return Err(self.spec_err(format!(
                                    "{point}: modular machines with {} modules on the {} \
                                     fabric need teleporters ≥ {need} (one class per base \
                                     dimension plus the uplink class, and bubble flow \
                                     control)",
                                    m.modules, net.topology
                                )));
                            }
                        }
                    }
                    if let Some(plan) = &fault {
                        plan.validate()
                            .map_err(|problem| self.spec_err(format!("{point}: {problem}")))?;
                        // Component indices must exist on this point's
                        // fabric (the grid and topology are point-local;
                        // a modular block multiplies the counts).
                        let fabric = net.fabric();
                        let (links, nodes) = {
                            let base_links = qic_net::topology::Topology::links(&fabric);
                            let base_nodes = qic_net::topology::Topology::nodes(&fabric);
                            let k = modules_count;
                            (k * base_links + k * (k - 1) / 2, k * base_nodes)
                        };
                        for &dm in &plan.dead_modules {
                            if dm as usize >= modules_count {
                                return Err(self.spec_err(format!(
                                    "{point}: dead module {dm} is off the machine \
                                     ({modules_count} modules)"
                                )));
                            }
                        }
                        for &l in &plan.dead_links {
                            if l as usize >= links {
                                return Err(self.spec_err(format!(
                                    "{point}: dead link {l} is off the {} fabric \
                                     ({links} links)",
                                    net.topology
                                )));
                            }
                        }
                        for &n in &plan.dead_nodes {
                            if n as usize >= nodes {
                                return Err(self.spec_err(format!(
                                    "{point}: dead node {n} is off the {} fabric \
                                     ({nodes} nodes)",
                                    net.topology
                                )));
                            }
                        }
                        for h in &plan.hotspots {
                            if h.link as usize >= links {
                                return Err(self.spec_err(format!(
                                    "{point}: hotspot link {} is off the {} fabric \
                                     ({links} links)",
                                    h.link, net.topology
                                )));
                            }
                        }
                        if plan.masks_topology() && net.teleporters_per_node < 2 {
                            return Err(self.spec_err(format!(
                                "{point}: fault plans that can mask links need \
                                 teleporters ≥ 2 (degraded fabrics run with bubble \
                                 flow control)"
                            )));
                        }
                    }
                    // A modular block tiles the modules along X, so the
                    // addressable grid (and site budget) grows with K.
                    let grid_width = u32::from(net.mesh_width) * modules_count as u32;
                    let sites = grid_width * u32::from(net.mesh_height);
                    match &wl {
                        WorkloadSpec::Batch { comms } => {
                            for &((sx, sy), (dx, dy)) in comms {
                                if u32::from(sx) >= grid_width
                                    || sy >= net.mesh_height
                                    || u32::from(dx) >= grid_width
                                    || dy >= net.mesh_height
                                {
                                    return Err(self.spec_err(format!(
                                        "{point}: batch site ({sx},{sy})→({dx},{dy}) is off \
                                         the {}×{} grid",
                                        grid_width, net.mesh_height
                                    )));
                                }
                                if (sx, sy) == (dx, dy) {
                                    return Err(self.spec_err(format!(
                                        "{point}: batch traffic cannot send a site to itself \
                                         (({sx},{sy}))"
                                    )));
                                }
                            }
                        }
                        program_workload => {
                            let qubits = program_workload.qubits();
                            if qubits > sites {
                                return Err(self.spec_err(format!(
                                    "{point}: workload {} needs {qubits} qubits but the grid \
                                     has {sites} sites",
                                    program_workload.label()
                                )));
                            }
                        }
                    }
                }
            }
            ExperimentSpec::Channel { hops, .. } => {
                if *hops == 0
                    && !self
                        .axes
                        .iter()
                        .any(|a| matches!(a, ScenarioAxis::Hops { .. }))
                {
                    return Err(self.spec_err("channels need at least one hop"));
                }
            }
        }
        Ok(())
    }

    /// Serialises the spec as deterministic JSON.
    pub fn to_json(&self) -> String {
        self.encode().emit()
    }

    /// Parses a spec from JSON. Strict: unknown or duplicate fields are
    /// rejected, so a typo can never silently configure nothing.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Json`] on syntax or schema problems. The parsed
    /// spec is *not* validated — call [`ScenarioSpec::validate`] (or
    /// let `qic::run` do it).
    pub fn from_json(text: &str) -> Result<ScenarioSpec, ScenarioError> {
        let value = Json::parse(text)?;
        ScenarioSpec::decode(&value).map_err(ScenarioError::Json)
    }

    fn encode(&self) -> Json {
        let mut fields = vec![
            ("name", Json::Str(self.name.clone())),
            ("seed", Json::Int(i128::from(self.seed))),
            ("replicates", Json::Int(i128::from(self.replicates))),
            ("workers", Json::Int(self.workers as i128)),
            ("experiment", encode_experiment(&self.experiment)),
            (
                "axes",
                Json::Arr(self.axes.iter().map(encode_axis).collect()),
            ),
        ];
        if let Some(obs) = &self.observe {
            // Emitted only when set, so unobserved specs (and their
            // documents) are byte-identical to the pre-probe schema.
            fields.push(("observe", encode_observe(obs)));
        }
        if let Some(ckpt) = &self.checkpoint {
            // Same only-when-set rule as `observe`.
            fields.push(("checkpoint", encode_checkpoint(ckpt)));
        }
        obj(fields)
    }

    fn decode(value: &Json) -> Result<ScenarioSpec, JsonError> {
        let fields = value.obj_of("scenario")?;
        check_fields(
            fields,
            &[
                "name",
                "seed",
                "replicates",
                "workers",
                "experiment",
                "axes",
                "observe",
                "checkpoint",
            ],
            "scenario",
        )?;
        Ok(ScenarioSpec {
            name: get(fields, "name", "scenario")?.str_of("name")?.to_string(),
            seed: get(fields, "seed", "scenario")?.u64_of("seed")?,
            replicates: get(fields, "replicates", "scenario")?.u32_of("replicates")?,
            workers: get(fields, "workers", "scenario")?.usize_of("workers")?,
            experiment: decode_experiment(get(fields, "experiment", "scenario")?)?,
            axes: get(fields, "axes", "scenario")?
                .arr_of("axes")?
                .iter()
                .map(decode_axis)
                .collect::<Result<_, _>>()?,
            observe: get_opt(fields, "observe").map(decode_observe).transpose()?,
            checkpoint: get_opt(fields, "checkpoint")
                .map(decode_checkpoint)
                .transpose()?,
        })
    }
}

fn axis_name(axis: &ScenarioAxis) -> &'static str {
    match axis {
        ScenarioAxis::ResourceRatio { .. } => "ratio",
        ScenarioAxis::Layouts { .. } => "layout",
        ScenarioAxis::Topologies { .. } => "topology",
        ScenarioAxis::Routings { .. } => "routing",
        ScenarioAxis::GridEdges { .. } => "mesh",
        ScenarioAxis::PurifyDepths { .. } => "depth",
        ScenarioAxis::Units { .. } => "units",
        ScenarioAxis::Teleporters { .. } => "t",
        ScenarioAxis::Generators { .. } => "g",
        ScenarioAxis::Purifiers { .. } => "p",
        ScenarioAxis::Workloads { .. } => "workload",
        ScenarioAxis::FaultRate { .. } => "fault_rate",
        ScenarioAxis::Modules { .. } => "modules",
        ScenarioAxis::InterTierLatency { .. } => "inter_latency",
        ScenarioAxis::InterTierCost { .. } => "inter_cost",
        ScenarioAxis::Placements { .. } => "placement",
        ScenarioAxis::Hops { .. } => "hops",
        ScenarioAxis::ErrorRateLog { .. } => "error_rate",
    }
}

// --- JSON encoding ---------------------------------------------------------

fn encode_machine(m: &MachineSpec) -> Json {
    let mut fields = vec![
        ("preset", Json::Str(m.preset.label().into())),
        ("width", Json::Int(i128::from(m.width))),
        ("height", Json::Int(i128::from(m.height))),
        ("topology", Json::Str(m.topology.to_string())),
        ("routing", Json::Str(m.routing.to_string())),
        ("layout", Json::Str(m.layout.to_string())),
        ("teleporters", Json::Int(i128::from(m.teleporters))),
        ("generators", Json::Int(i128::from(m.generators))),
        ("purifiers", Json::Int(i128::from(m.purifiers))),
        ("purify_depth", Json::Int(i128::from(m.purify_depth))),
        (
            "outputs_per_comm",
            Json::Int(i128::from(m.outputs_per_comm)),
        ),
    ];
    if let Some(plan) = &m.fault {
        // Emitted only when set, so healthy specs (and their documents)
        // are byte-identical to the pre-fault-layer schema.
        fields.push(("fault", encode_fault_plan(plan)));
    }
    if let Some(modular) = &m.modular {
        // Same only-when-set rule: flat specs keep the pre-modular
        // schema byte for byte.
        fields.push(("modular", encode_modular(modular)));
    }
    obj(fields)
}

fn encode_modular(m: &ModularSpec) -> Json {
    obj(vec![
        ("modules", Json::Int(i128::from(m.modules))),
        ("interconnect", Json::Str(m.interconnect.label())),
        ("latency_ns", Json::Int(i128::from(m.inter.latency_ns))),
        (
            "teleporter_slots",
            Json::Int(i128::from(m.inter.teleporter_slots)),
        ),
        ("fidelity", Json::Float(m.inter.fidelity)),
        ("intra_fidelity", Json::Float(m.intra_fidelity)),
        ("inter_unit_cost", Json::Float(m.inter_unit_cost)),
        ("report_cost", Json::Bool(m.report_cost)),
    ])
}

fn decode_modular(value: &Json) -> Result<ModularSpec, JsonError> {
    let f = value.obj_of("modular")?;
    check_fields(
        f,
        &[
            "modules",
            "interconnect",
            "latency_ns",
            "teleporter_slots",
            "fidelity",
            "intra_fidelity",
            "inter_unit_cost",
            "report_cost",
        ],
        "modular",
    )?;
    let interconnect_label = get(f, "interconnect", "modular")?.str_of("interconnect")?;
    Ok(ModularSpec {
        modules: get(f, "modules", "modular")?.u32_of("modules")?,
        interconnect: Interconnect::parse(interconnect_label).ok_or_else(|| {
            Json::schema_err(format!("unknown interconnect {interconnect_label:?}"))
        })?,
        inter: qic_modular::LinkParams {
            latency_ns: get(f, "latency_ns", "modular")?.u64_of("latency_ns")?,
            teleporter_slots: get(f, "teleporter_slots", "modular")?.u32_of("teleporter_slots")?,
            fidelity: get(f, "fidelity", "modular")?.f64_of("fidelity")?,
        },
        intra_fidelity: get(f, "intra_fidelity", "modular")?.f64_of("intra_fidelity")?,
        inter_unit_cost: get(f, "inter_unit_cost", "modular")?.f64_of("inter_unit_cost")?,
        report_cost: get(f, "report_cost", "modular")?.bool_of("report_cost")?,
    })
}

fn encode_fault_plan(plan: &FaultPlan) -> Json {
    let mut fields = vec![
        ("seed", Json::Int(i128::from(plan.seed))),
        ("link_kill_rate", Json::Float(plan.link_kill_rate)),
        ("node_loss_rate", Json::Float(plan.node_loss_rate)),
        (
            "teleporter_loss_rate",
            Json::Float(plan.teleporter_loss_rate),
        ),
        ("dead_links", ints(plan.dead_links.iter().copied())),
        ("dead_nodes", ints(plan.dead_nodes.iter().copied())),
    ];
    if !plan.dead_modules.is_empty() {
        // Emitted only when used, so pre-modular fault documents stay
        // byte-identical.
        fields.push(("dead_modules", ints(plan.dead_modules.iter().copied())));
    }
    fields.push((
        "hotspots",
        Json::Arr(
            plan.hotspots
                .iter()
                .map(|h| {
                    obj(vec![
                        ("link", Json::Int(i128::from(h.link))),
                        ("start_ns", Json::Int(i128::from(h.start_ns))),
                        ("end_ns", Json::Int(i128::from(h.end_ns))),
                        ("penalty_ns", Json::Int(i128::from(h.penalty_ns))),
                    ])
                })
                .collect(),
        ),
    ));
    obj(fields)
}

fn decode_fault_plan(value: &Json) -> Result<FaultPlan, JsonError> {
    let f = value.obj_of("fault")?;
    check_fields(
        f,
        &[
            "seed",
            "link_kill_rate",
            "node_loss_rate",
            "teleporter_loss_rate",
            "dead_links",
            "dead_nodes",
            "dead_modules",
            "hotspots",
        ],
        "fault",
    )?;
    let u32_list = |field: &str| -> Result<Vec<u32>, JsonError> {
        get(f, field, "fault")?
            .arr_of(field)?
            .iter()
            .map(|v| v.u32_of(field))
            .collect()
    };
    Ok(FaultPlan {
        seed: get(f, "seed", "fault")?.u64_of("seed")?,
        link_kill_rate: get(f, "link_kill_rate", "fault")?.f64_of("link_kill_rate")?,
        node_loss_rate: get(f, "node_loss_rate", "fault")?.f64_of("node_loss_rate")?,
        teleporter_loss_rate: get(f, "teleporter_loss_rate", "fault")?
            .f64_of("teleporter_loss_rate")?,
        dead_links: u32_list("dead_links")?,
        dead_nodes: u32_list("dead_nodes")?,
        dead_modules: match get_opt(f, "dead_modules") {
            Some(v) => v
                .arr_of("dead_modules")?
                .iter()
                .map(|v| v.u32_of("dead_modules"))
                .collect::<Result<_, _>>()?,
            None => Vec::new(),
        },
        hotspots: get(f, "hotspots", "fault")?
            .arr_of("hotspots")?
            .iter()
            .map(|v| {
                let h = v.obj_of("hotspot")?;
                check_fields(h, &["link", "start_ns", "end_ns", "penalty_ns"], "hotspot")?;
                Ok(Hotspot {
                    link: get(h, "link", "hotspot")?.u32_of("link")?,
                    start_ns: get(h, "start_ns", "hotspot")?.u64_of("start_ns")?,
                    end_ns: get(h, "end_ns", "hotspot")?.u64_of("end_ns")?,
                    penalty_ns: get(h, "penalty_ns", "hotspot")?.u64_of("penalty_ns")?,
                })
            })
            .collect::<Result<_, _>>()?,
    })
}

fn decode_machine(value: &Json) -> Result<MachineSpec, JsonError> {
    let f = value.obj_of("machine")?;
    check_fields(
        f,
        &[
            "preset",
            "width",
            "height",
            "topology",
            "routing",
            "layout",
            "teleporters",
            "generators",
            "purifiers",
            "purify_depth",
            "outputs_per_comm",
            "fault",
            "modular",
        ],
        "machine",
    )?;
    let preset_label = get(f, "preset", "machine")?.str_of("preset")?;
    let topology_label = get(f, "topology", "machine")?.str_of("topology")?;
    let routing_label = get(f, "routing", "machine")?.str_of("routing")?;
    let layout_label = get(f, "layout", "machine")?.str_of("layout")?;
    Ok(MachineSpec {
        preset: NetPreset::parse(preset_label)
            .ok_or_else(|| Json::schema_err(format!("unknown preset {preset_label:?}")))?,
        width: get(f, "width", "machine")?.u16_of("width")?,
        height: get(f, "height", "machine")?.u16_of("height")?,
        topology: TopologyKind::parse(topology_label)
            .ok_or_else(|| Json::schema_err(format!("unknown topology {topology_label:?}")))?,
        routing: RoutingPolicy::parse(routing_label)
            .ok_or_else(|| Json::schema_err(format!("unknown routing {routing_label:?}")))?,
        layout: Layout::parse(layout_label)
            .ok_or_else(|| Json::schema_err(format!("unknown layout {layout_label:?}")))?,
        teleporters: get(f, "teleporters", "machine")?.u32_of("teleporters")?,
        generators: get(f, "generators", "machine")?.u32_of("generators")?,
        purifiers: get(f, "purifiers", "machine")?.u32_of("purifiers")?,
        purify_depth: get(f, "purify_depth", "machine")?.u32_of("purify_depth")?,
        outputs_per_comm: get(f, "outputs_per_comm", "machine")?.u32_of("outputs_per_comm")?,
        fault: get_opt(f, "fault").map(decode_fault_plan).transpose()?,
        modular: get_opt(f, "modular")
            .map(|v| decode_modular(v).map(Box::new))
            .transpose()?,
    })
}

fn encode_observe(o: &ObserveSpec) -> Json {
    obj(vec![
        ("dir", Json::Str(o.dir.clone())),
        ("events", Json::Bool(o.events)),
        ("chrome_trace", Json::Bool(o.chrome_trace)),
        ("bins", Json::Int(i128::from(o.bins))),
    ])
}

fn decode_observe(value: &Json) -> Result<ObserveSpec, JsonError> {
    let f = value.obj_of("observe")?;
    check_fields(f, &["dir", "events", "chrome_trace", "bins"], "observe")?;
    Ok(ObserveSpec {
        dir: get(f, "dir", "observe")?.str_of("dir")?.to_string(),
        events: get(f, "events", "observe")?.bool_of("events")?,
        chrome_trace: get(f, "chrome_trace", "observe")?.bool_of("chrome_trace")?,
        bins: get(f, "bins", "observe")?.u32_of("bins")?,
    })
}

fn encode_checkpoint(c: &CheckpointSpec) -> Json {
    obj(vec![
        ("dir", Json::Str(c.dir.clone())),
        ("every", Json::Int(i128::from(c.every))),
    ])
}

fn decode_checkpoint(value: &Json) -> Result<CheckpointSpec, JsonError> {
    let f = value.obj_of("checkpoint")?;
    check_fields(f, &["dir", "every"], "checkpoint")?;
    Ok(CheckpointSpec {
        dir: get(f, "dir", "checkpoint")?.str_of("dir")?.to_string(),
        every: get(f, "every", "checkpoint")?.u32_of("every")?,
    })
}

fn encode_workload(w: &WorkloadSpec) -> Json {
    match w {
        WorkloadSpec::Qft { qubits } => obj(vec![
            ("kind", Json::Str("qft".into())),
            ("qubits", Json::Int(i128::from(*qubits))),
        ]),
        WorkloadSpec::ModMul { register } => obj(vec![
            ("kind", Json::Str("mod_mul".into())),
            ("register", Json::Int(i128::from(*register))),
        ]),
        WorkloadSpec::ModExp { register, steps } => obj(vec![
            ("kind", Json::Str("mod_exp".into())),
            ("register", Json::Int(i128::from(*register))),
            ("steps", Json::Int(i128::from(*steps))),
        ]),
        WorkloadSpec::Shor { register, steps } => obj(vec![
            ("kind", Json::Str("shor".into())),
            ("register", Json::Int(i128::from(*register))),
            ("steps", Json::Int(i128::from(*steps))),
        ]),
        WorkloadSpec::Synthetic {
            qubits,
            comms,
            seed,
        } => obj(vec![
            ("kind", Json::Str("synthetic".into())),
            ("qubits", Json::Int(i128::from(*qubits))),
            ("comms", Json::Int(i128::from(*comms))),
            ("seed", Json::Int(i128::from(*seed))),
        ]),
        WorkloadSpec::Batch { comms } => obj(vec![
            ("kind", Json::Str("batch".into())),
            (
                "comms",
                Json::Arr(
                    comms
                        .iter()
                        .map(|&((sx, sy), (dx, dy))| {
                            Json::Arr(vec![ints([sx, sy]), ints([dx, dy])])
                        })
                        .collect(),
                ),
            ),
        ]),
    }
}

fn decode_workload(value: &Json) -> Result<WorkloadSpec, JsonError> {
    let f = value.obj_of("workload")?;
    let kind = get(f, "kind", "workload")?.str_of("kind")?;
    match kind {
        "qft" => {
            check_fields(f, &["kind", "qubits"], "workload")?;
            Ok(WorkloadSpec::Qft {
                qubits: get(f, "qubits", "workload")?.u32_of("qubits")?,
            })
        }
        "mod_mul" => {
            check_fields(f, &["kind", "register"], "workload")?;
            Ok(WorkloadSpec::ModMul {
                register: get(f, "register", "workload")?.u32_of("register")?,
            })
        }
        "mod_exp" | "shor" => {
            check_fields(f, &["kind", "register", "steps"], "workload")?;
            let register = get(f, "register", "workload")?.u32_of("register")?;
            let steps = get(f, "steps", "workload")?.u32_of("steps")?;
            Ok(if kind == "mod_exp" {
                WorkloadSpec::ModExp { register, steps }
            } else {
                WorkloadSpec::Shor { register, steps }
            })
        }
        "synthetic" => {
            check_fields(f, &["kind", "qubits", "comms", "seed"], "workload")?;
            Ok(WorkloadSpec::Synthetic {
                qubits: get(f, "qubits", "workload")?.u32_of("qubits")?,
                comms: get(f, "comms", "workload")?.u32_of("comms")?,
                seed: get(f, "seed", "workload")?.u64_of("seed")?,
            })
        }
        "batch" => {
            check_fields(f, &["kind", "comms"], "workload")?;
            let comms = get(f, "comms", "workload")?
                .arr_of("comms")?
                .iter()
                .map(|pair| {
                    let ends = pair.arr_of("batch comm")?;
                    if ends.len() != 2 {
                        return Err(Json::schema_err("batch comms are [[sx,sy],[dx,dy]] pairs"));
                    }
                    let coord = |v: &Json| -> Result<(u16, u16), JsonError> {
                        let xy = v.arr_of("batch site")?;
                        if xy.len() != 2 {
                            return Err(Json::schema_err("batch sites are [x, y] pairs"));
                        }
                        Ok((xy[0].u16_of("x")?, xy[1].u16_of("y")?))
                    };
                    Ok((coord(&ends[0])?, coord(&ends[1])?))
                })
                .collect::<Result<_, _>>()?;
            Ok(WorkloadSpec::Batch { comms })
        }
        other => Err(Json::schema_err(format!("unknown workload kind {other:?}"))),
    }
}

fn encode_experiment(e: &ExperimentSpec) -> Json {
    match e {
        ExperimentSpec::Machine { machine, workload } => obj(vec![
            ("kind", Json::Str("machine".into())),
            ("machine", encode_machine(machine)),
            ("workload", encode_workload(workload)),
        ]),
        ExperimentSpec::Channel {
            placement,
            hops,
            metric,
        } => obj(vec![
            ("kind", Json::Str("channel".into())),
            ("placement", Json::Str(placement.label())),
            ("hops", Json::Int(i128::from(*hops))),
            ("metric", Json::Str(metric.label().into())),
        ]),
    }
}

fn decode_experiment(value: &Json) -> Result<ExperimentSpec, JsonError> {
    let f = value.obj_of("experiment")?;
    let kind = get(f, "kind", "experiment")?.str_of("kind")?;
    match kind {
        "machine" => {
            check_fields(f, &["kind", "machine", "workload"], "experiment")?;
            Ok(ExperimentSpec::Machine {
                machine: decode_machine(get(f, "machine", "experiment")?)?,
                workload: decode_workload(get(f, "workload", "experiment")?)?,
            })
        }
        "channel" => {
            check_fields(f, &["kind", "placement", "hops", "metric"], "experiment")?;
            let placement_label = get(f, "placement", "experiment")?.str_of("placement")?;
            let metric_label = get(f, "metric", "experiment")?.str_of("metric")?;
            Ok(ExperimentSpec::Channel {
                placement: PurifyPlacement::parse(placement_label).ok_or_else(|| {
                    Json::schema_err(format!("unknown placement {placement_label:?}"))
                })?,
                hops: get(f, "hops", "experiment")?.u32_of("hops")?,
                metric: PairMetric::parse(metric_label)
                    .ok_or_else(|| Json::schema_err(format!("unknown metric {metric_label:?}")))?,
            })
        }
        other => Err(Json::schema_err(format!(
            "unknown experiment kind {other:?}"
        ))),
    }
}

fn encode_axis(axis: &ScenarioAxis) -> Json {
    match axis {
        ScenarioAxis::ResourceRatio { area, ratios } => obj(vec![
            ("axis", Json::Str("resource_ratio".into())),
            ("area", Json::Int(i128::from(*area))),
            ("ratios", ints(ratios.iter().copied())),
        ]),
        ScenarioAxis::Layouts { layouts } => obj(vec![
            ("axis", Json::Str("layout".into())),
            (
                "layouts",
                Json::Arr(layouts.iter().map(|l| Json::Str(l.to_string())).collect()),
            ),
        ]),
        ScenarioAxis::Topologies { kinds } => obj(vec![
            ("axis", Json::Str("topology".into())),
            (
                "kinds",
                Json::Arr(kinds.iter().map(|k| Json::Str(k.to_string())).collect()),
            ),
        ]),
        ScenarioAxis::Routings { policies } => obj(vec![
            ("axis", Json::Str("routing".into())),
            (
                "policies",
                Json::Arr(policies.iter().map(|p| Json::Str(p.to_string())).collect()),
            ),
        ]),
        ScenarioAxis::GridEdges { edges } => obj(vec![
            ("axis", Json::Str("grid_edge".into())),
            ("edges", ints(edges.iter().copied())),
        ]),
        ScenarioAxis::PurifyDepths { depths } => obj(vec![
            ("axis", Json::Str("purify_depth".into())),
            ("depths", ints(depths.iter().copied())),
        ]),
        ScenarioAxis::Units { units } => obj(vec![
            ("axis", Json::Str("units".into())),
            ("units", ints(units.iter().copied())),
        ]),
        ScenarioAxis::Teleporters { values } => obj(vec![
            ("axis", Json::Str("teleporters".into())),
            ("values", ints(values.iter().copied())),
        ]),
        ScenarioAxis::Generators { values } => obj(vec![
            ("axis", Json::Str("generators".into())),
            ("values", ints(values.iter().copied())),
        ]),
        ScenarioAxis::Purifiers { values } => obj(vec![
            ("axis", Json::Str("purifiers".into())),
            ("values", ints(values.iter().copied())),
        ]),
        ScenarioAxis::Workloads { workloads } => obj(vec![
            ("axis", Json::Str("workload".into())),
            (
                "workloads",
                Json::Arr(workloads.iter().map(encode_workload).collect()),
            ),
        ]),
        ScenarioAxis::FaultRate { rates } => obj(vec![
            ("axis", Json::Str("fault_rate".into())),
            (
                "rates",
                Json::Arr(rates.iter().map(|&r| Json::Float(r)).collect()),
            ),
        ]),
        ScenarioAxis::Modules { counts } => obj(vec![
            ("axis", Json::Str("modules".into())),
            ("counts", ints(counts.iter().copied())),
        ]),
        ScenarioAxis::InterTierLatency { latencies_ns } => obj(vec![
            ("axis", Json::Str("inter_latency".into())),
            ("latencies_ns", ints(latencies_ns.iter().copied())),
        ]),
        ScenarioAxis::InterTierCost { costs } => obj(vec![
            ("axis", Json::Str("inter_cost".into())),
            (
                "costs",
                Json::Arr(costs.iter().map(|&c| Json::Float(c)).collect()),
            ),
        ]),
        ScenarioAxis::Placements { placements } => obj(vec![
            ("axis", Json::Str("placement".into())),
            (
                "placements",
                Json::Arr(placements.iter().map(|p| Json::Str(p.label())).collect()),
            ),
        ]),
        ScenarioAxis::Hops { hops } => obj(vec![
            ("axis", Json::Str("hops".into())),
            ("hops", ints(hops.iter().copied())),
        ]),
        ScenarioAxis::ErrorRateLog {
            start_exp,
            stop_exp,
            per_decade,
        } => obj(vec![
            ("axis", Json::Str("error_rate_log".into())),
            ("start_exp", Json::Int(i128::from(*start_exp))),
            ("stop_exp", Json::Int(i128::from(*stop_exp))),
            ("per_decade", Json::Int(i128::from(*per_decade))),
        ]),
    }
}

fn decode_axis(value: &Json) -> Result<ScenarioAxis, JsonError> {
    let f = value.obj_of("axis")?;
    let kind = get(f, "axis", "axis")?.str_of("axis")?;
    let u32_list = |field: &str| -> Result<Vec<u32>, JsonError> {
        get(f, field, "axis")?
            .arr_of(field)?
            .iter()
            .map(|v| v.u32_of(field))
            .collect()
    };
    match kind {
        "resource_ratio" => {
            check_fields(f, &["axis", "area", "ratios"], "axis")?;
            Ok(ScenarioAxis::ResourceRatio {
                area: get(f, "area", "axis")?.u32_of("area")?,
                ratios: get(f, "ratios", "axis")?
                    .arr_of("ratios")?
                    .iter()
                    .map(|v| v.i64_of("ratios"))
                    .collect::<Result<_, _>>()?,
            })
        }
        "layout" => {
            check_fields(f, &["axis", "layouts"], "axis")?;
            Ok(ScenarioAxis::Layouts {
                layouts: get(f, "layouts", "axis")?
                    .arr_of("layouts")?
                    .iter()
                    .map(|v| {
                        let label = v.str_of("layouts")?;
                        Layout::parse(label)
                            .ok_or_else(|| Json::schema_err(format!("unknown layout {label:?}")))
                    })
                    .collect::<Result<_, _>>()?,
            })
        }
        "topology" => {
            check_fields(f, &["axis", "kinds"], "axis")?;
            Ok(ScenarioAxis::Topologies {
                kinds: get(f, "kinds", "axis")?
                    .arr_of("kinds")?
                    .iter()
                    .map(|v| {
                        let label = v.str_of("kinds")?;
                        TopologyKind::parse(label)
                            .ok_or_else(|| Json::schema_err(format!("unknown topology {label:?}")))
                    })
                    .collect::<Result<_, _>>()?,
            })
        }
        "routing" => {
            check_fields(f, &["axis", "policies"], "axis")?;
            Ok(ScenarioAxis::Routings {
                policies: get(f, "policies", "axis")?
                    .arr_of("policies")?
                    .iter()
                    .map(|v| {
                        let label = v.str_of("policies")?;
                        RoutingPolicy::parse(label)
                            .ok_or_else(|| Json::schema_err(format!("unknown routing {label:?}")))
                    })
                    .collect::<Result<_, _>>()?,
            })
        }
        "grid_edge" => {
            check_fields(f, &["axis", "edges"], "axis")?;
            Ok(ScenarioAxis::GridEdges {
                edges: get(f, "edges", "axis")?
                    .arr_of("edges")?
                    .iter()
                    .map(|v| v.u16_of("edges"))
                    .collect::<Result<_, _>>()?,
            })
        }
        "purify_depth" => {
            check_fields(f, &["axis", "depths"], "axis")?;
            Ok(ScenarioAxis::PurifyDepths {
                depths: u32_list("depths")?,
            })
        }
        "units" => {
            check_fields(f, &["axis", "units"], "axis")?;
            Ok(ScenarioAxis::Units {
                units: u32_list("units")?,
            })
        }
        "teleporters" => {
            check_fields(f, &["axis", "values"], "axis")?;
            Ok(ScenarioAxis::Teleporters {
                values: u32_list("values")?,
            })
        }
        "generators" => {
            check_fields(f, &["axis", "values"], "axis")?;
            Ok(ScenarioAxis::Generators {
                values: u32_list("values")?,
            })
        }
        "purifiers" => {
            check_fields(f, &["axis", "values"], "axis")?;
            Ok(ScenarioAxis::Purifiers {
                values: u32_list("values")?,
            })
        }
        "workload" => {
            check_fields(f, &["axis", "workloads"], "axis")?;
            Ok(ScenarioAxis::Workloads {
                workloads: get(f, "workloads", "axis")?
                    .arr_of("workloads")?
                    .iter()
                    .map(decode_workload)
                    .collect::<Result<_, _>>()?,
            })
        }
        "fault_rate" => {
            check_fields(f, &["axis", "rates"], "axis")?;
            Ok(ScenarioAxis::FaultRate {
                rates: get(f, "rates", "axis")?
                    .arr_of("rates")?
                    .iter()
                    .map(|v| v.f64_of("rates"))
                    .collect::<Result<_, _>>()?,
            })
        }
        "modules" => {
            check_fields(f, &["axis", "counts"], "axis")?;
            Ok(ScenarioAxis::Modules {
                counts: u32_list("counts")?,
            })
        }
        "inter_latency" => {
            check_fields(f, &["axis", "latencies_ns"], "axis")?;
            Ok(ScenarioAxis::InterTierLatency {
                latencies_ns: get(f, "latencies_ns", "axis")?
                    .arr_of("latencies_ns")?
                    .iter()
                    .map(|v| v.u64_of("latencies_ns"))
                    .collect::<Result<_, _>>()?,
            })
        }
        "inter_cost" => {
            check_fields(f, &["axis", "costs"], "axis")?;
            Ok(ScenarioAxis::InterTierCost {
                costs: get(f, "costs", "axis")?
                    .arr_of("costs")?
                    .iter()
                    .map(|v| v.f64_of("costs"))
                    .collect::<Result<_, _>>()?,
            })
        }
        "placement" => {
            check_fields(f, &["axis", "placements"], "axis")?;
            Ok(ScenarioAxis::Placements {
                placements: get(f, "placements", "axis")?
                    .arr_of("placements")?
                    .iter()
                    .map(|v| {
                        let label = v.str_of("placements")?;
                        PurifyPlacement::parse(label)
                            .ok_or_else(|| Json::schema_err(format!("unknown placement {label:?}")))
                    })
                    .collect::<Result<_, _>>()?,
            })
        }
        "hops" => {
            check_fields(f, &["axis", "hops"], "axis")?;
            Ok(ScenarioAxis::Hops {
                hops: u32_list("hops")?,
            })
        }
        "error_rate_log" => {
            check_fields(f, &["axis", "start_exp", "stop_exp", "per_decade"], "axis")?;
            Ok(ScenarioAxis::ErrorRateLog {
                start_exp: get(f, "start_exp", "axis")?.i32_of("start_exp")?,
                stop_exp: get(f, "stop_exp", "axis")?.i32_of("stop_exp")?,
                per_decade: get(f, "per_decade", "axis")?.u32_of("per_decade")?,
            })
        }
        other => Err(Json::schema_err(format!("unknown axis kind {other:?}"))),
    }
}

/// Errors raised by the Scenario API: spec validation, per-point
/// network-config validation (with scenario context), or JSON
/// syntax/schema problems.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// A spec-level invariant failed.
    Spec {
        /// The scenario's name.
        scenario: String,
        /// What is wrong with the spec.
        problem: String,
    },
    /// A scenario point's network configuration failed
    /// [`NetConfig::validate`].
    Config {
        /// The scenario's name.
        scenario: String,
        /// The sweep point at fault, if the base config itself is fine.
        point: Option<String>,
        /// The underlying structured configuration error.
        source: ConfigError,
    },
    /// The JSON document could not be parsed or did not match the
    /// schema.
    Json(JsonError),
    /// A checkpointed run could not load, validate or commit its
    /// manifest.
    Checkpoint(CheckpointError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Spec { scenario, problem } => {
                write!(f, "scenario {scenario:?}: {problem}")
            }
            ScenarioError::Config {
                scenario,
                point,
                source,
            } => match point {
                Some(point) => write!(f, "scenario {scenario:?}, point {point}: {source}"),
                None => write!(f, "scenario {scenario:?}: {source}"),
            },
            ScenarioError::Json(err) => write!(f, "{err}"),
            ScenarioError::Checkpoint(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Config { source, .. } => Some(source),
            ScenarioError::Json(err) => Some(err),
            ScenarioError::Spec { .. } => None,
            ScenarioError::Checkpoint(err) => Some(err),
        }
    }
}

impl From<JsonError> for ScenarioError {
    fn from(err: JsonError) -> ScenarioError {
        ScenarioError::Json(err)
    }
}

impl From<CheckpointError> for ScenarioError {
    fn from(err: CheckpointError) -> ScenarioError {
        ScenarioError::Checkpoint(err)
    }
}
