//! Content-addressed scenario identity: [`SpecDigest`].
//!
//! Two [`ScenarioSpec`]s that would produce byte-identical
//! [`crate::scenario::ScenarioReport`]s must hash to the same digest,
//! and any spec change that *can* change the report must change it.
//! The digest therefore hashes the spec's **canonical JSON emission**
//! with three execution-only fields stripped first:
//!
//! * `workers` — a scheduling hint; reports are byte-identical for 1
//!   worker or 64 (the engine's determinism contract);
//! * `observe` — trace export writes files *next to* the report without
//!   touching its bytes;
//! * `checkpoint` — resume bookkeeping; a resumed campaign's report is
//!   byte-identical to an uninterrupted one's.
//!
//! Everything else — name, seed, replicates, axes, the experiment
//! (machine, workload, fault plan, purification strategy, …) — is
//! identity. Because the hash input is the canonical emission, a spec
//! that round-trips through JSON (`from_json(to_json(s))`) keeps its
//! digest: field order, whitespace and other encoding freedom in a
//! *source* document never leak into the key.
//!
//! The hash itself is [`qic_sweep::digest_str`] — the same SplitMix64
//! fold that keys checkpoint manifests. It is a 64-bit accident guard,
//! not a cryptographic commitment; `qic-serve` uses it to key its
//! result cache, where a collision would need two different canonical
//! spec documents in the same cache directory.

use std::fmt;

use crate::scenario::spec::ScenarioSpec;

/// The content-addressed identity of a scenario: a 64-bit digest of the
/// canonical spec JSON with execution-only fields stripped.
///
/// Identity is everything that determines the report bytes — name,
/// seed, replicates, axes, experiment — while execution hints
/// (`workers`, `observe`, `checkpoint`) are stripped before hashing.
/// Digests order and hash like the `u64` they wrap; [`fmt::Display`]
/// renders the fixed-width form used in cache file names (`{:016x}`).
///
/// ```
/// use qic_core::scenario::{ScenarioRegistry, ScenarioScale, SpecDigest};
///
/// let spec = ScenarioRegistry::builtin()
///     .spec("design_space", ScenarioScale::SmallTest)
///     .expect("registered");
/// let digest = SpecDigest::of(&spec);
/// // Worker count is an execution hint, not identity.
/// assert_eq!(SpecDigest::of(&spec.clone().with_workers(7)), digest);
/// // The seed is identity.
/// assert_ne!(SpecDigest::of(&spec.with_seed(1)), digest);
/// assert_eq!(digest.to_string().len(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpecDigest(u64);

impl SpecDigest {
    /// Digests a spec's identity.
    pub fn of(spec: &ScenarioSpec) -> SpecDigest {
        SpecDigest(qic_sweep::digest_str(&Self::identity_json(spec)))
    }

    /// The canonical JSON document the digest hashes: the spec with
    /// `workers` zeroed and the `observe`/`checkpoint` blocks dropped.
    /// Exposed so cache records can embed the exact identity they were
    /// keyed on (making corruption checkable without re-running).
    pub fn identity_json(spec: &ScenarioSpec) -> String {
        let mut identity = spec.clone();
        identity.workers = 0;
        identity.observe = None;
        identity.checkpoint = None;
        identity.to_json()
    }

    /// The raw 64-bit digest.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Rebuilds a digest from its raw value (e.g. a cache record).
    pub fn from_u64(value: u64) -> SpecDigest {
        SpecDigest(value)
    }

    /// Parses the fixed-width hex form produced by [`fmt::Display`].
    /// Returns `None` unless the input is exactly 16 lower-case hex
    /// digits — the strictness keeps cache file names canonical.
    pub fn parse_hex(text: &str) -> Option<SpecDigest> {
        if text.len() != 16 || !text.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')) {
            return None;
        }
        u64::from_str_radix(text, 16).ok().map(SpecDigest)
    }
}

impl fmt::Display for SpecDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::spec::{CheckpointSpec, ObserveSpec};
    use crate::scenario::{ScenarioAxis, ScenarioRegistry, ScenarioScale};

    fn spec() -> ScenarioSpec {
        ScenarioRegistry::builtin()
            .spec("design_space", ScenarioScale::SmallTest)
            .expect("design_space is registered")
    }

    #[test]
    fn digest_is_stable_across_json_round_trips() {
        for entry in ScenarioRegistry::builtin().entries() {
            for scale in [ScenarioScale::Full, ScenarioScale::SmallTest] {
                let spec = entry.spec(scale);
                let back = ScenarioSpec::from_json(&spec.to_json()).unwrap();
                assert_eq!(
                    SpecDigest::of(&back),
                    SpecDigest::of(&spec),
                    "{} at {scale:?}",
                    entry.name
                );
            }
        }
    }

    #[test]
    fn digest_ignores_execution_hints() {
        let base = SpecDigest::of(&spec());
        assert_eq!(SpecDigest::of(&spec().with_workers(16)), base);
        assert_eq!(
            SpecDigest::of(&spec().with_observe(ObserveSpec::to_dir("target/digest_obs"))),
            base,
            "trace export does not change report bytes"
        );
        assert_eq!(
            SpecDigest::of(&spec().with_checkpoint(CheckpointSpec::to_dir("target/digest_ckpt"))),
            base,
            "resume bookkeeping does not change report bytes"
        );
    }

    #[test]
    fn digest_changes_with_every_identity_field() {
        let base = SpecDigest::of(&spec());
        let mut renamed = spec();
        renamed.name = "design_space_2".into();
        assert_ne!(SpecDigest::of(&renamed), base, "name");
        assert_ne!(
            SpecDigest::of(&spec().with_seed(spec().seed + 1)),
            base,
            "seed"
        );
        assert_ne!(
            SpecDigest::of(&spec().with_replicates(spec().replicates + 1)),
            base,
            "replicates"
        );
        let mut extra_axis = spec();
        extra_axis
            .axes
            .push(ScenarioAxis::PurifyDepths { depths: vec![3] });
        assert_ne!(SpecDigest::of(&extra_axis), base, "axes");
        // Distinct registry presets never collide with each other.
        let registry = ScenarioRegistry::builtin();
        let mut seen = std::collections::BTreeMap::new();
        for entry in registry.entries() {
            for scale in [ScenarioScale::Full, ScenarioScale::SmallTest] {
                let spec = entry.spec(scale);
                if let Some(prev) = seen.insert(SpecDigest::of(&spec), (entry.name, scale)) {
                    panic!("digest collision: {prev:?} vs ({}, {scale:?})", entry.name);
                }
            }
        }
    }

    #[test]
    fn hex_form_round_trips_and_rejects_noise() {
        let digest = SpecDigest::of(&spec());
        let hex = digest.to_string();
        assert_eq!(hex.len(), 16);
        assert_eq!(SpecDigest::parse_hex(&hex), Some(digest));
        assert_eq!(SpecDigest::from_u64(digest.as_u64()), digest);
        for bad in ["", "xyz", "123", &format!("{hex}0"), &hex.to_uppercase()] {
            if bad != hex.as_str() {
                assert_eq!(SpecDigest::parse_hex(bad), None, "{bad:?}");
            }
        }
    }
}
